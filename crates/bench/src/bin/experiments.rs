//! The experiment harness: regenerates every table/figure-equivalent row
//! recorded in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p dasp-bench --bin experiments            # all
//! cargo run --release -p dasp-bench --bin experiments e3 e5     # subset
//! cargo run --release -p dasp-bench --bin experiments -- --quick
//! ```
//!
//! `--quick` shrinks the sweeps (used when capturing bench_output.txt).

use dasp_baseline::encdb::{EncClient, EncServer, RangeStrategy};
use dasp_baseline::intersection::{commutative_intersection, predicted_cost};
use dasp_baseline::paillier_agg::{PaillierAggClient, PaillierAggServer};
use dasp_baseline::BaselineCost;
use dasp_bench::{
    deploy_employees, deploy_employees_concurrent, fmt_bytes, fmt_dur, measure, SALARY_DOMAIN,
};
use dasp_client::{BucketJoin, ColumnSpec, Predicate, QueryOptions, TableSchema, Value};
use dasp_core::client::{ClientKeys, DataSource};
use dasp_crypto::commutative::shared_test_prime;
use dasp_field::{Fp, Poly};
use dasp_net::{Cluster, FailureMode, NetworkModel, RetryPolicy};
use dasp_pir::{
    BitDatabase, MultiServerClient, QrClient, QrServer, TrivialPir, TwoServerClient,
    TwoServerServer,
};
use dasp_server::service::provider_fleet;
use dasp_server::{DurableConfig, ProviderEngine, Request, Response, Row};
use dasp_sss::opss::AffineStrawman;
use dasp_sss::{DomainKey, FieldSharing, OpSharing, OpssParams, ShareMode};
use dasp_storage::btree::compose_key;
use dasp_storage::{BTree, BufferPool, Pager, WalConfig};
use dasp_workload::employees::{self, SalaryDist};
use dasp_workload::{documents, places, queries};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

struct Config {
    quick: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let Some(path) = args.get(i + 1) else {
            println!("usage: experiments --check <BENCH_net.json>");
            std::process::exit(2);
        };
        std::process::exit(check_e20(path));
    }
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let cfg = Config { quick };
    let all = wanted.is_empty() || wanted.iter().any(|w| w == "all");
    let run = |id: &str| all || wanted.iter().any(|w| w == id);

    println!("dasp experiment harness — reproducing ICDE'09 DaaS paper claims");
    println!("(quick mode: {})\n", quick);
    if run("e1") {
        e1_figure1();
    }
    if run("e2") {
        e2_intersection(&cfg);
    }
    if run("e3") {
        e3_pir(&cfg);
    }
    if run("e4") {
        e4_exact_match(&cfg);
    }
    if run("e5") {
        e5_range(&cfg);
    }
    if run("e6") {
        e6_aggregates(&cfg);
    }
    if run("e7") {
        e7_join(&cfg);
    }
    if run("e8") {
        e8_fault_tolerance(&cfg);
    }
    if run("e9") {
        e9_updates(&cfg);
    }
    if run("e10") {
        e10_mashup(&cfg);
    }
    if run("e11") {
        e11_storage(&cfg);
    }
    if run("e12") {
        e12_scaling(&cfg);
    }
    if run("e13") {
        e13_leakage();
    }
    if run("e14") {
        e14_ablations(&cfg);
    }
    if run("e15") {
        e15_extensions(&cfg);
    }
    if run("e16") {
        e16_recovery(&cfg);
    }
    if run("e17") {
        e17_codec(&cfg);
    }
    if run("e18") {
        e18_concurrency(&cfg);
    }
    if run("e19") {
        e19_wal(&cfg);
    }
    if run("e20") || run("e21") {
        // E20 (transport comparison) and E21 (batched wire RPC) share a
        // measurement pass and both land in BENCH_net.json.
        e20_net(&cfg);
    }
}

/// E1 — Figure 1: the share table, byte for byte.
fn e1_figure1() {
    println!("== E1 (Figure 1): salaries {{10,20,40,60,80}}, n=3, k=2, X={{2,4,1}} ==");
    let polys = [(10u64, 100u64), (20, 5), (40, 1), (60, 2), (80, 4)];
    println!("  salary    DAS1(x=2)  DAS2(x=4)  DAS3(x=1)");
    for &(salary, slope) in &polys {
        let q = Poly::new(vec![Fp::from_u64(salary), Fp::from_u64(slope)]);
        println!(
            "  {salary:>6} {:>10} {:>10} {:>10}",
            q.eval(Fp::from_u64(2)).to_u64(),
            q.eval(Fp::from_u64(4)).to_u64(),
            q.eval(Fp::from_u64(1)).to_u64()
        );
    }
    let sharing =
        FieldSharing::new(2, vec![Fp::from_u64(2), Fp::from_u64(4), Fp::from_u64(1)]).unwrap();
    let ok = polys.iter().all(|&(salary, slope)| {
        let q = Poly::new(vec![Fp::from_u64(salary), Fp::from_u64(slope)]);
        [(0usize, 1usize), (0, 2), (1, 2)].iter().all(|&(a, b)| {
            let xs = [Fp::from_u64(2), Fp::from_u64(4), Fp::from_u64(1)];
            sharing
                .reconstruct(&[
                    dasp_sss::FieldShare {
                        provider: a,
                        y: q.eval(xs[a]),
                    },
                    dasp_sss::FieldShare {
                        provider: b,
                        y: q.eval(xs[b]),
                    },
                ])
                .unwrap()
                == Fp::from_u64(salary)
        })
    });
    println!(
        "  every 2-of-3 subset reconstructs: {}\n",
        if ok { "PASS" } else { "FAIL" }
    );
}

/// E2 — encryption-based intersection vs share-equality join.
fn e2_intersection(cfg: &Config) {
    println!("== E2 (§II-A cost claim): private intersection, encryption vs shares ==");
    let mut rng = StdRng::seed_from_u64(2);
    let prime = shared_test_prime();
    let sizes: &[(usize, usize)] = if cfg.quick {
        &[(10, 100), (50, 500)]
    } else {
        &[(10, 100), (50, 500), (200, 2000)]
    };
    println!(
        "  |A|     |B|     commutative-enc time  modexps    bytes      share-join time  bytes"
    );
    for &(na, nb) in sizes {
        let docs_a = documents::generate(1, na, 100);
        let docs_b = documents::generate(1, nb, 101);
        // Dedup shrinks the sets below na/nb; use what survives.
        let a = documents::word_set(&docs_a);
        let b = documents::word_set(&docs_b);
        let start = Instant::now();
        let (_, cost) = commutative_intersection(&prime, &a, &b, &mut rng);
        let enc_time = start.elapsed();

        // Share-based: outsource both sets as Deterministic columns in the
        // same domain; a provider-side join IS the intersection.
        let mut keys_rng = StdRng::seed_from_u64(3);
        let keys = ClientKeys::generate(2, 3, &mut keys_rng).unwrap();
        let cluster = Cluster::spawn(provider_fleet(3), std::time::Duration::from_secs(30));
        let mut ds = DataSource::with_seed(keys, cluster, 4).unwrap();
        let word_col =
            || ColumnSpec::numeric("w", 1 << 30, ShareMode::Deterministic).in_domain("word");
        ds.create_table(TableSchema::new("set_a", vec![word_col()]).unwrap())
            .unwrap();
        ds.create_table(TableSchema::new("set_b", vec![word_col()]).unwrap())
            .unwrap();
        let encode = |w: &[u8]| {
            // Stable 30-bit token id from the word bytes.
            let mut h = 0u64;
            for &byte in w {
                h = h.wrapping_mul(131).wrapping_add(byte as u64);
            }
            Value::Int(h % (1 << 30))
        };
        let rows_a: Vec<Vec<Value>> = a.iter().map(|w| vec![encode(w)]).collect();
        let rows_b: Vec<Vec<Value>> = b.iter().map(|w| vec![encode(w)]).collect();
        ds.insert("set_a", &rows_a).unwrap();
        ds.insert("set_b", &rows_b).unwrap();
        let stats = ds.cluster().stats().clone();
        let (pairs, m) = measure(&stats, || ds.join("set_a", "w", "set_b", "w").unwrap());
        println!(
            "  {na:<7} {nb:<7} {:<21} {:<10} {:<10} {:<16} {}",
            fmt_dur(enc_time),
            cost.mod_exps,
            fmt_bytes(cost.bytes),
            fmt_dur(m.compute),
            fmt_bytes(m.bytes)
        );
        let _ = pairs;
    }
    println!(
        "\n  paper-quoted configurations (closed-form, 1024-bit group, ~30 modexp/s 2003 hw):"
    );
    for (label, a, b) in [
        ("10+100 docs x 1000 words", 10_000u64, 100_000u64),
        ("1M medical records", 1_000_000u64, 1_000_000),
    ] {
        let c = predicted_cost(a, b, 1024);
        println!(
            "    {label:<26} {:>9} modexps  ~{:.1} h   {:.1} Gbit",
            c.mod_exps,
            c.mod_exps as f64 / 30.0 / 3600.0,
            c.bytes as f64 * 8.0 / 1e9
        );
    }
    println!("  (paper narrative: '~2 hours … ~3 Gbit'; '~4 hours … 8 Gbit')\n");
}

/// E3 — PIR practicality (Sion–Carbunar).
fn e3_pir(cfg: &Config) {
    println!("== E3 (§II-B): PIR vs trivial transfer (broadband model) ==");
    let model = NetworkModel::broadband();
    let sizes: &[usize] = if cfg.quick {
        &[1 << 12, 1 << 14]
    } else {
        &[1 << 12, 1 << 14, 1 << 16, 1 << 18]
    };
    println!("  N(bits)  protocol       bytes      srv mod-muls  compute      e2e(modeled)");
    for &n in sizes {
        let db = BitDatabase::random(n, n as u64);
        let target = n / 3;

        let trivial = TrivialPir::new(db.clone());
        let start = Instant::now();
        let (_, cost) = trivial.retrieve(target);
        let t = start.elapsed();
        println!(
            "  {n:<8} trivial        {:<10} {:<13} {:<12} {}",
            fmt_bytes(cost.total_bytes()),
            cost.server_mod_muls,
            fmt_dur(t),
            fmt_dur(t + model.transfer_time(cost.total_bytes(), 1))
        );

        let s1 = TwoServerServer::new(db.clone());
        let s2 = TwoServerServer::new(db.clone());
        let client = TwoServerClient::new(n);
        let mut rng = StdRng::seed_from_u64(5);
        let start = Instant::now();
        let (_, cost) = client.retrieve(target, &s1, &s2, &mut rng);
        let t = start.elapsed();
        println!(
            "  {n:<8} 2-server IT    {:<10} {:<13} {:<12} {}",
            fmt_bytes(cost.total_bytes()),
            cost.server_mod_muls,
            fmt_dur(t),
            fmt_dur(t + model.transfer_time(cost.total_bytes(), 1))
        );

        // k-server variant (collusion threshold k−1 = 3, like a (4, n) fleet).
        let servers: Vec<TwoServerServer> =
            (0..4).map(|_| TwoServerServer::new(db.clone())).collect();
        let kclient = MultiServerClient::new(n, 4);
        let start = Instant::now();
        let (_, cost) = kclient.retrieve(target, &servers, &mut rng);
        let t = start.elapsed();
        println!(
            "  {n:<8} 4-server IT    {:<10} {:<13} {:<12} {}",
            fmt_bytes(cost.total_bytes()),
            cost.server_mod_muls,
            fmt_dur(t),
            fmt_dur(t + model.transfer_time(cost.total_bytes(), 1))
        );

        let mut rng = StdRng::seed_from_u64(6);
        let qr = QrClient::generate(n, if cfg.quick { 128 } else { 256 }, &mut rng);
        let server = QrServer::new(db, qr.modulus().clone());
        let start = Instant::now();
        let (_, cost) = qr.retrieve(target, &server, &mut rng);
        let t = start.elapsed();
        println!(
            "  {n:<8} 1-server cPIR  {:<10} {:<13} {:<12} {}",
            fmt_bytes(cost.total_bytes()),
            cost.server_mod_muls,
            fmt_dur(t),
            fmt_dur(t + model.transfer_time(cost.total_bytes(), 1))
        );
    }
    println!("  expected shape: cPIR compute grows ~linearly in N and loses end-to-end;\n  IT-PIR stays cheap on every axis (matches Sion–Carbunar)\n");
}

/// E4 — exact match: shares vs encrypted DBSP vs naive.
fn e4_exact_match(cfg: &Config) {
    println!("== E4 (§V-A): exact-match query — secret shares vs det-enc vs fetch-all ==");
    let sizes: &[usize] = if cfg.quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    println!("  rows     system        compute      bytes       e2e(WAN)");
    let model = NetworkModel::wan();
    for &n in sizes {
        let mut dep = deploy_employees(2, 4, n, 40 + n as u64);
        let probe = dep.data[n / 2].name.clone();
        let matches = dep.data.iter().filter(|e| e.name == probe).count();
        let stats = dep.ds.cluster().stats().clone();
        let (rows, m) = measure(&stats, || {
            dep.ds
                .select("employees", &[Predicate::eq("name", probe.as_str())])
                .unwrap()
        });
        assert_eq!(rows.len(), matches);
        println!(
            "  {n:<8} shares        {:<12} {:<11} {}",
            fmt_dur(m.compute),
            fmt_bytes(m.bytes),
            fmt_dur(m.end_to_end(&model))
        );

        // Encrypted DBSP baseline (single server).
        let mut enc_client = EncClient::new(b"0123456789abcdef", vec![1 << 30, SALARY_DOMAIN], 64);
        let mut enc_server = EncServer::new();
        let mut load_cost = BaselineCost::default();
        let name_code = |name: &str| {
            let mut h = 0u64;
            for b in name.bytes() {
                h = h.wrapping_mul(131).wrapping_add(b as u64);
            }
            h % (1 << 30)
        };
        let rows: Vec<_> = dep
            .data
            .iter()
            .map(|e| enc_client.encrypt_row(&[name_code(&e.name), e.salary], &mut load_cost))
            .collect();
        enc_server.insert(rows);
        let mut qcost = BaselineCost::default();
        let start = Instant::now();
        let hits = enc_client.exact(&enc_server, 0, name_code(&probe), &mut qcost);
        let t = start.elapsed();
        assert_eq!(hits.len(), matches);
        println!(
            "  {n:<8} det-enc       {:<12} {:<11} {}",
            fmt_dur(t),
            fmt_bytes(qcost.total_bytes()),
            fmt_dur(t + model.transfer_time(qcost.total_bytes(), 1))
        );

        // Naive: download the table.
        let naive_bytes = (n * 3 * 16) as u64;
        println!(
            "  {n:<8} fetch-all     {:<12} {:<11} {}",
            "-",
            fmt_bytes(naive_bytes),
            fmt_dur(model.transfer_time(naive_bytes, 1))
        );
    }
    println!("  expected shape: shares ≈ det-enc on selectivity (both index probes),\n  both crush fetch-all; shares pay k-provider fan-out, det-enc pays AES\n");
}

/// E5 — range queries and the bucket privacy dial.
fn e5_range(cfg: &Config) {
    println!("== E5 (§V-A + §II-A): range queries — OP shares vs buckets vs OPE ==");
    let n = if cfg.quick { 5_000 } else { 20_000 };
    let mut dep = deploy_employees(2, 4, n, 50);
    let model = NetworkModel::wan();
    let ranges = queries::ranges(SALARY_DOMAIN, 0.01, 3, 51);
    println!("  ({n} rows, 1% selectivity ranges)");
    println!("  system            compute      bytes       superset  e2e(WAN)");
    // OP shares.
    let stats = dep.ds.cluster().stats().clone();
    let mut total_rows = 0usize;
    let (_, m) = measure(&stats, || {
        for &(lo, hi) in &ranges {
            total_rows += dep
                .ds
                .select("employees", &[Predicate::between("salary", lo, hi)])
                .unwrap()
                .len();
        }
    });
    println!(
        "  OP shares         {:<12} {:<11} {:<9.2} {}",
        fmt_dur(m.compute),
        fmt_bytes(m.bytes),
        1.0,
        fmt_dur(m.end_to_end(&model))
    );

    // Encrypted baselines at several bucket counts + OPE.
    let mut enc_rows_cache: Option<Vec<Vec<u64>>> = None;
    for buckets in [16u64, 256, 4096] {
        let mut client = EncClient::new(b"0123456789abcdef", vec![SALARY_DOMAIN], buckets);
        let mut server = EncServer::new();
        let mut lc = BaselineCost::default();
        let plain: Vec<Vec<u64>> = enc_rows_cache
            .get_or_insert_with(|| dep.data.iter().map(|e| vec![e.salary]).collect())
            .clone();
        server.insert(
            plain
                .iter()
                .map(|r| client.encrypt_row(r, &mut lc))
                .collect(),
        );
        let mut qc = BaselineCost::default();
        let mut supersets = Vec::new();
        let start = Instant::now();
        for &(lo, hi) in &ranges {
            let (_, s) = client.range(&server, 0, lo, hi, RangeStrategy::Bucketized, &mut qc);
            supersets.push(s);
        }
        let t = start.elapsed();
        let avg_s = supersets.iter().sum::<f64>() / supersets.len() as f64;
        println!(
            "  buckets={buckets:<9} {:<12} {:<11} {:<9.2} {}",
            fmt_dur(t),
            fmt_bytes(qc.total_bytes()),
            avg_s,
            fmt_dur(t + model.transfer_time(qc.total_bytes(), 1))
        );
    }
    {
        let mut client = EncClient::new(b"0123456789abcdef", vec![SALARY_DOMAIN], 16);
        let mut server = EncServer::new();
        let mut lc = BaselineCost::default();
        server.insert(
            dep.data
                .iter()
                .map(|e| client.encrypt_row(&[e.salary], &mut lc))
                .collect(),
        );
        let mut qc = BaselineCost::default();
        let start = Instant::now();
        for &(lo, hi) in &ranges {
            client.range(&server, 0, lo, hi, RangeStrategy::Ope, &mut qc);
        }
        let t = start.elapsed();
        println!(
            "  OPE               {:<12} {:<11} {:<9.2} {}",
            fmt_dur(t),
            fmt_bytes(qc.total_bytes()),
            1.0,
            fmt_dur(t + model.transfer_time(qc.total_bytes(), 1))
        );
    }
    println!("  expected shape: OP shares and OPE are exact (superset 1.0);\n  coarser buckets → larger supersets → more bytes (the privacy dial)\n");
}

/// E6 — aggregation: server-side share sums vs alternatives.
fn e6_aggregates(cfg: &Config) {
    println!("== E6 (§V-A): SUM over a range — server-side shares vs client-side vs Paillier ==");
    let n = if cfg.quick { 2_000 } else { 10_000 };
    let mut dep = deploy_employees(2, 4, n, 60);
    let model = NetworkModel::wan();
    let (lo, hi) = (100_000u64, 500_000u64);
    let pred = [Predicate::between("salary", lo, hi)];
    let expected: u64 = dep
        .data
        .iter()
        .filter(|e| (lo..=hi).contains(&e.salary))
        .map(|e| e.salary)
        .sum();
    println!("  ({n} rows, ~38% selectivity)");
    println!("  system            compute      bytes       e2e(WAN)");

    let stats = dep.ds.cluster().stats().clone();
    let (sum, m) = measure(&stats, || dep.ds.sum("employees", "salary", &pred).unwrap());
    assert_eq!(sum.value, Some(Value::Int(expected)));
    println!(
        "  share partials    {:<12} {:<11} {}",
        fmt_dur(m.compute),
        fmt_bytes(m.bytes),
        fmt_dur(m.end_to_end(&model))
    );

    let (rows, m) = measure(&stats, || dep.ds.select("employees", &pred).unwrap());
    let client_sum: u64 = rows
        .iter()
        .map(|(_, v)| match v[1] {
            Value::Int(s) => s,
            _ => 0,
        })
        .sum();
    assert_eq!(client_sum, expected);
    println!(
        "  fetch+client sum  {:<12} {:<11} {}",
        fmt_dur(m.compute),
        fmt_bytes(m.bytes),
        fmt_dur(m.end_to_end(&model))
    );

    // Paillier baseline: group = bucketized salary band matching [lo, hi].
    let mut rng = StdRng::seed_from_u64(61);
    let pclient = PaillierAggClient::generate(if cfg.quick { 128 } else { 256 }, &mut rng);
    let mut cost = BaselineCost::default();
    let rows: Vec<(u64, u64)> = dep
        .data
        .iter()
        .map(|e| (u64::from((lo..=hi).contains(&e.salary)), e.salary))
        .collect();
    let start = Instant::now();
    let enc = pclient.encrypt_rows(&rows, &mut rng, &mut cost);
    let load_t = start.elapsed();
    let server = PaillierAggServer::new(enc);
    let mut qcost = BaselineCost::default();
    let start = Instant::now();
    let (psum, _count) = pclient.sum(&server, 1, &mut qcost);
    let t = start.elapsed();
    assert_eq!(psum, expected);
    println!(
        "  Paillier          {:<12} {:<11} {}   (+ {} one-time encryption)",
        fmt_dur(t),
        fmt_bytes(qcost.total_bytes()),
        fmt_dur(t + model.transfer_time(qcost.total_bytes(), 1)),
        fmt_dur(load_t)
    );
    println!("  expected shape: share partials move O(k) bytes and near-zero compute;\n  Paillier pays a big-int multiply per row + huge load-time encryption\n");
}

/// E7 — joins: provider-side share join vs client-side.
fn e7_join(cfg: &Config) {
    println!("== E7 (§V-A): Employees ⋈ Managers on EID ==");
    let sizes: &[(usize, usize)] = if cfg.quick {
        &[(1000, 100)]
    } else {
        &[(1000, 100), (10_000, 1000)]
    };
    let model = NetworkModel::wan();
    println!("  |emp|    |mgr|   strategy       compute      bytes       e2e(WAN)");
    for &(ne, nm) in sizes {
        let mut rng = StdRng::seed_from_u64(70);
        let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
        let cluster = Cluster::spawn(provider_fleet(3), std::time::Duration::from_secs(30));
        let mut ds = DataSource::with_seed(keys, cluster, 71).unwrap();
        let eid = || ColumnSpec::numeric("eid", 1 << 20, ShareMode::Deterministic).in_domain("eid");
        ds.create_table(
            TableSchema::new(
                "emp",
                vec![
                    eid(),
                    ColumnSpec::numeric("salary", SALARY_DOMAIN, ShareMode::OrderPreserving),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        ds.create_table(
            TableSchema::new(
                "mgr",
                vec![eid(), ColumnSpec::numeric("level", 16, ShareMode::Random)],
            )
            .unwrap(),
        )
        .unwrap();
        let emp_rows: Vec<Vec<Value>> = (0..ne as u64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 31 % SALARY_DOMAIN)])
            .collect();
        let mgr_rows: Vec<Vec<Value>> = (0..nm as u64)
            .map(|i| vec![Value::Int(i * (ne as u64 / nm as u64)), Value::Int(i % 16)])
            .collect();
        for chunk in emp_rows.chunks(1000) {
            ds.insert("emp", chunk).unwrap();
        }
        ds.insert("mgr", &mgr_rows).unwrap();

        let stats = ds.cluster().stats().clone();
        let (pairs, m) = measure(&stats, || ds.join("emp", "eid", "mgr", "eid").unwrap());
        assert_eq!(pairs.len(), nm);
        println!(
            "  {ne:<8} {nm:<7} provider-side  {:<12} {:<11} {}",
            fmt_dur(m.compute),
            fmt_bytes(m.bytes),
            fmt_dur(m.end_to_end(&model))
        );

        // Client-side: fetch both tables entirely and hash-join locally.
        let (pairs2, m2) = measure(&stats, || {
            let emp = ds.select("emp", &[]).unwrap();
            let mgr = ds.select("mgr", &[]).unwrap();
            let mut by_eid = std::collections::HashMap::new();
            for (id, v) in &emp {
                by_eid.insert(v[0].clone(), *id);
            }
            mgr.iter()
                .filter(|(_, v)| by_eid.contains_key(&v[0]))
                .count()
        });
        assert_eq!(pairs2, nm);
        println!(
            "  {ne:<8} {nm:<7} client-side    {:<12} {:<11} {}",
            fmt_dur(m2.compute),
            fmt_bytes(m2.bytes),
            fmt_dur(m2.end_to_end(&model))
        );
    }
    println!("  expected shape: provider-side join transfers only the join result;\n  client-side pays full-table transfer (gap grows with |emp|)\n");
}

/// E8 — availability and Byzantine detection.
fn e8_fault_tolerance(cfg: &Config) {
    println!("== E8 (challenge b): availability under crashes, Byzantine detection ==");
    let n_rows = if cfg.quick { 500 } else { 2000 };
    println!("  (k, n)   crashed  query outcome");
    for (k, n) in [(2usize, 3usize), (2, 5), (3, 5), (4, 5)] {
        let mut dep = deploy_employees(k, n, n_rows, 80 + (k * 10 + n) as u64);
        // The bench cluster's 30s timeout is meant for heavyweight
        // queries; cap attempts here so "unavailable" is detected in
        // milliseconds rather than retried against dead providers.
        dep.ds.set_retry_policy(RetryPolicy {
            max_attempts: 1,
            per_attempt_timeout: Some(std::time::Duration::from_millis(500)),
            ..RetryPolicy::default()
        });
        let pred = [Predicate::between("salary", 0u64, 50_000u64)];
        let healthy = dep.ds.select("employees", &pred).unwrap().len();
        for crashed in 0..n {
            dep.ds.cluster().set_failure(crashed, FailureMode::Crashed);
            let alive = n - crashed - 1;
            let outcome = match dep.ds.select("employees", &pred) {
                Ok(rows) if rows.len() == healthy => "OK",
                Ok(_) => "WRONG",
                Err(_) if alive < k => "unavailable (expected)",
                Err(_) => "unavailable (UNEXPECTED)",
            };
            // dasp::allow(T1): bench harness prints its own test data.
            println!("  ({k},{n})    {:<8} {}", crashed + 1, outcome);
        }
    }
    println!("\n  Byzantine identification (verified reads, n=5, k=2):");
    let mut dep = deploy_employees(2, 5, n_rows, 85);
    dep.ds.cluster().set_failure(3, FailureMode::Byzantine(1.0));
    let rows = dep
        .ds
        .select_opts(
            "employees",
            &[Predicate::between("salary", 0u64, 50_000u64)],
            QueryOptions { verify: true },
        )
        .unwrap();
    println!(
        "    corrupted provider 3: query returned {} correct rows; identified faulty = {:?}",
        rows.len(),
        dep.ds.last_faulty
    );

    // Degraded-read latency: with first-k-wins quorums a crashed
    // provider is absorbed concurrently, so reads never serialize
    // behind its timeout (the cluster timeout here is a generous 30s).
    println!("\n  degraded-read latency (n=5, k=2, {} samples):", {
        if cfg.quick {
            20
        } else {
            40
        }
    });
    let samples = if cfg.quick { 20 } else { 40 };
    let pctl = |lat: &mut Vec<std::time::Duration>, p: f64| {
        lat.sort();
        lat[((lat.len() as f64 - 1.0) * p).round() as usize]
    };
    let mut dep = deploy_employees(2, 5, n_rows, 86);
    let pred = [Predicate::between("salary", 0u64, 50_000u64)];
    println!("    state     p50          p99");
    for (label, crash) in [("healthy", false), ("degraded", true)] {
        if crash {
            dep.ds.cluster().set_failure(0, FailureMode::Crashed);
        }
        let mut lat = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = std::time::Instant::now();
            dep.ds.select("employees", &pred).unwrap();
            lat.push(t.elapsed());
        }
        println!(
            "    {label:<9} {:<12} {}",
            fmt_dur(pctl(&mut lat, 0.5)),
            fmt_dur(pctl(&mut lat, 0.99)),
        );
    }
    println!("\n  provider health after the degraded run (provider 0 serves nothing):");
    for line in dep.ds.health().to_string().lines() {
        println!("    {line}");
    }
    println!("  expected shape: available iff alive ≥ k; corruption detected+attributed;\n  degraded p99 ≈ healthy p99 (crashed provider absorbed, not awaited)\n");
}

/// E9 — update strategies.
fn e9_updates(cfg: &Config) {
    println!("== E9 (§V-C): eager vs lazy updates ==");
    let n = if cfg.quick { 2000 } else { 10_000 };
    let batch_sizes: &[usize] = &[1, 10, 100];
    let model = NetworkModel::wan();
    println!("  ({n} rows; updating rows by individual id predicates)");
    println!("  batch  strategy  compute      bytes       round-trips  e2e(WAN)");
    for &batch in batch_sizes {
        // Eager.
        let mut dep = deploy_employees(2, 3, n, 90);
        let stats = dep.ds.cluster().stats().clone();
        let names: Vec<String> = dep.data[..batch].iter().map(|e| e.name.clone()).collect();
        let (_, m) = measure(&stats, || {
            for name in &names {
                dep.ds
                    .update_where(
                        "employees",
                        &[Predicate::eq("name", name.as_str())],
                        &[("salary", Value::Int(1))],
                    )
                    .unwrap();
            }
        });
        println!(
            "  {batch:<6} eager     {:<12} {:<11} {:<12} {}",
            fmt_dur(m.compute),
            fmt_bytes(m.bytes),
            m.round_trips,
            fmt_dur(m.end_to_end(&model))
        );
        // Lazy.
        let mut dep = deploy_employees(2, 3, n, 90);
        let stats = dep.ds.cluster().stats().clone();
        let names: Vec<String> = dep.data[..batch].iter().map(|e| e.name.clone()).collect();
        dep.ds.set_lazy(true);
        let (_, m) = measure(&stats, || {
            for name in &names {
                dep.ds
                    .update_where(
                        "employees",
                        &[Predicate::eq("name", name.as_str())],
                        &[("salary", Value::Int(1))],
                    )
                    .unwrap();
            }
            dep.ds.flush("employees").unwrap();
        });
        println!(
            "  {batch:<6} lazy      {:<12} {:<11} {:<12} {}",
            fmt_dur(m.compute),
            fmt_bytes(m.bytes),
            m.round_trips,
            fmt_dur(m.end_to_end(&model))
        );
    }
    println!("  expected shape: lazy batches cut round-trips (the WAN-dominant term)\n");
}

/// E10 — private/public mash-up.
fn e10_mashup(cfg: &Config) {
    println!("== E10 (§V-D): friends (private) × restaurants (public) ==");
    let n_places = if cfg.quick { 2000 } else { 20_000 };
    let domain = 1 << 20;
    let mut rng = StdRng::seed_from_u64(100);
    let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
    let cluster = Cluster::spawn(provider_fleet(3), std::time::Duration::from_secs(30));
    let mut ds = DataSource::with_seed(keys, cluster, 101).unwrap();
    ds.create_table(
        TableSchema::new(
            "friends",
            vec![
                ColumnSpec::text("name", 8, ShareMode::Deterministic),
                ColumnSpec::numeric("loc", domain, ShareMode::Random),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let friends = places::friends(5, domain, 102);
    let rows: Vec<Vec<Value>> = friends
        .iter()
        .map(|(n, l)| vec![Value::Str(n.clone()), Value::Int(*l)])
        .collect();
    ds.insert("friends", &rows).unwrap();
    let restaurants = places::restaurants(n_places, domain, 103);
    BucketJoin::new(ds.cluster(), 0)
        .upload_public("restaurants", &["loc", "rid"], 0, &restaurants)
        .unwrap();
    let target = friends[0].1;
    let radius = 512;
    println!("  ({n_places} public places; query radius {radius})");
    println!("  bucket     leaked interval  rows fetched  rows matching  bytes");
    for bucket in [2048u64, 16_384, 131_072] {
        let stats = ds.cluster().stats().clone();
        let before = stats.snapshot();
        let (hits, mstats) = BucketJoin::new(ds.cluster(), 0)
            .near("restaurants", 0, target, radius, bucket)
            .unwrap();
        let delta = stats.snapshot().since(&before);
        println!(
            "  {bucket:<10} {:<16} {:<13} {:<14} {}",
            mstats.leaked_interval,
            mstats.rows_fetched,
            hits.len(),
            fmt_bytes(delta.total_bytes())
        );
    }
    println!("  expected shape: wider buckets leak less (bigger anonymity interval)\n  but transfer proportionally more rows\n");
}

/// E11 — storage engine ablation.
fn e11_storage(cfg: &Config) {
    println!("== E11: provider index ablation — page B+tree vs std BTreeMap ==");
    let n: usize = if cfg.quick { 20_000 } else { 100_000 };
    let pool = BufferPool::new(Pager::in_memory(), 256);
    let mut tree = BTree::create(&pool).unwrap();
    let start = Instant::now();
    for i in 0..n as u64 {
        tree.insert(
            &pool,
            &compose_key((i * 2654435761 % n as u64) as i128, i),
            i,
        )
        .unwrap();
    }
    let insert_t = start.elapsed();
    let start = Instant::now();
    let mut found = 0usize;
    for i in (0..n as u64).step_by(7) {
        if tree
            .get(&pool, &compose_key((i * 2654435761 % n as u64) as i128, i))
            .unwrap()
            .is_some()
        {
            found += 1;
        }
    }
    let probe_t = start.elapsed();
    let range = tree
        .range(&pool, &compose_key(0, 0), &compose_key(1000, u64::MAX))
        .unwrap();
    println!(
        "  B+tree ({} frames):  insert {n} in {}, {} probes in {}, range hit {} keys, height {}",
        256,
        fmt_dur(insert_t),
        found,
        fmt_dur(probe_t),
        range.len(),
        tree.height(&pool).unwrap()
    );
    let s = pool.stats();
    println!(
        "  buffer pool: {} hits / {} misses ({:.1}% hit rate)",
        s.hits,
        s.misses,
        100.0 * s.hits as f64 / (s.hits + s.misses).max(1) as f64
    );

    let mut map = std::collections::BTreeMap::new();
    let start = Instant::now();
    for i in 0..n as u64 {
        map.insert(((i * 2654435761 % n as u64) as i128, i), i);
    }
    let insert_t = start.elapsed();
    let start = Instant::now();
    let mut found = 0usize;
    for i in (0..n as u64).step_by(7) {
        if map.contains_key(&((i * 2654435761 % n as u64) as i128, i)) {
            found += 1;
        }
    }
    let probe_t = start.elapsed();
    println!(
        "  BTreeMap (in-core):  insert {n} in {}, {} probes in {}",
        fmt_dur(insert_t),
        found,
        fmt_dur(probe_t)
    );
    println!("  expected shape: paged tree within a small constant of BTreeMap while\n  giving provider-grade page locality + buffer management\n");
}

/// E12 — provider-count scaling.
fn e12_scaling(cfg: &Config) {
    println!("== E12 (§I): scaling the provider fleet ==");
    let rows = if cfg.quick { 1000 } else { 5000 };
    println!("  n   k   insert({rows})   range query   bytes/query");
    for (k, n) in [(2usize, 3usize), (2, 5), (3, 8), (4, 12)] {
        let start = Instant::now();
        let mut dep = deploy_employees(k, n, rows, 120 + n as u64);
        let load = start.elapsed();
        let stats = dep.ds.cluster().stats().clone();
        let (r, m) = measure(&stats, || {
            dep.ds
                .select(
                    "employees",
                    &[Predicate::between("salary", 100_000u64, 150_000u64)],
                )
                .unwrap()
        });
        let _ = r;
        println!(
            "  {n:<3} {k:<3} {:<13} {:<13} {}",
            fmt_dur(load),
            fmt_dur(m.compute),
            fmt_bytes(m.bytes)
        );
    }
    println!("  expected shape: insert cost grows ~linearly with n (n shares);\n  query cost grows with n only through fan-out (k responses suffice)\n");
}

/// E14 — design-choice ablations called out in DESIGN.md.
fn e14_ablations(cfg: &Config) {
    println!("== E14: design ablations ==");
    // (a) OP polynomial degree: share construction + search-decode cost.
    println!("  (a) order-preserving degree (k = degree+1):");
    println!("      degree  share(4 providers)  search-decode  share bits");
    for degree in [1usize, 2, 3] {
        let params = OpssParams::new(degree, 12, 1 << 32, vec![2, 4, 1, 7]).unwrap();
        let sharing = OpSharing::new(params, DomainKey::derive(b"m", "salary"));
        let reps = 20_000u64;
        let start = Instant::now();
        let mut sink = 0i128;
        for v in 0..reps {
            sink ^= sharing.share_for(v, 0).unwrap();
        }
        let share_t = start.elapsed() / reps as u32;
        let target = sharing.share_for(1 << 20, 0).unwrap();
        let start = Instant::now();
        let decode_reps = 2000;
        for _ in 0..decode_reps {
            sharing.reconstruct_search(0, target).unwrap();
        }
        let dec_t = start.elapsed() / decode_reps;
        let bits = 128 - sharing.share_for((1 << 32) - 1, 3).unwrap().leading_zeros();
        println!(
            "      {degree:<7} {:<19} {:<14} {bits}",
            fmt_dur(share_t),
            fmt_dur(dec_t)
        );
        std::hint::black_box(sink);
    }
    // (b) slot width: jitter entropy vs share growth.
    println!("  (b) slot width (privacy jitter) vs share magnitude:");
    println!("      slot_bits  distinct gaps/64  max share bits");
    for slot_bits in [4u32, 8, 12] {
        let params = OpssParams::new(1, slot_bits, 1 << 20, vec![2, 4]).unwrap();
        let sharing = OpSharing::new(params, DomainKey::derive(b"m", "d"));
        let gaps: std::collections::HashSet<i128> = (0..64u64)
            .map(|v| sharing.share_for(v + 1, 0).unwrap() - sharing.share_for(v, 0).unwrap())
            .collect();
        let bits = 128 - sharing.share_for((1 << 20) - 1, 1).unwrap().leading_zeros();
        println!("      {slot_bits:<10} {:<17} {bits}", gaps.len());
    }
    // (c) buffer pool frames: hit rate on a Zipf-ish probe workload.
    println!("  (c) provider buffer pool capacity (100k-entry index, 20k probes):");
    println!("      frames  hit rate");
    let n: usize = if cfg.quick { 30_000 } else { 100_000 };
    for frames in [16usize, 64, 256, 1024] {
        let pool = BufferPool::new(Pager::in_memory(), frames);
        let mut tree = BTree::create(&pool).unwrap();
        for i in 0..n as u64 {
            tree.insert(&pool, &compose_key(i as i128, i), i).unwrap();
        }
        let warm = pool.stats();
        for i in 0..20_000u64 {
            // Skewed probes: quadratic residues cluster.
            let key = (i * i) % n as u64;
            tree.get(&pool, &compose_key(key as i128, key)).unwrap();
        }
        let s = pool.stats();
        let hits = s.hits - warm.hits;
        let misses = s.misses - warm.misses;
        println!(
            "      {frames:<7} {:.1}%",
            100.0 * hits as f64 / (hits + misses).max(1) as f64
        );
    }
    println!();
}

/// E15 — extension features: GROUP BY, top-k, authenticated ranges.
fn e15_extensions(cfg: &Config) {
    println!("== E15: extensions — GROUP BY, ORDER BY/LIMIT, verified ranges ==");
    let n = if cfg.quick { 2_000 } else { 10_000 };
    let mut dep = deploy_employees(2, 3, n, 150);
    let model = NetworkModel::wan();
    let stats = dep.ds.cluster().stats().clone();

    // GROUP BY server-side vs client-side-equivalent (fetch + group).
    let (groups, m) = measure(&stats, || {
        dep.ds
            .group_by("employees", "name", Some("salary"), &[])
            .unwrap()
    });
    println!(
        "  GROUP BY name SUM(salary): {} groups, server-side   {:<10} {:<10} e2e {}",
        groups.len(),
        fmt_dur(m.compute),
        fmt_bytes(m.bytes),
        fmt_dur(m.end_to_end(&model))
    );
    let (rows, m2) = measure(&stats, || dep.ds.select("employees", &[]).unwrap());
    println!(
        "  (fetch-all for client grouping: {} rows             {:<10} {:<10} e2e {})",
        rows.len(),
        fmt_dur(m2.compute),
        fmt_bytes(m2.bytes),
        fmt_dur(m2.end_to_end(&model))
    );

    // Top-k.
    let (top, m) = measure(&stats, || {
        dep.ds
            .select_top("employees", "salary", true, 10, &[])
            .unwrap()
    });
    println!(
        "  ORDER BY salary DESC LIMIT 10: {} rows moved        {:<10} {:<10} e2e {}",
        top.len(),
        fmt_dur(m.compute),
        fmt_bytes(m.bytes),
        fmt_dur(m.end_to_end(&model))
    );

    // Verified (completeness-proved) range vs plain range.
    let commit_start = Instant::now();
    dep.ds.commit_table("employees", "salary").unwrap();
    let commit_t = commit_start.elapsed();
    let (plain, m_plain) = measure(&stats, || {
        dep.ds
            .select(
                "employees",
                &[Predicate::between("salary", 100_000u64, 150_000u64)],
            )
            .unwrap()
    });
    let (proved, m_proved) = measure(&stats, || {
        dep.ds
            .verified_range("employees", "salary", 100_000, 150_000)
            .unwrap()
    });
    assert_eq!(plain.len(), proved.len());
    println!(
        "  range plain:    {} rows  {:<10} {:<10} e2e {}",
        plain.len(),
        fmt_dur(m_plain.compute),
        fmt_bytes(m_plain.bytes),
        fmt_dur(m_plain.end_to_end(&model))
    );
    println!(
        "  range + proofs: {} rows  {:<10} {:<10} e2e {}   (one-time commit {})",
        proved.len(),
        fmt_dur(m_proved.compute),
        fmt_bytes(m_proved.bytes),
        fmt_dur(m_proved.end_to_end(&model)),
        fmt_dur(commit_t)
    );
    println!(
        "  expected shape: grouped/top-k partials beat full transfer;\n  proofs cost ~log(n) hashes per row over the plain range\n"
    );
}

/// E16 — disaster recovery: rebuild a wiped provider from the quorum.
fn e16_recovery(cfg: &Config) {
    println!("== E16 (paper §I: 'a mechanism to recover the data'): provider rebuild ==");
    let sizes: &[usize] = if cfg.quick {
        &[1_000, 5_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    println!("  rows     wipe+rebuild time  rows/s     bytes moved");
    for &n in sizes {
        let mut dep = deploy_employees(2, 4, n, 160 + n as u64);
        dep.ds
            .cluster()
            .call(3, dasp_server::proto::Request::DropAllTables.encode())
            .unwrap();
        let stats = dep.ds.cluster().stats().clone();
        let before = stats.snapshot();
        let start = Instant::now();
        let rebuilt = dep.ds.rebuild_provider(3).unwrap();
        let t = start.elapsed();
        let delta = stats.snapshot().since(&before);
        // dasp::allow(T1): rebuilt-row count of bench-generated data.
        assert_eq!(rebuilt, n);
        println!(
            "  {n:<8} {:<18} {:<10.0} {}",
            fmt_dur(t),
            n as f64 / t.as_secs_f64(),
            fmt_bytes(delta.total_bytes())
        );
    }
    println!("  expected shape: linear in table size; random-mode shares land\n  bit-identical (verified in tests), so no other provider is touched\n");
}

/// E13 — leakage ablation across share modes + the §IV straw-man break.
fn e13_leakage() {
    println!("== E13 (§IV): leakage per construction ==");
    // Straw-man affine scheme: one known pair breaks everything.
    let straw = AffineStrawman::paper_example();
    let x = 9u32;
    let share = straw.share_for(123_456, x);
    let recovered = straw.break_with_known_pair(x, 1, share);
    println!(
        "  affine straw-man: share of secret 123456 at x=9 is {share}; \
         inverting the affine map recovers {recovered} — BROKEN (as the paper argues)"
    );

    // Slotted scheme: consecutive gaps are jittered.
    let params = OpssParams::new(3, 12, 1 << 20, vec![2, 4, 1, 7]).unwrap();
    let sharing = OpSharing::new(params, DomainKey::derive(b"master", "salary"));
    let gaps: Vec<i128> = (0..64u64)
        .map(|v| sharing.share_for(v + 1, 0).unwrap() - sharing.share_for(v, 0).unwrap())
        .collect();
    let distinct: std::collections::HashSet<i128> = gaps.iter().copied().collect();
    println!(
        "  slotted scheme: {} distinct gaps among 64 consecutive values — no affine invert",
        distinct.len()
    );

    // Mode capability/leakage matrix.
    println!("\n  mode              provider filtering    leakage");
    println!("  Random            none (fetch all)      nothing (info-theoretic < k)");
    println!("  Deterministic     exact match, joins    equality pattern");
    println!("  OrderPreserving   + ranges, order stats equality + total order");
    println!("  (verified in tests/security_properties.rs with statistical checks)\n");
}

/// E17 — batch codec throughput (the ISSUE-2 pipeline): rows/s for
/// INSERT encoding and SELECT reconstruction at statement batch sizes
/// {1, 64, 1024} across encode/decode worker counts {1, 2, 4}. The same
/// number of rows flows through every cell, only the statement batching
/// and fan-out change. Results are also written to BENCH_codec.json so
/// the scalar-vs-batch ratio is tracked alongside the code.
fn e17_codec(cfg: &Config) {
    println!("== E17 (batch codec): insert + SELECT reconstruction throughput ==");
    let total: usize = if cfg.quick { 1024 } else { 4096 };
    let batches = [1usize, 64, 1024];
    let workers_sweep = [1usize, 2, 4];
    let mut results: Vec<(&'static str, usize, usize, f64)> = Vec::new();
    println!("  op      batch  workers       rows/s");
    for &batch in &batches {
        for &workers in &workers_sweep {
            // Insert: load `total` rows as `total / batch` statements.
            let mut dep = deploy_employees(2, 3, 0, 1700 + batch as u64);
            dep.ds.set_workers(workers);
            let data = employees::generate(total, SALARY_DOMAIN, SalaryDist::Uniform, 42);
            let values: Vec<Vec<Value>> = data
                .iter()
                .map(|e| {
                    vec![
                        Value::Str(e.name.clone()),
                        Value::Int(e.salary),
                        Value::Int(e.ssn),
                    ]
                })
                .collect();
            let start = Instant::now();
            for chunk in values.chunks(batch) {
                dep.ds.insert("employees", chunk).unwrap();
            }
            let ins = total as f64 / start.elapsed().as_secs_f64();
            results.push(("insert", batch, workers, ins));

            // Select: full scans of a `batch`-row table, repeated until
            // `total` rows have been reconstructed end to end.
            let mut dep = deploy_employees(2, 3, batch, 1800 + batch as u64);
            dep.ds.set_workers(workers);
            dep.ds.select("employees", &[]).unwrap(); // warm the basis cache
            let reps = (total / batch).max(1);
            let start = Instant::now();
            let mut decoded = 0usize;
            for _ in 0..reps {
                decoded += dep.ds.select("employees", &[]).unwrap().len();
            }
            let sel = decoded as f64 / start.elapsed().as_secs_f64();
            results.push(("select", batch, workers, sel));
            println!("  insert {batch:>6} {workers:>8} {ins:>12.0}");
            println!("  select {batch:>6} {workers:>8} {sel:>12.0}");
        }
    }
    let get = |op: &str, b: usize, w: usize| {
        results
            .iter()
            .find(|r| r.0 == op && r.1 == b && r.2 == w)
            .map(|r| r.3)
            .unwrap_or(f64::NAN)
    };
    let ins_speedup = get("insert", 1024, 1) / get("insert", 1, 1);
    let sel_speedup = get("select", 1024, 1) / get("select", 1, 1);
    println!(
        "  batch-1024 vs batch-1 (workers=1): insert {ins_speedup:.1}x, select {sel_speedup:.1}x"
    );
    let mut json = String::from("{\n  \"experiment\": \"e17_batch_codec\",\n");
    json.push_str(&format!("  \"rows_total\": {total},\n  \"results\": [\n"));
    for (i, (op, b, w, rps)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"op\": \"{op}\", \"batch\": {b}, \"workers\": {w}, \"rows_per_s\": {rps:.1}}}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"speedup_batch1024_vs_batch1_workers1\": \
         {{\"insert\": {ins_speedup:.2}, \"select\": {sel_speedup:.2}}}\n}}\n"
    ));
    if let Err(e) = std::fs::write("BENCH_codec.json", json) {
        println!("  (could not write BENCH_codec.json: {e})");
    }
    println!();
}

/// E18 — concurrent provider execution: queries/s for a mixed read
/// workload as client pipelining width (`query_many` fan-out) and
/// provider worker-pool size scale. A 2 ms emulated per-request WAN
/// latency makes the pipelining effect visible on any machine (including
/// single-core CI): with one worker per provider every request queues
/// behind that worker's latency sleep, while a pool of four overlaps
/// them — the speedup measures request *overlap*, not CPU parallelism.
/// Results land in BENCH_concurrency.json.
fn e18_concurrency(cfg: &Config) {
    println!("== E18 (concurrency): pipelined queries/s vs client threads × provider workers ==");
    let rows = if cfg.quick { 500 } else { 2000 };
    let queries = if cfg.quick { 32 } else { 96 };
    let client_threads = [1usize, 4, 16];
    let provider_workers = [1usize, 2, 4];
    let latency = std::time::Duration::from_millis(2);
    // Mixed read workload: interleaved point lookups (exact salary) and
    // range windows of two widths, so the batch mixes cheap and
    // share-heavy responses.
    let preds: Vec<Vec<Predicate>> = (0..queries)
        .map(|i| {
            let lo = (i as u64).wrapping_mul(7919) % (SALARY_DOMAIN / 2);
            match i % 3 {
                0 => vec![Predicate::between("salary", lo, lo)],
                1 => vec![Predicate::between("salary", lo, lo + SALARY_DOMAIN / 64)],
                _ => vec![Predicate::between("salary", lo, lo + SALARY_DOMAIN / 8)],
            }
        })
        .collect();
    let mut results: Vec<(usize, usize, f64)> = Vec::new();
    println!("  clients  workers    queries/s");
    for &workers in &provider_workers {
        for &clients in &client_threads {
            let mut dep = deploy_employees_concurrent(2, 3, rows, 1900 + workers as u64, workers);
            dep.ds.cluster().set_latency(latency);
            dep.ds.set_workers(clients);
            // Warm the op-sharing and basis caches outside the clock.
            dep.ds.query_many("employees", &preds[..1]).unwrap();
            let start = Instant::now();
            let got = dep.ds.query_many("employees", &preds).unwrap();
            let qps = queries as f64 / start.elapsed().as_secs_f64();
            assert_eq!(got.len(), queries);
            results.push((clients, workers, qps));
            println!("  {clients:>7} {workers:>8} {qps:>12.0}");
        }
    }
    let get = |c: usize, w: usize| {
        results
            .iter()
            .find(|r| r.0 == c && r.1 == w)
            .map(|r| r.2)
            .unwrap_or(f64::NAN)
    };
    let speedup = get(16, 4) / get(16, 1);
    println!("  4 workers vs 1 (16 client threads): {speedup:.1}x");
    let mut json = String::from("{\n  \"experiment\": \"e18_concurrency\",\n");
    json.push_str(&format!(
        "  \"rows\": {rows},\n  \"queries\": {queries},\n  \
         \"emulated_latency_ms\": 2,\n  \"results\": [\n"
    ));
    for (i, (c, w, qps)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"client_threads\": {c}, \"provider_workers\": {w}, \
             \"queries_per_s\": {qps:.1}}}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"speedup_workers4_vs_1_clients16\": {speedup:.2}\n}}\n"
    ));
    if let Err(e) = std::fs::write("BENCH_concurrency.json", json) {
        println!("  (could not write BENCH_concurrency.json: {e})");
    }
    println!();
}

/// E19 — durability cost: commit latency and throughput vs the WAL
/// group-commit batch size, plus recovery time for the resulting log.
///
/// `fsync_every = 1` syncs each logged op individually; larger batches
/// amortise the fsync over concurrent committers (four writer threads
/// here), trading single-op latency for throughput. Recovery replays the
/// surviving log tail into a fresh engine, so its time bounds restart
/// cost at that batch size. Results land in BENCH_wal.json.
fn e19_wal(cfg: &Config) {
    println!("== E19 (durability): commit latency + recovery time vs WAL batch size ==");
    let writers = 4usize;
    let rows_per_writer = if cfg.quick { 150 } else { 500 };
    let total = writers * rows_per_writer;
    let batch_sizes = [1usize, 4, 16, 64];
    let mut results: Vec<(usize, f64, f64, f64)> = Vec::new();
    println!("  fsync_every   mean commit   ops/s      recovery");
    for &batch in &batch_sizes {
        let dir = std::env::temp_dir().join(format!("dasp-e19-{}-b{batch}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg_d = DurableConfig {
            wal: WalConfig {
                fsync_every: batch,
                batch_window: std::time::Duration::from_micros(500),
            },
            checkpoint_every: 0, // measure the log, not checkpoints
            pool_frames: 256,
        };
        let (engine, _) = ProviderEngine::durable(&dir, cfg_d).expect("e19: open");
        assert_eq!(
            engine.execute(&Request::CreateTable {
                name: "t".into(),
                columns: vec!["v".into()],
                indexed: vec![false],
            }),
            Response::Ack
        );
        let engine = std::sync::Arc::new(engine);
        let start = Instant::now();
        let latency_ns: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..writers as u64)
                .map(|t| {
                    let engine = std::sync::Arc::clone(&engine);
                    scope.spawn(move || {
                        let mut ns = 0u64;
                        for i in 0..rows_per_writer as u64 {
                            let id = t * 1_000_000 + i + 1;
                            let req = Request::Insert {
                                table: "t".into(),
                                rows: vec![Row {
                                    id,
                                    shares: vec![id as i128 * 3],
                                }],
                            };
                            let t0 = Instant::now();
                            assert_eq!(engine.execute(&req), Response::Ack);
                            ns += t0.elapsed().as_nanos() as u64;
                        }
                        ns
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let elapsed = start.elapsed().as_secs_f64();
        let ops_per_s = total as f64 / elapsed;
        let mean_commit_us = latency_ns as f64 / total as f64 / 1e3;
        drop(engine);
        let t0 = Instant::now();
        let (recovered, report) = ProviderEngine::recover(&dir).expect("e19: recover");
        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        let Response::Agg { count, .. } = recovered.execute(&Request::Query {
            table: "t".into(),
            predicate: vec![],
            agg: Some(dasp_server::AggOp::Count),
        }) else {
            panic!("e19: count query failed after recovery");
        };
        assert_eq!(count as usize, total, "e19: recovery lost rows");
        assert_eq!(report.wal_records as usize, total + 1); // +1 create
        results.push((batch, mean_commit_us, ops_per_s, recovery_ms));
        println!("  {batch:>11} {mean_commit_us:>10.0}us {ops_per_s:>10.0} {recovery_ms:>9.1}ms");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let gain = results.last().map(|r| r.2).unwrap_or(f64::NAN)
        / results.first().map(|r| r.2).unwrap_or(f64::NAN);
    println!("  batch=64 vs batch=1 throughput: {gain:.1}x");
    let mut json = String::from("{\n  \"experiment\": \"e19_wal\",\n");
    json.push_str(&format!(
        "  \"writers\": {writers},\n  \"rows_total\": {total},\n  \"results\": [\n"
    ));
    for (i, (batch, lat, ops, rec)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fsync_every\": {batch}, \"mean_commit_us\": {lat:.1}, \
             \"ops_per_s\": {ops:.1}, \"recovery_ms\": {rec:.2}}}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"throughput_batch64_vs_1\": {gain:.2}\n}}\n"
    ));
    if let Err(e) = std::fs::write("BENCH_wal.json", json) {
        println!("  (could not write BENCH_wal.json: {e})");
    }
    println!();
}

// ---- E20: real TCP transport vs in-process channels ----

/// One measured (transport, connections) cell.
struct E20Row {
    transport: &'static str,
    conns: usize,
    queries: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// A provider preloaded with `rows` share rows on an indexed column.
fn e20_service(rows: usize) -> std::sync::Arc<dasp_server::service::ProviderService> {
    let service = dasp_server::service::ProviderService::new();
    assert_eq!(
        service.engine().execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["v".into()],
            indexed: vec![true],
        }),
        Response::Ack
    );
    let batch: Vec<Row> = (0..rows as u64)
        .map(|i| Row {
            id: i + 1,
            shares: vec![(i.wrapping_mul(7919) % (1 << 20)) as i128],
        })
        .collect();
    assert_eq!(
        service.engine().execute(&Request::Insert {
            table: "t".into(),
            rows: batch,
        }),
        Response::Ack
    );
    std::sync::Arc::new(service)
}

/// The query mix: point lookups and two range widths over share space,
/// pre-encoded so the measured loop is pure transport + execution.
fn e20_requests() -> Vec<Vec<u8>> {
    (0..256u64)
        .map(|i| {
            let lo = (i.wrapping_mul(7919) % (1 << 19)) as i128;
            let hi = match i % 3 {
                0 => lo,
                1 => lo + (1 << 12),
                _ => lo + (1 << 15),
            };
            Request::Query {
                table: "t".into(),
                predicate: vec![dasp_server::PredAtom::Range { col: 0, lo, hi }],
                agg: None,
            }
            .encode()
        })
        .collect()
}

/// Count per connection chosen so total work stays roughly constant as
/// the sweep fans out (we measure fan-in, not per-thread volume).
fn e20_per_conn(total_target: usize, conns: usize) -> usize {
    (total_target / conns).max(4)
}

fn e20_percentiles(mut lat_us: Vec<u64>) -> (f64, f64) {
    if lat_us.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    lat_us.sort_unstable();
    let pick = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q) as usize] as f64;
    (pick(0.50), pick(0.99))
}

/// Drive `conns` blocking socket connections against one TCP provider.
fn e20_trial_tcp(
    addr: std::net::SocketAddr,
    conns: usize,
    per_conn: usize,
    reqs: &[Vec<u8>],
) -> (f64, f64, f64) {
    let barrier = std::sync::Barrier::new(conns + 1);
    let (elapsed, lat): (f64, Vec<u64>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let barrier = &barrier;
                scope.spawn(move || {
                    // Dial outside the measured window; retry briefly so
                    // a thundering herd of SYNs at 1024 conns survives a
                    // momentarily full accept queue.
                    let mut conn = None;
                    // Generous I/O timeout: a deep chunk behind 1024
                    // closed-loop connections legitimately waits several
                    // seconds for its turn through the one-core server.
                    for _ in 0..100 {
                        match dasp_net::BlockingConn::connect(
                            addr,
                            std::time::Duration::from_secs(60),
                        ) {
                            Ok(c) => {
                                conn = Some(c);
                                break;
                            }
                            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
                        }
                    }
                    let mut conn = conn.expect("e20: connect");
                    barrier.wait();
                    let mut lat_us = Vec::with_capacity(per_conn);
                    for q in 0..per_conn {
                        let req = &reqs[(t * per_conn + q) % reqs.len()];
                        let t0 = Instant::now();
                        let resp = conn.call(req).expect("e20: tcp call");
                        lat_us.push(t0.elapsed().as_micros() as u64);
                        let decoded = Response::decode(&resp).expect("e20: decode");
                        assert!(matches!(decoded, Response::Rows(_)));
                    }
                    lat_us
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("e20: tcp thread"));
        }
        (start.elapsed().as_secs_f64(), all)
    });
    let total = conns * per_conn;
    let (p50, p99) = e20_percentiles(lat);
    (total as f64 / elapsed, p50, p99)
}

/// Max concurrent callers sharing each multiplexed client in the E21
/// window trial — the shape quorum fan-out and `query_many` worker pools
/// produce: many threads issuing requests down one provider connection
/// at once. The batcher needs concurrency on a connection to have
/// anything to pack, and collapsing sockets (1024 callers over 64
/// connections instead of 1024) is precisely the amortization batching
/// buys; the unbatched E20 tcp cell at the same fan-in pays one socket
/// (and one frame) per caller.
const E21_CALLERS_PER_CONN: usize = 16;

/// E21 explicit-batch driver: the same one-thread-per-connection shape
/// as the E20 tcp driver, but each connection issues its queries
/// `chunk` at a time through [`dasp_net::BlockingConn::call_many`]
/// — one `BatchRequest` frame, one CRC, one syscall per chunk, and one
/// coalesced `BatchResponse` back. This isolates the multi-query frame
/// win from client-side coalescing-window dynamics: depth comes from
/// the caller knowing its queries up front (the `query_many` /
/// quorum-fan-out shape), not from concurrent threads racing a window.
/// Latencies are per *chunk* round trip (every query in a chunk
/// experiences that latency, so cells compare against per-call rows at
/// matched in-flight queries: conns × chunk).
fn e21_trial_call_many(
    addr: std::net::SocketAddr,
    conns: usize,
    chunk: usize,
    per_conn: usize,
    reqs: &[Vec<u8>],
) -> (f64, f64, f64) {
    let barrier = std::sync::Barrier::new(conns + 1);
    let (elapsed, lat): (f64, Vec<u64>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut conn = None;
                    // Generous I/O timeout: a deep chunk behind 1024
                    // closed-loop connections legitimately waits several
                    // seconds for its turn through the one-core server.
                    for _ in 0..100 {
                        match dasp_net::BlockingConn::connect(
                            addr,
                            std::time::Duration::from_secs(60),
                        ) {
                            Ok(c) => {
                                conn = Some(c);
                                break;
                            }
                            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
                        }
                    }
                    let mut conn = conn.expect("e21: connect");
                    // Unmeasured warmup round trip.
                    conn.call(&reqs[t % reqs.len()]).expect("e21: warmup");
                    barrier.wait();
                    let mut lat_us = Vec::with_capacity(per_conn / chunk + 1);
                    let mut done = 0usize;
                    while done < per_conn {
                        let n = chunk.min(per_conn - done);
                        let chunk: Vec<&[u8]> = (0..n)
                            .map(|q| reqs[(t * per_conn + done + q) % reqs.len()].as_slice())
                            .collect();
                        let t0 = Instant::now();
                        let resps = conn.call_many(&chunk).expect("e21: call_many");
                        lat_us.push(t0.elapsed().as_micros() as u64);
                        for resp in &resps {
                            let decoded = Response::decode(resp).expect("e21: decode");
                            assert!(matches!(decoded, Response::Rows(_)));
                        }
                        done += n;
                    }
                    lat_us
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("e21: call_many thread"));
        }
        (start.elapsed().as_secs_f64(), all)
    });
    let total = conns * per_conn;
    let (p50, p99) = e20_percentiles(lat);
    (total as f64 / elapsed, p50, p99)
}

/// E21 window driver: `callers` threads spread over `conns` multiplexed
/// [`dasp_net::TcpClient`]s (up to [`E21_CALLERS_PER_CONN`] per client),
/// with the given coalescing window. `window_us == 0` is the unbatched
/// control (direct writes, one frame per call) on the identical driver,
/// isolating the batching effect from the driver shape. Latencies are
/// per-call round trips as each caller observes them.
fn e21_trial_batched(
    addr: std::net::SocketAddr,
    conns: usize,
    callers: usize,
    per_caller: usize,
    window_us: u64,
    reqs: &[Vec<u8>],
) -> (f64, f64, f64) {
    let clients: Vec<std::sync::Arc<dasp_net::TcpClient>> = (0..conns)
        .map(|_| {
            // Dial outside the measured window; retry briefly so the
            // thundering herd of SYNs at 1024 conns survives a full
            // accept queue.
            let mut client = None;
            for _ in 0..100 {
                match dasp_net::TcpClient::connect(
                    addr,
                    dasp_net::TcpClientConfig {
                        batch_window: std::time::Duration::from_micros(window_us),
                        ..dasp_net::TcpClientConfig::default()
                    },
                ) {
                    Ok(c) => {
                        client = Some(c);
                        break;
                    }
                    Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
                }
            }
            std::sync::Arc::new(client.expect("e21: connect"))
        })
        .collect();
    let barrier = std::sync::Barrier::new(callers + 1);
    let (elapsed, lat): (f64, Vec<u64>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..callers)
            .map(|t| {
                let barrier = &barrier;
                let client = std::sync::Arc::clone(&clients[t % conns]);
                // Small stacks: the default 8 MiB stack would reserve
                // 8 GiB of address space at 1024 callers for threads
                // that need a few KiB.
                std::thread::Builder::new()
                    .stack_size(128 << 10)
                    .spawn_scoped(scope, move || {
                        // One unmeasured warmup call: thread-spawn
                        // storms, lazily-started batcher/reader threads
                        // and cold caches otherwise dominate the short
                        // measured window (especially at 1024 callers
                        // on the 1-core CI box).
                        let warm = client.call(&reqs[t % reqs.len()]).expect("e21: warmup");
                        assert!(matches!(
                            Response::decode(&warm).expect("e21: warmup decode"),
                            Response::Rows(_)
                        ));
                        barrier.wait();
                        let mut lat_us = Vec::with_capacity(per_caller);
                        for q in 0..per_caller {
                            let req = &reqs[(t * per_caller + q) % reqs.len()];
                            let t0 = Instant::now();
                            let resp = client.call(req).expect("e21: call");
                            lat_us.push(t0.elapsed().as_micros() as u64);
                            let decoded = Response::decode(&resp).expect("e21: decode");
                            assert!(matches!(decoded, Response::Rows(_)));
                        }
                        lat_us
                    })
                    .expect("e21: spawn caller")
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("e21: caller thread"));
        }
        (start.elapsed().as_secs_f64(), all)
    });
    let total = callers * per_caller;
    let (p50, p99) = e20_percentiles(lat);
    (total as f64 / elapsed, p50, p99)
}

/// The in-process comparison: same preloaded provider behind a worker
/// pool, `conns` client threads calling through channels.
fn e20_trial_inproc(
    service: std::sync::Arc<dasp_server::service::ProviderService>,
    workers: usize,
    conns: usize,
    per_conn: usize,
    reqs: &[Vec<u8>],
) -> (f64, f64, f64) {
    let cluster = std::sync::Arc::new(Cluster::spawn_concurrent(
        vec![service as std::sync::Arc<dyn dasp_net::SharedService>],
        std::time::Duration::from_secs(30),
        workers,
    ));
    let barrier = std::sync::Barrier::new(conns + 1);
    let (elapsed, lat): (f64, Vec<u64>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let barrier = &barrier;
                let cluster = std::sync::Arc::clone(&cluster);
                scope.spawn(move || {
                    barrier.wait();
                    let mut lat_us = Vec::with_capacity(per_conn);
                    for q in 0..per_conn {
                        let req = reqs[(t * per_conn + q) % reqs.len()].clone();
                        let t0 = Instant::now();
                        let resp = cluster.call(0, req).expect("e20: rpc call");
                        lat_us.push(t0.elapsed().as_micros() as u64);
                        let decoded = Response::decode(&resp).expect("e20: decode");
                        assert!(matches!(decoded, Response::Rows(_)));
                    }
                    lat_us
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("e20: inproc thread"));
        }
        (start.elapsed().as_secs_f64(), all)
    });
    let total = conns * per_conn;
    let (p50, p99) = e20_percentiles(lat);
    (total as f64 / elapsed, p50, p99)
}

/// Shared measurement core for `e20` and `--check`: one provider, both
/// transports, a sweep of connection counts. Quick mode trims the sweep
/// and volume; the CI gate re-runs whichever mode the baseline used so
/// numbers stay comparable.
fn e20_measure(quick: bool) -> Vec<E20Row> {
    let rows = if quick { 2_000 } else { 10_000 };
    let total_target = if quick { 4_096 } else { 16_384 };
    let conn_counts: &[usize] = if quick {
        &[1, 16, 256]
    } else {
        &[1, 16, 256, 1024]
    };
    let workers = Cluster::default_workers();
    let reqs = e20_requests();
    let mut out = Vec::new();

    // Each cell is best-of-N, and the two transports' trials for a
    // given connection count run back to back: on a small shared box a
    // single trial is hostage to scheduler placement and background
    // load (observed swings of ±15% run to run). The best trial tracks
    // the actual cost of the transport, interleaving lets slow spells
    // hit both sides of the ratio equally, and a stable number is what
    // the regression gate needs.
    const TRIALS: usize = 3;
    fn best(a: (f64, f64, f64), b: (f64, f64, f64)) -> (f64, f64, f64) {
        if a.0 >= b.0 {
            a
        } else {
            b
        }
    }

    let tcp_service = e20_service(rows);
    // Inline mode (workers = 0): share-table queries are short and
    // non-blocking, so the reactor runs them on the shard threads —
    // the low-latency configuration a cheap-handler deployment picks.
    let server = dasp_net::TcpServer::serve(
        "127.0.0.1:0",
        tcp_service as std::sync::Arc<dyn dasp_net::SharedService>,
        dasp_net::ReactorConfig {
            workers: 0,
            ..dasp_net::ReactorConfig::default()
        },
    )
    .expect("e20: bind");
    let addr = server.local_addr();
    let inproc_service = e20_service(rows);

    let mut inproc_rows = Vec::new();
    for &conns in conn_counts {
        let per_conn = e20_per_conn(total_target, conns);
        let mut tcp = (f64::MIN, 0.0, 0.0);
        let mut inproc = (f64::MIN, 0.0, 0.0);
        for _ in 0..TRIALS {
            tcp = best(tcp, e20_trial_tcp(addr, conns, per_conn, &reqs));
            inproc = best(
                inproc,
                e20_trial_inproc(
                    std::sync::Arc::clone(&inproc_service),
                    workers,
                    conns,
                    per_conn,
                    &reqs,
                ),
            );
        }
        out.push(E20Row {
            transport: "tcp",
            conns,
            queries: conns * per_conn,
            qps: tcp.0,
            p50_us: tcp.1,
            p99_us: tcp.2,
        });
        inproc_rows.push(E20Row {
            transport: "inproc",
            conns,
            queries: conns * per_conn,
            qps: inproc.0,
            p50_us: inproc.1,
            p99_us: inproc.2,
        });
    }
    out.extend(inproc_rows);

    // E21: batched wire RPC on the same server, swept over the coalescing
    // window at the same fan-in axis as E20 (concurrent callers). The
    // window's job is collapsing sockets: up to E21_CALLERS_PER_CONN
    // callers share one multiplexed client, so 1024 callers ride 64
    // connections where the unbatched E20 tcp cell needs 1024. Window 0
    // is the unbatched control on the identical driver. Labels are
    // distinct transports so the regression gate keys the batched cells
    // like any other (transport, conns) cell; the `conns` column records
    // fan-in (callers), matching the other rows.
    const E21_WINDOWS: &[(u64, &str)] =
        &[(0, "tcp_bw0"), (1000, "tcp_bw1000"), (4000, "tcp_bw4000")];
    const E21_TRIALS: usize = 3;
    // The window cells are the noisiest in the table (hundreds of caller
    // threads racing a µs-scale window on one core); two extra trials
    // per cell tighten best-of enough for the 15% regression gate.
    const E21_WINDOW_TRIALS: usize = 5;
    for &(window_us, label) in E21_WINDOWS {
        for &callers in conn_counts {
            let conns = callers.div_ceil(E21_CALLERS_PER_CONN);
            // Floor of 8 measured calls per caller so steady-state
            // batching (not per-thread cold start) dominates each cell.
            let per_caller = (total_target / callers).max(8);
            let mut cell = (f64::MIN, 0.0, 0.0);
            for _ in 0..E21_WINDOW_TRIALS {
                cell = best(
                    cell,
                    e21_trial_batched(addr, conns, callers, per_caller, window_us, &reqs),
                );
            }
            out.push(E20Row {
                transport: label,
                conns: callers,
                queries: callers * per_caller,
                qps: cell.0,
                p50_us: cell.1,
                p99_us: cell.2,
            });
        }
    }

    // E21 explicit multi-query frames: `call_many` chunks on the E20 tcp
    // driver shape (one thread per connection) — the depth a client gets
    // by knowing its queries up front instead of racing concurrent
    // callers against a window. Two chunk sizes: 16 (the query_many
    // default shape) and 64 (deep amortization). The extra 64-conn cell
    // gives a matched-in-flight pairing against per-call rows: chunk 16
    // × 64 conns holds 1024 queries in flight, the same as tcp @ 1024.
    const E21_CHUNKS: &[(usize, &str)] = &[(16, "tcp_batch16"), (64, "tcp_batch64")];
    let batch_conn_counts: &[usize] = if quick {
        &[1, 16, 256]
    } else {
        &[1, 16, 64, 256, 1024]
    };
    for &(chunk, label) in E21_CHUNKS {
        for &conns in batch_conn_counts {
            // Floor of 4 chunks (and ≥128 queries) per connection: with
            // only a chunk or two the barrier-release ramp and
            // end-of-run convoy dominate the cell.
            let per_conn = (total_target / conns).max(4 * chunk).max(128);
            let mut cell = (f64::MIN, 0.0, 0.0);
            for _ in 0..E21_TRIALS {
                cell = best(
                    cell,
                    e21_trial_call_many(addr, conns, chunk, per_conn, &reqs),
                );
            }
            out.push(E20Row {
                transport: label,
                conns,
                queries: conns * per_conn,
                qps: cell.0,
                p50_us: cell.1,
                p99_us: cell.2,
            });
        }
    }
    drop(server);
    out
}

/// E20 — the tentpole experiment: a real TCP provider behind the
/// reactor vs the in-process channel transport, swept over concurrent
/// connections. The reactor serves every connection count from the same
/// handful of threads (shards + workers); the in-process side needs a
/// client thread per connection. Results land in BENCH_net.json.
fn e20_net(cfg: &Config) {
    println!("== E20/E21 (net): TCP reactor vs in-process, plus batched wire RPC ==");
    let results = e20_measure(cfg.quick);
    println!("  transport   conns   queries/s     p50        p99");
    for r in &results {
        println!(
            "  {:<10} {:>6} {:>11.0} {:>8.0}us {:>8.0}us",
            r.transport, r.conns, r.qps, r.p50_us, r.p99_us
        );
    }
    let get = |t: &str, c: usize| {
        results
            .iter()
            .find(|r| r.transport == t && r.conns == c)
            .map(|r| r.qps)
            .unwrap_or(f64::NAN)
    };
    let ratio16 = get("tcp", 16) / get("inproc", 16);
    let scale = get("tcp", 256) / get("tcp", 16);
    println!("  tcp/inproc @16 conns: {ratio16:.2}x   tcp 256 vs 16 conns: {scale:.2}x");
    let max_conns = if cfg.quick { 256 } else { 1024 };
    let batched_best = get("tcp_bw1000", max_conns)
        .max(get("tcp_bw4000", max_conns))
        .max(get("tcp_batch16", max_conns))
        .max(get("tcp_batch64", max_conns));
    let batch_speedup = batched_best / get("tcp", max_conns);
    let window_gain = batched_best / get("tcp_bw0", max_conns);
    println!(
        "  E21 @{max_conns} conns: best batched {batched_best:.0} q/s — \
         {batch_speedup:.2}x vs E20 tcp, {window_gain:.2}x vs window-0 control"
    );
    let mut json = String::from("{\n  \"experiment\": \"e20_net\",\n");
    json.push_str(&format!("  \"quick\": {},\n  \"results\": [\n", cfg.quick));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"conns\": {}, \"queries\": {}, \
             \"queries_per_s\": {:.1}, \"p50_us\": {:.0}, \"p99_us\": {:.0}}}{}\n",
            r.transport,
            r.conns,
            r.queries,
            r.qps,
            r.p50_us,
            r.p99_us,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"tcp_vs_inproc_at_16\": {ratio16:.3},\n  \"tcp_256_vs_16\": {scale:.3},\n  \
         \"batched_vs_tcp_at_{max_conns}\": {batch_speedup:.3}\n}}\n"
    ));
    if let Err(e) = std::fs::write("BENCH_net.json", json) {
        println!("  (could not write BENCH_net.json: {e})");
    }
    println!();
}

/// Parse `(transport, conns) → queries_per_s` out of a BENCH_net.json
/// written by [`e20_net`] (hand-rolled like the writer; one result per
/// line).
fn parse_bench_net(text: &str) -> Vec<(String, usize, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest.find([',', '}', '"']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter(|l| l.contains("\"transport\""))
        .filter_map(|l| {
            let transport = field(l, "\"transport\": \"")?;
            let conns: usize = field(l, "\"conns\": ")?.parse().ok()?;
            let qps: f64 = field(l, "\"queries_per_s\": ")?.parse().ok()?;
            Some((transport, conns, qps))
        })
        .collect()
}

/// `--check <BENCH_net.json>`: the CI perf-regression gate. Re-measures
/// E20 in whichever mode (quick/full) the baseline was recorded with —
/// the two modes use different table sizes and query volumes, so their
/// numbers are not comparable — and fails (exit 1) if any
/// (transport, conns) cell present in both runs lost more than 15%
/// throughput vs the committed baseline. A cell below the bar triggers
/// up to two full re-measurements with per-cell best-of merging first:
/// on a small shared box a single pass can lose >15% to scheduler
/// placement alone, and a real regression stays below the bar on every
/// pass while noise does not.
fn check_e20(baseline_path: &str) -> i32 {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            println!("check: cannot read {baseline_path}: {e}");
            return 1;
        }
    };
    let baseline = parse_bench_net(&text);
    if baseline.is_empty() {
        println!("check: no E20 results found in {baseline_path}");
        return 1;
    }
    let quick = !text.contains("\"quick\": false");
    println!(
        "== E20 perf-regression check vs {baseline_path} ({} mode, >15% loss fails) ==",
        if quick { "quick" } else { "full" }
    );
    let base_for = |r: &E20Row| {
        baseline
            .iter()
            .find(|(t, c, _)| t == r.transport && *c == r.conns)
            .map(|&(_, _, q)| q)
    };
    let mut measured = e20_measure(quick);
    for _retry in 0..2 {
        let noisy = measured
            .iter()
            .any(|r| base_for(r).map(|b| r.qps / b < 0.85).unwrap_or(false));
        if !noisy {
            break;
        }
        println!("  (cells below bar — re-measuring to reject scheduler noise)");
        let again = e20_measure(quick);
        for r in &mut measured {
            if let Some(a) = again
                .iter()
                .find(|a| a.transport == r.transport && a.conns == r.conns)
            {
                if a.qps > r.qps {
                    r.qps = a.qps;
                    r.p50_us = a.p50_us;
                    r.p99_us = a.p99_us;
                }
            }
        }
    }
    let mut failed = false;
    let mut compared = 0usize;
    for r in &measured {
        let Some((_, _, base_qps)) = baseline
            .iter()
            .find(|(t, c, _)| t == r.transport && *c == r.conns)
        else {
            continue; // cells only in the full sweep (e.g. 1024 conns)
        };
        compared += 1;
        let ratio = r.qps / base_qps;
        let verdict = if ratio < 0.85 {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "  {:<9} {:>6} conns: {:>9.0} q/s vs baseline {:>9.0} ({:>5.1}%) {}",
            r.transport,
            r.conns,
            r.qps,
            base_qps,
            ratio * 100.0,
            verdict
        );
    }
    if compared == 0 {
        println!("check: baseline shares no (transport, conns) cells with the quick sweep");
        return 1;
    }
    if failed {
        println!("check: FAILED — throughput regressed >15% vs {baseline_path}");
        1
    } else {
        println!("check: ok ({compared} cells within 15% of baseline)");
        0
    }
}
