//! Kill-and-recover stress for the provider write-ahead log.
//!
//! The parent process re-executes itself as a child per crash point
//! (`DASP_CRASH_POINT` + `DASP_CRASH_AFTER`, see
//! [`dasp_storage::wal::CrashPoint`]). Each child serves a durable
//! provider through the RPC worker pool (`DASP_PROVIDER_WORKERS`
//! threads, clients to match), inserts rows with deterministic shares,
//! and prints `ACK <id>` for every acknowledged insert — until the armed
//! crash point aborts the whole process mid-append, mid-fsync, or
//! mid-checkpoint. The parent then recovers the provider directory and
//! checks the durability contract:
//!
//! 1. every acknowledged row is present after recovery (no lost write);
//! 2. every recovered row carries the deterministic share of its id
//!    (no phantom or corrupt row);
//! 3. a Merkle commitment over the recovered table equals the commitment
//!    over a volatile engine rebuilt from the same rows (indexes and
//!    commitment machinery agree bit-for-bit).
//!
//! Exit code 0 = contract held at every crash point.

use dasp_server::{DurableConfig, ProviderEngine, ProviderService, Request, Response, Row};
use dasp_storage::WalConfig;
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS_PER_CLIENT: u64 = 120;

fn share_of(id: u64) -> i128 {
    id as i128 * 7
}

fn stress_cfg() -> DurableConfig {
    DurableConfig {
        wal: WalConfig {
            fsync_every: 4,
            batch_window: Duration::from_micros(200),
        },
        checkpoint_every: 64, // several checkpoints per run
        pool_frames: 256,
    }
}

fn workers() -> usize {
    std::env::var("DASP_PROVIDER_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Child mode: serve one durable provider, insert until killed.
fn run_child(dir: &Path) {
    let workers = workers();
    let (service, _report) =
        ProviderService::durable(dir, stress_cfg()).expect("child: provider open failed");
    let cluster = dasp_net::Cluster::spawn_concurrent(
        vec![Arc::new(service) as Arc<dyn dasp_net::SharedService>],
        Duration::from_secs(10),
        workers,
    );
    let create = Request::CreateTable {
        name: "t".into(),
        columns: vec!["v".into()],
        indexed: vec![true],
    };
    let resp = Response::decode(&cluster.call(0, create.encode()).expect("create rpc"))
        .expect("create decode");
    assert_eq!(resp, Response::Ack, "child: create failed");
    let cluster = Arc::new(cluster);
    std::thread::scope(|scope| {
        for t in 0..workers as u64 {
            let cluster = Arc::clone(&cluster);
            scope.spawn(move || {
                for i in 0..ROWS_PER_CLIENT {
                    let id = t * 1000 + i + 1;
                    let req = Request::Insert {
                        table: "t".into(),
                        rows: vec![Row {
                            id,
                            shares: vec![share_of(id)],
                        }],
                    };
                    let Ok(bytes) = cluster.call(0, req.encode()) else {
                        return; // provider died mid-call: we are crashing
                    };
                    if Response::decode(&bytes) == Ok(Response::Ack) {
                        // One line per ack; line buffering flushes it
                        // before the abort can eat it.
                        println!("ACK {id}");
                    }
                }
            });
        }
    });
    let _ = std::io::stdout().flush();
}

/// Parent mode: run the child under one crash point, then verify.
fn run_case(exe: &Path, base: &Path, point: &str, after: u64) -> Result<(), String> {
    let dir = base.join(format!("provider-{point}-{after}"));
    let _ = std::fs::remove_dir_all(&dir);
    let output = Command::new(exe)
        .arg("--child")
        .arg(&dir)
        .env("DASP_CRASH_POINT", point)
        .env("DASP_CRASH_AFTER", after.to_string())
        .output()
        .map_err(|e| format!("{point}: spawn failed: {e}"))?;
    let stdout = String::from_utf8_lossy(&output.stdout);
    let acked: BTreeSet<u64> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("ACK "))
        .filter_map(|v| v.parse().ok())
        .collect();
    let crashed = !output.status.success();

    let t0 = Instant::now();
    let (engine, report) =
        ProviderEngine::recover(&dir).map_err(|e| format!("{point}: recovery failed: {e}"))?;
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;

    let resp = engine.execute(&Request::Query {
        table: "t".into(),
        predicate: vec![],
        agg: None,
    });
    let Response::Rows(rows) = resp else {
        return Err(format!("{point}: post-recovery query failed: {resp:?}"));
    };
    let recovered: BTreeSet<u64> = rows.iter().map(|r| r.id).collect();
    // 1. No acknowledged write may be lost.
    if let Some(lost) = acked.difference(&recovered).next() {
        return Err(format!(
            "{point}: LOST acknowledged row {lost} ({} acked, {} recovered)",
            acked.len(),
            recovered.len()
        ));
    }
    // 2. No phantom or corrupt row may surface.
    for row in &rows {
        if row.shares != vec![share_of(row.id)] {
            return Err(format!("{point}: row {} has corrupt shares", row.id));
        }
    }
    // 3. Indexes + commitments agree with a clean rebuild.
    if !rows.is_empty() {
        let volatile = ProviderEngine::new();
        volatile.execute(&Request::CreateTable {
            name: "t".into(),
            columns: vec!["v".into()],
            indexed: vec![true],
        });
        assert_eq!(
            volatile.execute(&Request::Insert {
                table: "t".into(),
                rows: rows.clone(),
            }),
            Response::Ack
        );
        let commit = Request::Commit {
            table: "t".into(),
            col: 0,
        };
        let (Response::Committed { root: a, .. }, Response::Committed { root: b, .. }) =
            (engine.execute(&commit), volatile.execute(&commit))
        else {
            return Err(format!("{point}: commit failed after recovery"));
        };
        if a != b {
            return Err(format!(
                "{point}: recovered Merkle root diverges from rebuild"
            ));
        }
    }
    println!(
        "  {point:<18} after={after:<3} crashed={crashed:<5} acked={:<4} recovered={:<4} \
         ckpt_rows={:<4} wal_records={:<4} torn={} reset={} recovery={recovery_ms:.1}ms",
        acked.len(),
        recovered.len(),
        report.checkpoint_rows,
        report.wal_records,
        report.torn_bytes,
        report.wal_reset,
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        run_child(Path::new(&args[2]));
        return;
    }
    let exe = std::env::current_exe().expect("current_exe");
    let base: PathBuf = std::env::temp_dir().join(format!(
        "dasp-wal-stress-{}-w{}",
        std::process::id(),
        workers()
    ));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("mkdir");
    println!(
        "wal_stress: kill-and-recover at every crash point ({} provider workers)",
        workers()
    );
    let cases: &[(&str, &[u64])] = &[
        ("mid-record", &[5, 40, 90]),
        ("before-fsync", &[2, 10, 25]),
        ("after-fsync", &[2, 10, 25]),
        ("mid-checkpoint", &[1, 2]),
        ("before-wal-switch", &[1, 2]),
    ];
    let mut failures = 0;
    for (point, afters) in cases {
        for &after in *afters {
            if let Err(e) = run_case(&exe, &base, point, after) {
                eprintln!("FAIL: {e}");
                failures += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    if failures > 0 {
        eprintln!("wal_stress: {failures} case(s) violated the durability contract");
        std::process::exit(1);
    }
    println!("wal_stress: all crash points recovered the exact committed prefix");
}
