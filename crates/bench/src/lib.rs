//! Shared harness for the experiment suite and criterion benches.
//!
//! Every experiment (E1–E13, see EXPERIMENTS.md) needs the same scaffolding:
//! deploy a cluster, load a workload, measure compute time and metered
//! traffic, convert traffic into modeled WAN time. This crate centralizes
//! that so each bench states only its sweep.

use dasp_client::{ColumnSpec, DataSource, TableSchema, Value};
use dasp_core::client::ClientKeys;
use dasp_net::{Cluster, NetworkModel, TrafficStats};
use dasp_server::service::{provider_fleet, shared_provider_fleet};
use dasp_sss::ShareMode;
use dasp_workload::employees::{self, SalaryDist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One measured run: wall-clock compute plus metered traffic.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Client+provider compute time actually spent.
    pub compute: Duration,
    /// Bytes moved both directions.
    pub bytes: u64,
    /// Request/response round trips.
    pub round_trips: u64,
}

impl Measurement {
    /// End-to-end time under a network model.
    pub fn end_to_end(&self, model: &NetworkModel) -> Duration {
        self.compute + model.transfer_time(self.bytes, self.round_trips as u32)
    }
}

/// Measure `f` against the given traffic meters.
pub fn measure<T>(stats: &TrafficStats, f: impl FnOnce() -> T) -> (T, Measurement) {
    let before = stats.snapshot();
    let start = Instant::now();
    let out = f();
    let compute = start.elapsed();
    let delta = stats.snapshot().since(&before);
    (
        out,
        Measurement {
            compute,
            bytes: delta.total_bytes(),
            round_trips: delta.round_trips,
        },
    )
}

/// A deployed employees database plus its plaintext ground truth.
pub struct EmployeesDeployment {
    /// The data source, table `employees` created and loaded.
    pub ds: DataSource,
    /// The plaintext rows (for oracles).
    pub data: Vec<employees::Employee>,
}

/// Salary domain used across the suite.
pub const SALARY_DOMAIN: u64 = 1 << 20;

/// Deploy `n` providers (threshold `k`) and load `rows` employees.
pub fn deploy_employees(k: usize, n: usize, rows: usize, seed: u64) -> EmployeesDeployment {
    let cluster = Cluster::spawn(provider_fleet(n), Duration::from_secs(30));
    deploy_onto(cluster, k, n, rows, seed)
}

/// Like [`deploy_employees`], but each provider serves requests from a
/// `workers`-thread pool (shared-read engine), so overlapping requests
/// interleave instead of queueing behind one service thread.
pub fn deploy_employees_concurrent(
    k: usize,
    n: usize,
    rows: usize,
    seed: u64,
    workers: usize,
) -> EmployeesDeployment {
    let cluster =
        Cluster::spawn_concurrent(shared_provider_fleet(n), Duration::from_secs(30), workers);
    deploy_onto(cluster, k, n, rows, seed)
}

fn deploy_onto(
    cluster: Cluster,
    k: usize,
    n: usize,
    rows: usize,
    seed: u64,
) -> EmployeesDeployment {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = ClientKeys::generate(k, n, &mut rng).expect("keys");
    let mut ds = DataSource::with_seed(keys, cluster, seed).expect("data source");
    ds.create_table(
        TableSchema::new(
            "employees",
            vec![
                ColumnSpec::text("name", 8, ShareMode::Deterministic),
                ColumnSpec::numeric("salary", SALARY_DOMAIN, ShareMode::OrderPreserving),
                ColumnSpec::numeric("ssn", 1 << 30, ShareMode::Random),
            ],
        )
        .expect("schema"),
    )
    .expect("create");
    let data = employees::generate(rows, SALARY_DOMAIN, SalaryDist::Uniform, seed ^ 0xbeef);
    let values: Vec<Vec<Value>> = data
        .iter()
        .map(|e| {
            vec![
                Value::Str(e.name.clone()),
                Value::Int(e.salary),
                Value::Int(e.ssn),
            ]
        })
        .collect();
    for chunk in values.chunks(1000) {
        ds.insert("employees", chunk).expect("insert");
    }
    EmployeesDeployment { ds, data }
}

/// Format a duration in engineering units for table output.
pub fn fmt_dur(d: Duration) -> String {
    if d < Duration::from_micros(1) {
        format!("{}ns", d.as_nanos())
    } else if d < Duration::from_millis(1) {
        format!("{:.1}µs", d.as_nanos() as f64 / 1e3)
    } else if d < Duration::from_secs(1) {
        format!("{:.2}ms", d.as_nanos() as f64 / 1e6)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

/// Format a byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b < 1024 {
        format!("{b}B")
    } else if b < 1024 * 1024 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else if b < 1024 * 1024 * 1024 {
        format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_client::Predicate;

    #[test]
    fn deployment_harness_works() {
        let mut dep = deploy_employees(2, 3, 100, 1);
        assert_eq!(dep.data.len(), 100);
        let stats = dep.ds.cluster().stats().clone();
        let (rows, m) = measure(&stats, || {
            dep.ds
                .select(
                    "employees",
                    &[Predicate::between("salary", 0u64, SALARY_DOMAIN - 1)],
                )
                .unwrap()
        });
        assert_eq!(rows.len(), 100);
        assert!(m.bytes > 0);
        assert!(m.round_trips >= 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(10), "10B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_nanos(10)).ends_with("ns"));
    }
}
