//! Protocol benchmarks: the paper's comparators — PIR variants (E3), the
//! commutative-encryption intersection (E2), Paillier aggregation (E6
//! baseline), and encrypted-DBSP query paths (E4/E5 baselines).

use criterion::{criterion_group, criterion_main, Criterion};
use dasp_baseline::encdb::{EncClient, EncServer, RangeStrategy};
use dasp_baseline::intersection::commutative_intersection;
use dasp_baseline::paillier_agg::{PaillierAggClient, PaillierAggServer};
use dasp_baseline::BaselineCost;
use dasp_crypto::commutative::shared_test_prime;
use dasp_pir::{BitDatabase, QrClient, QrServer, TrivialPir, TwoServerClient, TwoServerServer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_pir(c: &mut Criterion) {
    let mut g = c.benchmark_group("pir");
    let n = 1 << 14;
    let db = BitDatabase::random(n, 3);

    let trivial = TrivialPir::new(db.clone());
    g.bench_function("trivial_16kbit", |bench| {
        bench.iter(|| trivial.retrieve(1234))
    });

    let s1 = TwoServerServer::new(db.clone());
    let s2 = TwoServerServer::new(db.clone());
    let client = TwoServerClient::new(n);
    let mut rng = StdRng::seed_from_u64(4);
    g.bench_function("two_server_it_16kbit", |bench| {
        bench.iter(|| client.retrieve(1234, &s1, &s2, &mut rng))
    });

    let mut rng = StdRng::seed_from_u64(5);
    let qr = QrClient::generate(n, 128, &mut rng);
    let server = QrServer::new(db, qr.modulus().clone());
    g.bench_function("qr_cpir_16kbit", |bench| {
        bench.iter(|| qr.retrieve(1234, &server, &mut rng))
    });
    g.finish();
}

fn bench_intersection(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersection");
    let prime = shared_test_prime();
    let a: Vec<Vec<u8>> = (0..50u64).map(|i| i.to_le_bytes().to_vec()).collect();
    let b: Vec<Vec<u8>> = (25..75u64).map(|i| i.to_le_bytes().to_vec()).collect();
    let mut rng = StdRng::seed_from_u64(6);
    g.bench_function("commutative_50x50", |bench| {
        bench.iter(|| commutative_intersection(&prime, &a, &b, &mut rng))
    });
    g.finish();
}

fn bench_paillier(c: &mut Criterion) {
    let mut g = c.benchmark_group("paillier");
    let mut rng = StdRng::seed_from_u64(7);
    let client = PaillierAggClient::generate(256, &mut rng);
    let mut cost = BaselineCost::default();
    let rows: Vec<(u64, u64)> = (0..100).map(|i| (1, i)).collect();
    let server = PaillierAggServer::new(client.encrypt_rows(&rows, &mut rng, &mut cost));
    g.bench_function("sum_100_rows_n256", |bench| {
        let mut c2 = BaselineCost::default();
        bench.iter(|| client.sum(&server, 1, &mut c2))
    });
    g.bench_function("encrypt_row_n256", |bench| {
        let mut c2 = BaselineCost::default();
        bench.iter(|| client.encrypt_rows(&[(1, 42)], &mut rng, &mut c2))
    });
    g.finish();
}

fn bench_encdb(c: &mut Criterion) {
    let mut g = c.benchmark_group("encdb");
    let mut client = EncClient::new(b"0123456789abcdef", vec![1 << 20], 256);
    let mut server = EncServer::new();
    let mut lc = BaselineCost::default();
    let rows: Vec<_> = (0..5000u64)
        .map(|i| client.encrypt_row(&[i * 199 % (1 << 20)], &mut lc))
        .collect();
    server.insert(rows);
    g.bench_function("exact_5k", |bench| {
        let mut qc = BaselineCost::default();
        bench.iter(|| client.exact(&server, 0, 199, &mut qc))
    });
    g.bench_function("range_bucketized_5k", |bench| {
        let mut qc = BaselineCost::default();
        bench.iter(|| {
            client.range(
                &server,
                0,
                100_000,
                110_000,
                RangeStrategy::Bucketized,
                &mut qc,
            )
        })
    });
    g.bench_function("range_ope_5k", |bench| {
        let mut qc = BaselineCost::default();
        bench.iter(|| client.range(&server, 0, 100_000, 110_000, RangeStrategy::Ope, &mut qc))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_pir, bench_intersection, bench_paillier, bench_encdb
}
criterion_main!(benches);
