//! Scalar-vs-batch share codec microbenches: the same work driven through
//! the per-value APIs and through the batch APIs, so the amortization
//! (PRF derivation, Lagrange basis, probe memoization + search
//! narrowing) is visible as a direct ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use dasp_field::Fp;
use dasp_sss::{DomainKey, FieldSharing, OpSharing, OpssParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

const BATCH: usize = 1024;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn bench_field_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_field");
    let mut rng = StdRng::seed_from_u64(11);
    let sharing = FieldSharing::generate(2, 4, &mut rng).unwrap();
    let key = DomainKey::derive(b"master", "salary");
    let secrets: Vec<u64> = (0..BATCH as u64).map(|i| i * 37 + 5).collect();
    g.bench_function("split_det_scalar_1024", |b| {
        b.iter(|| {
            for &s in &secrets {
                black_box(sharing.split_deterministic(s, &key));
            }
        })
    });
    g.bench_function("split_det_batch_1024", |b| {
        b.iter(|| black_box(sharing.split_deterministic_batch(&secrets, &key)))
    });

    let rows: Vec<Vec<Fp>> = secrets
        .iter()
        .map(|&s| {
            sharing
                .split_deterministic(s, &key)
                .into_iter()
                .take(3) // k + 1 extra: the cross-checked read shape
                .map(|sh| sh.y)
                .collect()
        })
        .collect();
    let providers = [0usize, 1, 2];
    let as_shares: Vec<Vec<dasp_sss::FieldShare>> = rows
        .iter()
        .map(|ys| {
            providers
                .iter()
                .zip(ys)
                .map(|(&p, &y)| dasp_sss::FieldShare { provider: p, y })
                .collect()
        })
        .collect();
    g.bench_function("reconstruct_scalar_1024", |b| {
        b.iter(|| {
            for shares in &as_shares {
                black_box(sharing.reconstruct_checked(shares).unwrap());
            }
        })
    });
    g.bench_function("reconstruct_batch_1024", |b| {
        b.iter(|| black_box(sharing.reconstruct_batch(&providers, &rows).unwrap()))
    });
    g.finish();
}

fn bench_opss_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_opss");
    let params = OpssParams::new(1, 12, 1 << 20, vec![2, 4, 1]).unwrap();
    let op = OpSharing::new(params, DomainKey::derive(b"master", "salary"));
    let vs: Vec<u64> = (0..BATCH as u64).map(|i| (i * 613) % (1 << 20)).collect();
    g.bench_function("share_scalar_1024", |b| {
        b.iter(|| {
            for &v in &vs {
                black_box(op.share(v).unwrap());
            }
        })
    });
    g.bench_function("share_batch_1024", |b| {
        b.iter(|| black_box(op.share_batch(&vs).unwrap()))
    });

    let shares: Vec<i128> = vs.iter().map(|&v| op.share_for(v, 0).unwrap()).collect();
    g.bench_function("decode_search_scalar_1024", |b| {
        b.iter(|| {
            for &s in &shares {
                black_box(op.reconstruct_search(0, s).unwrap());
            }
        })
    });
    g.bench_function("decode_search_batch_1024", |b| {
        b.iter(|| black_box(op.reconstruct_search_batch(0, &shares).unwrap()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_field_codec, bench_opss_codec
}
criterion_main!(benches);
