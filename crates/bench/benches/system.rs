//! System benchmarks: the §V-A query taxonomy against a live deployment
//! (E4 exact match, E5 range, E6 aggregates, E7 join, E9 updates).
//!
//! One 5000-row, 3-provider deployment is built per group; each iteration
//! then measures a full client → providers → reconstruction round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use dasp_bench::deploy_employees;
use dasp_client::{ColumnSpec, Predicate, TableSchema, Value};
use dasp_core::client::{ClientKeys, DataSource};
use dasp_net::Cluster;
use dasp_server::service::provider_fleet;
use dasp_sss::ShareMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const ROWS: usize = 5000;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("queries");
    let mut dep = deploy_employees(2, 3, ROWS, 0xbe);
    let probe = dep.data[ROWS / 2].name.clone();

    g.bench_function("exact_match_5k", |bench| {
        bench.iter(|| {
            dep.ds
                .select("employees", &[Predicate::eq("name", probe.as_str())])
                .unwrap()
        })
    });
    g.bench_function("range_1pct_5k", |bench| {
        bench.iter(|| {
            dep.ds
                .select(
                    "employees",
                    &[Predicate::between("salary", 100_000u64, 110_485u64)],
                )
                .unwrap()
        })
    });
    g.bench_function("sum_range_5k", |bench| {
        bench.iter(|| {
            dep.ds
                .sum(
                    "employees",
                    "salary",
                    &[Predicate::between("salary", 100_000u64, 500_000u64)],
                )
                .unwrap()
        })
    });
    g.bench_function("median_5k", |bench| {
        bench.iter(|| dep.ds.median("employees", "salary", &[]).unwrap())
    });
    g.bench_function("count_5k", |bench| {
        bench.iter(|| dep.ds.count("employees", &[]).unwrap())
    });
    g.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    let mut rng = StdRng::seed_from_u64(0x70);
    let keys = ClientKeys::generate(2, 3, &mut rng).unwrap();
    let cluster = Cluster::spawn(provider_fleet(3), Duration::from_secs(30));
    let mut ds = DataSource::with_seed(keys, cluster, 0x71).unwrap();
    let eid = || ColumnSpec::numeric("eid", 1 << 20, ShareMode::Deterministic).in_domain("eid");
    ds.create_table(
        TableSchema::new(
            "emp",
            vec![
                eid(),
                ColumnSpec::numeric("x", 1 << 20, ShareMode::OrderPreserving),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    ds.create_table(TableSchema::new("mgr", vec![eid()]).unwrap())
        .unwrap();
    let emp: Vec<Vec<Value>> = (0..2000u64)
        .map(|i| vec![Value::Int(i), Value::Int(i)])
        .collect();
    let mgr: Vec<Vec<Value>> = (0..200u64).map(|i| vec![Value::Int(i * 10)]).collect();
    for chunk in emp.chunks(1000) {
        ds.insert("emp", chunk).unwrap();
    }
    ds.insert("mgr", &mgr).unwrap();
    g.bench_function("join_2000x200", |bench| {
        bench.iter(|| ds.join("emp", "eid", "mgr", "eid").unwrap())
    });
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("updates");
    let mut dep = deploy_employees(2, 3, ROWS, 0x90);
    let name = dep.data[3].name.clone();
    g.bench_function("eager_update_one_name", |bench| {
        bench.iter(|| {
            dep.ds
                .update_where(
                    "employees",
                    &[Predicate::eq("name", name.as_str())],
                    &[("salary", Value::Int(777))],
                )
                .unwrap()
        })
    });
    let mut dep = deploy_employees(2, 3, ROWS, 0x91);
    let name = dep.data[3].name.clone();
    dep.ds.set_lazy(true);
    g.bench_function("lazy_update_plus_flush", |bench| {
        bench.iter(|| {
            dep.ds
                .update_where(
                    "employees",
                    &[Predicate::eq("name", name.as_str())],
                    &[("salary", Value::Int(778))],
                )
                .unwrap();
            dep.ds.flush("employees").unwrap()
        })
    });
    g.finish();
}

fn bench_outsourcing(c: &mut Criterion) {
    let mut g = c.benchmark_group("outsourcing");
    g.bench_function("insert_100_rows_n3", |bench| {
        let mut dep = deploy_employees(2, 3, 10, 0xa0);
        let batch: Vec<Vec<Value>> = (0..100u64)
            .map(|i| {
                vec![
                    Value::Str("BULK".into()),
                    Value::Int(i % (1 << 20)),
                    Value::Int(i),
                ]
            })
            .collect();
        bench.iter(|| dep.ds.insert("employees", &batch).unwrap())
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    let mut dep = deploy_employees(2, 3, ROWS, 0xe5);
    g.bench_function("group_by_name_sum_salary", |bench| {
        bench.iter(|| {
            dep.ds
                .group_by("employees", "name", Some("salary"), &[])
                .unwrap()
        })
    });
    g.bench_function("top_10_by_salary", |bench| {
        bench.iter(|| {
            dep.ds
                .select_top("employees", "salary", true, 10, &[])
                .unwrap()
        })
    });
    dep.ds.commit_table("employees", "salary").unwrap();
    g.bench_function("verified_range_1pct", |bench| {
        bench.iter(|| {
            dep.ds
                .verified_range("employees", "salary", 100_000, 110_485)
                .unwrap()
        })
    });
    g.bench_function("increment_100_random_rows", |bench| {
        bench.iter(|| {
            dep.ds
                .increment_where(
                    "employees",
                    &[Predicate::between("salary", 100_000u64, 120_000u64)],
                    "ssn",
                    1,
                )
                .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_queries, bench_join, bench_updates, bench_outsourcing, bench_extensions
}
criterion_main!(benches);
