//! Micro-benchmarks of the substrates: field arithmetic, share
//! construction/reconstruction (the client's per-value costs), the
//! from-scratch crypto used by baselines, and the storage engine (E11).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dasp_bigint::{mod_pow, mod_pow_plain, BigUint, MontgomeryCtx};
use dasp_crypto::{sha256, Aes128, OpeCipher, SipHash24};
use dasp_field::{Fp, Poly};
use dasp_sss::{DomainKey, FieldSharing, OpSharing, OpssParams, StringCodec};
use dasp_storage::btree::compose_key;
use dasp_storage::{BTree, BufferPool, Pager};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("field");
    let a = Fp::from_u64(0x1234_5678_9abc);
    let b = Fp::from_u64(0x0fed_cba9_8765);
    g.bench_function("mul", |bench| bench.iter(|| black_box(a) * black_box(b)));
    g.bench_function("inv", |bench| bench.iter(|| black_box(a).inv()));
    let poly = Poly::new((0..4).map(Fp::from_u64).collect());
    g.bench_function("poly_eval_deg3", |bench| {
        bench.iter(|| poly.eval(black_box(a)))
    });
    g.finish();
}

fn bench_sss(c: &mut Criterion) {
    let mut g = c.benchmark_group("sss");
    let mut rng = StdRng::seed_from_u64(1);
    let sharing = FieldSharing::generate(2, 4, &mut rng).unwrap();
    let key = DomainKey::derive(b"master", "salary");
    g.bench_function("split_random_k2_n4", |bench| {
        bench.iter(|| sharing.split_random(Fp::from_u64(12345), &mut rng))
    });
    g.bench_function("split_deterministic_k2_n4", |bench| {
        bench.iter(|| sharing.split_deterministic(black_box(12345), &key))
    });
    let shares = sharing.split_random(Fp::from_u64(777), &mut rng);
    g.bench_function("reconstruct_k2", |bench| {
        bench.iter(|| sharing.reconstruct(black_box(&shares[..2])))
    });

    let params = OpssParams::new(1, 12, 1 << 32, vec![2, 4, 1, 7]).unwrap();
    let op = OpSharing::new(params, key.clone());
    g.bench_function("opss_share_deg1_n4", |bench| {
        bench.iter(|| op.share(black_box(1_000_000)))
    });
    let share0 = op.share_for(1_000_000, 0).unwrap();
    g.bench_function("opss_decode_search_2^32", |bench| {
        bench.iter(|| op.reconstruct_search(0, black_box(share0)))
    });
    let pairs: Vec<(usize, i128)> = op
        .share(1_000_000)
        .unwrap()
        .into_iter()
        .enumerate()
        .collect();
    g.bench_function("opss_decode_interpolate", |bench| {
        bench.iter(|| op.reconstruct_interpolate(black_box(&pairs)))
    });

    let codec = StringCodec::uppercase(8).unwrap();
    g.bench_function("string_encode", |bench| {
        bench.iter(|| codec.encode(black_box("JOHNSON")))
    });
    g.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xa5u8; 1024];
    g.bench_function("sha256_1k", |bench| bench.iter(|| sha256(black_box(&data))));
    let aes = Aes128::new(b"0123456789abcdef");
    g.bench_function("aes128_block", |bench| {
        bench.iter(|| aes.encrypt_u128(black_box(0xdead_beef)))
    });
    let sip = SipHash24::from_words(1, 2);
    g.bench_function("siphash_u64", |bench| {
        bench.iter(|| sip.hash_u64(black_box(42)))
    });
    let ope = OpeCipher::new(b"0123456789abcdef", 1 << 32);
    g.bench_function("ope_encrypt_2^32", |bench| {
        bench.iter(|| ope.encrypt(black_box(1_000_000)))
    });
    g.finish();
}

fn bench_bigint(c: &mut Criterion) {
    let mut g = c.benchmark_group("bigint");
    let mut rng = StdRng::seed_from_u64(2);
    let n = BigUint::random_bits(512, &mut rng);
    let a = BigUint::random_bits(510, &mut rng);
    let e = BigUint::random_bits(256, &mut rng);
    g.bench_function("mul_512", |bench| bench.iter(|| black_box(&a).mul(&a)));
    g.bench_function("modexp_512_e256", |bench| {
        bench.iter(|| mod_pow(black_box(&a), &e, &n))
    });
    // Ablation: Montgomery (used by mod_pow for odd moduli) vs the
    // division-based reference path.
    let n_odd = if n.is_even() {
        n.add(&BigUint::one())
    } else {
        n.clone()
    };
    g.bench_function("modexp_512_plain_division", |bench| {
        bench.iter(|| mod_pow_plain(black_box(&a), &e, &n_odd))
    });
    let ctx = MontgomeryCtx::new(&n_odd);
    g.bench_function("modexp_512_montgomery", |bench| {
        bench.iter(|| ctx.mod_pow(black_box(&a), &e))
    });
    g.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage");
    // Pre-built tree with 50k entries.
    let pool = BufferPool::new(Pager::in_memory(), 512);
    let mut tree = BTree::create(&pool).unwrap();
    for i in 0..50_000u64 {
        tree.insert(&pool, &compose_key(i as i128 * 3, i), i)
            .unwrap();
    }
    g.bench_function("btree_probe_50k", |bench| {
        bench.iter(|| tree.get(&pool, &compose_key(black_box(74_997), 24_999)))
    });
    g.bench_function("btree_range_100_of_50k", |bench| {
        bench.iter(|| {
            tree.range(
                &pool,
                &compose_key(30_000, 0),
                &compose_key(30_300, u64::MAX),
            )
        })
    });
    g.bench_function("btree_insert", |bench| {
        let mut next = 1_000_000u64;
        bench.iter_batched(
            || {
                next += 1;
                next
            },
            |i| tree.insert(&pool, &compose_key(i as i128, i), i),
            BatchSize::SmallInput,
        )
    });
    // std BTreeMap comparison point.
    let mut map = std::collections::BTreeMap::new();
    for i in 0..50_000u64 {
        map.insert((i as i128 * 3, i), i);
    }
    g.bench_function("btreemap_probe_50k", |bench| {
        bench.iter(|| map.get(&(black_box(74_997i128), 24_999u64)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_field, bench_sss, bench_crypto, bench_bigint, bench_storage
}
criterion_main!(benches);
