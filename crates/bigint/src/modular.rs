//! Modular arithmetic: gcd/lcm, modular inverse, multiplication and
//! exponentiation. Everything reduces via [`BigUint::div_rem`].

use crate::BigUint;

/// Greatest common divisor (Euclid).
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = a.rem(&b);
        a = b;
        b = r;
    }
    a
}

/// Least common multiple; zero if either input is zero.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    a.div_rem(&g).0.mul(b)
}

/// `a * b mod m`.
pub fn mod_mul(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    a.mul(b).rem(m)
}

/// `base^exp mod m` — Montgomery-accelerated for odd multi-limb moduli,
/// otherwise plain square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn mod_pow(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "mod_pow with zero modulus");
    if m.is_one() {
        return BigUint::zero();
    }
    // Montgomery pays off once the modulus spans multiple limbs and the
    // exponent is non-trivial; it requires an odd modulus.
    if !m.is_even() && m.limbs.len() >= 2 && exp.bits() > 4 {
        return crate::montgomery::MontgomeryCtx::new(m).mod_pow(base, exp);
    }
    mod_pow_plain(base, exp, m)
}

/// The division-based reference implementation of [`mod_pow`]; public
/// for differential testing and the E14-style ablation benches.
pub fn mod_pow_plain(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    if m.is_one() {
        return BigUint::zero();
    }
    let mut result = BigUint::one();
    let base = base.rem(m);
    for i in (0..exp.bits()).rev() {
        result = mod_mul(&result, &result, m);
        if exp.bit(i) {
            result = mod_mul(&result, &base, m);
        }
    }
    result
}

/// Modular inverse of `a` mod `m` via the extended Euclidean algorithm,
/// or `None` if `gcd(a, m) != 1`.
///
/// Signed bookkeeping is done with (value, negative?) pairs since
/// [`BigUint`] is unsigned.
pub fn mod_inv(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    if m.is_zero() || m.is_one() {
        return None;
    }
    // Invariants: old_r = old_s * a (mod m), r = s * a (mod m).
    let mut old_r = a.rem(m);
    let mut r = m.clone();
    let mut old_s = (BigUint::one(), false); // (magnitude, is_negative)
    let mut s = (BigUint::zero(), false);

    while !r.is_zero() {
        let (q, rem) = old_r.div_rem(&r);
        old_r = std::mem::replace(&mut r, rem);

        // new_s = old_s - q * s  (signed)
        let qs = q.mul(&s.0);
        let new_s = signed_sub(&old_s, &(qs, s.1));
        old_s = std::mem::replace(&mut s, new_s);
    }

    if !old_r.is_one() {
        return None;
    }
    // Map the signed coefficient into [0, m).
    let inv = if old_s.1 {
        let reduced = old_s.0.rem(m);
        if reduced.is_zero() {
            BigUint::zero()
        } else {
            m.checked_sub(&reduced).expect("reduced < m")
        }
    } else {
        old_s.0.rem(m)
    };
    Some(inv)
}

/// `a - b` on (magnitude, negative?) signed pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => match a.0.checked_sub(&b.0) {
            Some(d) => (d, false),
            None => (b.0.checked_sub(&a.0).expect("b > a"), true),
        },
        // (-a) - (-b) = b - a
        (true, true) => match b.0.checked_sub(&a.0) {
            Some(d) => (d, false),
            None => (a.0.checked_sub(&b.0).expect("a > b"), true),
        },
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(&n(12), &n(18)), n(6));
        assert_eq!(gcd(&n(17), &n(5)), n(1));
        assert_eq!(gcd(&n(0), &n(5)), n(5));
        assert_eq!(gcd(&n(5), &n(0)), n(5));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&n(4), &n(6)), n(12));
        assert!(lcm(&n(0), &n(6)).is_zero());
    }

    #[test]
    fn mod_pow_small() {
        assert_eq!(mod_pow(&n(2), &n(10), &n(1000)), n(24));
        assert_eq!(mod_pow(&n(3), &n(0), &n(7)), n(1));
        assert_eq!(mod_pow(&n(3), &n(5), &n(1)), n(0));
    }

    #[test]
    fn mod_pow_fermat() {
        // a^(p-1) = 1 mod p for prime p not dividing a.
        let p = n(1_000_000_007);
        for a in [2u64, 3, 12345, 999_999_999] {
            assert_eq!(mod_pow(&n(a), &n(1_000_000_006), &p), n(1));
        }
    }

    #[test]
    fn mod_inv_basics() {
        assert_eq!(mod_inv(&n(3), &n(7)), Some(n(5)));
        assert_eq!(mod_inv(&n(2), &n(4)), None); // gcd = 2
        assert_eq!(mod_inv(&n(1), &n(2)), Some(n(1)));
        assert_eq!(mod_inv(&n(5), &n(1)), None);
    }

    #[test]
    fn mod_inv_large() {
        let m = BigUint::from_hex("fffffffffffffffffffffffffffffff1").unwrap();
        let a = BigUint::from_hex("123456789abcdef").unwrap();
        if let Some(inv) = mod_inv(&a, &m) {
            assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
        } else {
            panic!("expected invertible");
        }
    }

    proptest! {
        #[test]
        fn prop_mod_pow_matches_u128(b in 0u64..1 << 30, e in 0u64..64, m in 2u64..1 << 30) {
            let mut expect: u128 = 1;
            for _ in 0..e {
                expect = expect * b as u128 % m as u128;
            }
            prop_assert_eq!(mod_pow(&n(b), &n(e), &n(m)), BigUint::from_u128(expect));
        }

        #[test]
        fn prop_mod_inv_roundtrip(a in 1u64.., m in 2u64..) {
            let a = n(a);
            let m = n(m);
            if let Some(inv) = mod_inv(&a, &m) {
                prop_assert_eq!(mod_mul(&a, &inv, &m), BigUint::one());
                prop_assert!(inv < m);
            } else {
                prop_assert!(!gcd(&a, &m).is_one());
            }
        }

        #[test]
        fn prop_gcd_divides_both(a in 1u64.., b in 1u64..) {
            let g = gcd(&n(a), &n(b));
            prop_assert!(n(a).rem(&g).is_zero());
            prop_assert!(n(b).rem(&g).is_zero());
        }
    }
}
