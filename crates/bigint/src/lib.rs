//! Arbitrary-precision unsigned integer arithmetic.
//!
//! The paper's comparators (Paillier aggregate encryption, Agrawal et al.
//! commutative-encryption intersection, Kushilevitz–Ostrovsky computational
//! PIR) all need multi-precision modular arithmetic, and the offline crate
//! set ships no big-integer library — so this crate builds one from
//! scratch: little-endian `u64` limbs, schoolbook multiplication, Knuth
//! Algorithm D division, square-and-multiply modular exponentiation, and
//! Miller–Rabin primality with random prime generation.
//!
//! This is a *benchmarking-grade* implementation: correct and reasonably
//! fast, but with no constant-time guarantees. Do not use it to protect
//! real secrets.

mod div;
mod modular;
pub mod montgomery;
mod prime;

pub use modular::{gcd, lcm, mod_inv, mod_mul, mod_pow, mod_pow_plain};
pub use montgomery::MontgomeryCtx;
pub use prime::{gen_prime, gen_safe_prime, is_probable_prime};

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// Truncate a `u128` to its low 64 bits — one limb.
///
/// The sanctioned narrowing conversion for limb arithmetic: every caller
/// propagates the discarded high bits through an explicit carry.
#[inline]
pub(crate) fn lo64(v: u128) -> u64 {
    // dasp::allow(P2): deliberate limb truncation — callers carry the high bits.
    v as u64
}

/// Reinterpret the low 64 bits of an `i128` as a limb (two's complement).
///
/// Knuth's Algorithm D mixes signed subtraction windows with unsigned
/// limbs; the wrap-around is the algorithm's intended semantics.
#[inline]
pub(crate) fn wrap64(v: i128) -> u64 {
    // dasp::allow(P2): two's-complement wrap is Algorithm D's step-D4 semantics.
    v as u64
}

/// An arbitrary-precision unsigned integer, little-endian `u64` limbs,
/// normalized so the most significant limb is non-zero (zero = no limbs).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The integer zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The integer one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = lo64(v);
        let hi = lo64(v >> 64);
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Construct from little-endian limbs (normalizing).
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Construct from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serialize to minimal big-endian bytes (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // strip leading zeros of the top limb
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend(bytes.iter().skip(first).copied());
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Parse a hexadecimal string (no `0x` prefix required, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim_start_matches("0x");
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut limbs = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(16);
            let chunk = std::str::from_utf8(&bytes[start..end]).ok()?;
            limbs.push(u64::from_str_radix(chunk, 16).ok()?);
            end = start;
        }
        Some(Self::from_limbs(limbs))
    }

    /// Hexadecimal rendering (lowercase, no prefix).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for &limb in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{limb:016x}"));
        }
        s
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// The low 64 bits (0 for zero).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (big, small) = if self.limbs.len() >= other.limbs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Vec::with_capacity(big.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..big.limbs.len() {
            let a = big.limbs[i];
            let b = small.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// `self * other` (schoolbook, O(n·m)).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = lo64(cur);
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = lo64(cur);
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self * m` for a single-limb multiplier.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &a in &self.limbs {
            let cur = a as u128 * m as u128 + carry;
            out.push(lo64(cur));
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(lo64(carry));
        }
        BigUint::from_limbs(out)
    }

    /// `(self / other, self % other)`. Panics if `other` is zero — callers
    /// in this workspace always divide by fixed non-zero moduli.
    pub fn div_rem(&self, other: &BigUint) -> (BigUint, BigUint) {
        div::div_rem(self, other)
    }

    /// `self % other`.
    pub fn rem(&self, other: &BigUint) -> BigUint {
        self.div_rem(other).1
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let limb_shift = n / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = n % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map_or(0, |&l| l << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    /// A uniformly random integer with exactly `bits` bits (top bit set).
    pub fn random_bits<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        assert!(bits > 0, "random_bits needs at least 1 bit");
        let limbs_needed = bits.div_ceil(64);
        let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
        let top_bits = bits - (limbs_needed - 1) * 64;
        let top = &mut limbs[limbs_needed - 1];
        if top_bits < 64 {
            *top &= (1u64 << top_bits) - 1;
        }
        *top |= 1u64 << (top_bits - 1); // force exact bit length
        BigUint::from_limbs(limbs)
    }

    /// A uniformly random integer in `[0, bound)`. Panics on zero bound.
    pub fn random_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
        assert!(!bound.is_zero(), "random_below: zero bound");
        let bits = bound.bits();
        loop {
            let limbs_needed = bits.div_ceil(64);
            let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.gen()).collect();
            let top_bits = bits - (limbs_needed - 1) * 64;
            if top_bits < 64 {
                limbs[limbs_needed - 1] &= (1u64 << top_bits) - 1;
            }
            let candidate = BigUint::from_limbs(limbs);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
    }

    #[test]
    fn hex_roundtrip() {
        for c in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let n = BigUint::from_hex(c).unwrap();
            assert_eq!(n.to_hex(), c);
        }
        assert_eq!(BigUint::from_hex("0x00ff").unwrap().to_hex(), "ff");
        assert!(BigUint::from_hex("").is_none());
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let n = BigUint::from_hex("0123456789abcdef00112233445566778899aabb").unwrap();
        let bytes = n.to_be_bytes();
        assert_eq!(BigUint::from_be_bytes(&bytes), n);
        assert!(BigUint::from_be_bytes(&[]).is_zero());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = BigUint::one();
        let s = a.add(&b);
        assert_eq!(s.limbs, vec![0, 0, 1]);
    }

    #[test]
    fn checked_sub_underflow() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(7);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a).unwrap(), BigUint::from_u64(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = BigUint::from_u64(0xffff_ffff_ffff_fff1);
        let b = BigUint::from_u64(0xffff_ffff_ffff_fff3);
        let expect = 0xffff_ffff_ffff_fff1u128 * 0xffff_ffff_ffff_fff3u128;
        assert_eq!(a.mul(&b), BigUint::from_u128(expect));
    }

    #[test]
    fn shifts() {
        let n = BigUint::from_u64(1);
        assert_eq!(n.shl(64).limbs, vec![0, 1]);
        assert_eq!(n.shl(64).shr(64), n);
        assert_eq!(n.shl(65).shr(1).limbs, vec![0, 1]);
        assert!(n.shr(1).is_zero());
    }

    #[test]
    fn bit_access() {
        let n = BigUint::from_hex("8000000000000001").unwrap();
        assert!(n.bit(0));
        assert!(n.bit(63));
        assert!(!n.bit(1));
        assert!(!n.bit(64));
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = rand::rngs::mock::StepRng::new(0x1234_5678, 0x9999);
        for bits in [1usize, 5, 64, 65, 127, 256] {
            let n = BigUint::random_bits(bits, &mut rng);
            assert_eq!(n.bits(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_below_stays_below() {
        let mut rng = rand::thread_rng();
        let bound = BigUint::from_hex("1000000000000000000000001").unwrap();
        for _ in 0..100 {
            assert!(BigUint::random_below(&bound, &mut rng) < bound);
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let x = BigUint::from_u128(a);
            let y = BigUint::from_u128(b);
            prop_assert_eq!(x.add(&y).checked_sub(&y).unwrap(), x);
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let got = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
            prop_assert_eq!(got, BigUint::from_u128(a as u128 * b as u128));
        }

        #[test]
        fn prop_cmp_matches_u128(a in any::<u128>(), b in any::<u128>()) {
            let x = BigUint::from_u128(a);
            let y = BigUint::from_u128(b);
            prop_assert_eq!(x.cmp(&y), a.cmp(&b));
        }

        #[test]
        fn prop_shl_is_mul_by_power_of_two(a in any::<u64>(), s in 0usize..64) {
            let got = BigUint::from_u64(a).shl(s);
            prop_assert_eq!(got, BigUint::from_u128((a as u128) << s));
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let n = BigUint::from_be_bytes(&bytes);
            prop_assert_eq!(BigUint::from_be_bytes(&n.to_be_bytes()), n);
        }
    }
}
