//! Montgomery modular multiplication (CIOS) and exponentiation.
//!
//! The encryption-model baselines spend their time in modular
//! exponentiation; Knuth-D-reduction after every product makes that
//! O(len²) division-heavy. Montgomery's method replaces the division with
//! shifts and single-limb multiplies. For the 256–1024-bit moduli the
//! baselines use this is a several-fold speedup — which keeps the E2/E3
//! comparisons *fair to the encryption side* (the paper's argument should
//! not win by a slow comparator).
//!
//! Only odd moduli are supported (all RSA/Paillier/safe-prime moduli are
//! odd); [`crate::mod_pow`] dispatches here automatically.

use crate::{lo64, BigUint};

/// Precomputed context for a fixed odd modulus.
pub struct MontgomeryCtx {
    n: Vec<u64>,
    /// −n⁻¹ mod 2⁶⁴.
    n0_inv: u64,
    /// R² mod n, R = 2^(64·len): converts into Montgomery form.
    r2: Vec<u64>,
    len: usize,
}

/// Inverse of `x` mod 2⁶⁴ (x odd) by Newton iteration.
fn inv_u64(x: u64) -> u64 {
    debug_assert!(x & 1 == 1);
    let mut inv = x; // correct to 3 bits
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(inv)));
    }
    debug_assert_eq!(x.wrapping_mul(inv), 1);
    inv
}

fn to_limbs(v: &BigUint, len: usize) -> Vec<u64> {
    let mut out = v.limbs.clone();
    out.resize(len, 0);
    out
}

/// Compare fixed-length little-endian limb slices.
fn geq(a: &[u64], b: &[u64]) -> bool {
    for (x, y) in a.iter().zip(b.iter()).rev() {
        match x.cmp(y) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// `a -= b` on fixed-length limbs, returning the final borrow (0 or 1).
fn sub_in_place(a: &mut [u64], b: &[u64]) -> u64 {
    let mut borrow = 0u64;
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *x = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    borrow
}

impl MontgomeryCtx {
    /// Precompute for modulus `n` (odd, ≥ 3).
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or < 3.
    pub fn new(n: &BigUint) -> Self {
        assert!(
            !n.is_even() && n.bits() >= 2,
            "Montgomery needs an odd modulus ≥ 3"
        );
        let len = n.limbs.len();
        // The assert above guarantees a low limb exists; 1 keeps the
        // unreachable fallback odd for inv_u64's contract.
        let n0 = n.limbs.first().copied().unwrap_or(1);
        let n0_inv = inv_u64(n0).wrapping_neg();
        // R² mod n via ordinary arithmetic (one-time cost).
        let r = BigUint::one().shl(64 * len).rem(n);
        let r2 = r.mul(&r).rem(n);
        MontgomeryCtx {
            n: n.limbs.clone(),
            n0_inv,
            r2: to_limbs(&r2, len),
            len,
        }
    }

    /// CIOS Montgomery product: returns `a·b·R⁻¹ mod n` (all in limb form).
    /// The two overflow limbs of the working value (`t[len]`, `t[len+1]`
    /// in the textbook layout) live in scalars, so every slice access
    /// stays a lockstep iterator walk.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let len = self.len;
        let mut t = vec![0u64; len];
        let (mut t_hi, mut t_hi2) = (0u64, 0u64);
        for &ai in a.iter().take(len) {
            // t += ai * b
            let mut carry = 0u128;
            for (tj, &bj) in t.iter_mut().zip(b.iter()) {
                let cur = *tj as u128 + ai as u128 * bj as u128 + carry;
                *tj = lo64(cur);
                carry = cur >> 64;
            }
            let cur = t_hi as u128 + carry;
            t_hi = lo64(cur);
            t_hi2 = t_hi2.wrapping_add(lo64(cur >> 64));

            // m = t[0] * n0_inv mod 2^64; t += m * n  (makes t[0] == 0)
            let m = t.first().copied().unwrap_or(0).wrapping_mul(self.n0_inv);
            let mut carry = 0u128;
            for (tj, &nj) in t.iter_mut().zip(self.n.iter()) {
                let cur = *tj as u128 + m as u128 * nj as u128 + carry;
                *tj = lo64(cur);
                carry = cur >> 64;
            }
            let cur = t_hi as u128 + carry;
            t_hi = lo64(cur);
            t_hi2 = t_hi2.wrapping_add(lo64(cur >> 64));

            // shift one limb right (divide by 2^64)
            t.copy_within(1.., 0);
            if let Some(last) = t.last_mut() {
                *last = t_hi;
            }
            t_hi = t_hi2;
            t_hi2 = 0;
        }
        let hi = t_hi;
        let mut out = t;
        // CIOS guarantees t < 2n, so at most one subtraction; when the
        // value spilled into the extra limb (hi = 1), the subtraction's
        // borrow cancels it exactly.
        if hi != 0 || geq(&out, &self.n) {
            let borrow = sub_in_place(&mut out, &self.n);
            debug_assert_eq!(borrow, hi, "CIOS invariant t < 2n violated");
        }
        out
    }

    /// `base^exp mod n` by Montgomery square-and-multiply.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        let base = to_limbs(&base.rem(&BigUint::from_limbs(self.n.clone())), self.len);
        let base_m = self.mont_mul(&base, &self.r2);
        // 1 in Montgomery form = R mod n = mont_mul(1, R²).
        let mut one = vec![0u64; self.len];
        if let Some(first) = one.first_mut() {
            *first = 1;
        }
        let mut acc = self.mont_mul(&one, &self.r2);
        for i in (0..exp.bits()).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, &base_m);
            }
        }
        // Convert out of Montgomery form.
        let out = self.mont_mul(&acc, &one);
        BigUint::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::mod_pow_plain;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inv_u64_examples() {
        for x in [1u64, 3, 5, 0xffff_ffff_ffff_fff1, 0x1234_5678_9abc_def1] {
            assert_eq!(x.wrapping_mul(inv_u64(x)), 1, "{x:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "odd modulus")]
    fn even_modulus_rejected() {
        MontgomeryCtx::new(&BigUint::from_u64(100));
    }

    #[test]
    fn matches_plain_small() {
        let n = BigUint::from_u64(1_000_003);
        let ctx = MontgomeryCtx::new(&n);
        for (b, e) in [(2u64, 10u64), (3, 0), (999_999, 1_000_002), (7, 65537)] {
            let got = ctx.mod_pow(&BigUint::from_u64(b), &BigUint::from_u64(e));
            let want = mod_pow_plain(&BigUint::from_u64(b), &BigUint::from_u64(e), &n);
            assert_eq!(got, want, "b={b} e={e}");
        }
    }

    #[test]
    fn matches_plain_multi_limb() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [128usize, 256, 512] {
            let mut n = BigUint::random_bits(bits, &mut rng);
            if n.is_even() {
                n = n.add(&BigUint::one());
            }
            let b = BigUint::random_below(&n, &mut rng);
            let e = BigUint::random_bits(64, &mut rng);
            assert_eq!(
                MontgomeryCtx::new(&n).mod_pow(&b, &e),
                mod_pow_plain(&b, &e, &n),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn fermat_on_mersenne_prime() {
        let p = BigUint::from_u64((1u64 << 61) - 1);
        let ctx = MontgomeryCtx::new(&p);
        let exp = p.checked_sub(&BigUint::one()).unwrap();
        for a in [2u64, 3, 123_456_789] {
            assert!(ctx.mod_pow(&BigUint::from_u64(a), &exp).is_one());
        }
    }

    proptest! {
        #[test]
        fn prop_matches_plain(
            n_seed in any::<u64>(),
            b_seed in any::<u64>(),
            e in 0u64..10_000,
        ) {
            let mut rng = StdRng::seed_from_u64(n_seed);
            let mut n = BigUint::random_bits(96, &mut rng);
            if n.is_even() {
                n = n.add(&BigUint::one());
            }
            let mut rng = StdRng::seed_from_u64(b_seed);
            let b = BigUint::random_below(&n, &mut rng);
            let e = BigUint::from_u64(e);
            prop_assert_eq!(
                MontgomeryCtx::new(&n).mod_pow(&b, &e),
                mod_pow_plain(&b, &e, &n)
            );
        }
    }
}
