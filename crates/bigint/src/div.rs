//! Multi-precision division: Knuth's Algorithm D (TAOCP vol. 2, §4.3.1).

use crate::{lo64, wrap64, BigUint};

/// Limb at `i`, zero when out of range. Algorithm D only computes
/// in-range indices; going through `get` keeps the division loops out
/// of the panic-reachability set the provider entry points are gated
/// on (P3), with the proptest identities guarding the arithmetic.
#[inline]
fn limb(xs: &[u64], i: usize) -> u64 {
    xs.get(i).copied().unwrap_or(0)
}

/// Store `v` at `i`; an out-of-range store is dropped (unreachable for
/// the indices the loops below compute).
#[inline]
fn set_limb(xs: &mut [u64], i: usize, v: u64) {
    if let Some(slot) = xs.get_mut(i) {
        *slot = v;
    }
}

/// Divide `u / v`, returning `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if `v` is zero.
pub(crate) fn div_rem(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    assert!(!v.is_zero(), "BigUint division by zero");
    if u < v {
        return (BigUint::zero(), u.clone());
    }
    if v.limbs.len() == 1 {
        let (q, r) = div_rem_u64(u, limb(&v.limbs, 0));
        return (q, BigUint::from_u64(r));
    }
    knuth_d(u, v)
}

/// Fast path: divisor fits in one limb.
fn div_rem_u64(u: &BigUint, v: u64) -> (BigUint, u64) {
    let mut q = vec![0u64; u.limbs.len()];
    let mut rem = 0u128;
    for (qd, &ul) in q.iter_mut().zip(u.limbs.iter()).rev() {
        let cur = (rem << 64) | ul as u128;
        *qd = lo64(cur / v as u128); // quotient digit fits one limb
        rem = cur % v as u128;
    }
    (BigUint::from_limbs(q), lo64(rem)) // rem < v ≤ u64::MAX
}

/// Knuth Algorithm D for multi-limb divisors.
fn knuth_d(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = limb(&v.limbs, n - 1).leading_zeros() as usize;
    let vn = v.shl(shift).limbs;
    let mut un = u.shl(shift).limbs;
    un.resize(u.limbs.len() + 1, 0); // extra high limb for D3's window

    let mut q = vec![0u64; m + 1];
    let b = 1u128 << 64;

    // D2–D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate q_hat from the top two limbs of the current window.
        let top = ((limb(&un, j + n) as u128) << 64) | limb(&un, j + n - 1) as u128;
        let mut q_hat = top / limb(&vn, n - 1) as u128;
        let mut r_hat = top % limb(&vn, n - 1) as u128;
        // Correct q_hat down at most twice.
        while q_hat >= b
            || q_hat * limb(&vn, n - 2) as u128 > ((r_hat << 64) | limb(&un, j + n - 2) as u128)
        {
            q_hat -= 1;
            r_hat += limb(&vn, n - 1) as u128;
            if r_hat >= b {
                break;
            }
        }

        // D4: multiply and subtract q_hat * v from the window.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = q_hat * limb(&vn, i) as u128 + carry;
            carry = p >> 64;
            let sub = (limb(&un, j + i) as i128) - i128::from(lo64(p)) - borrow;
            set_limb(&mut un, j + i, wrap64(sub));
            borrow = if sub < 0 { 1 } else { 0 };
        }
        let sub = (limb(&un, j + n) as i128) - (carry as i128) - borrow;
        set_limb(&mut un, j + n, wrap64(sub));

        // D5/D6: if we subtracted too much, add one v back.
        if sub < 0 {
            q_hat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = limb(&un, j + i) as u128 + limb(&vn, i) as u128 + carry;
                set_limb(&mut un, j + i, lo64(s));
                carry = s >> 64;
            }
            let top = limb(&un, j + n).wrapping_add(lo64(carry));
            set_limb(&mut un, j + n, top);
        }
        set_limb(&mut q, j, lo64(q_hat)); // q_hat < 2^64 after the D3 corrections
    }

    // D8: denormalize the remainder.
    un.truncate(n);
    let rem = BigUint::from_limbs(un).shr(shift);
    (BigUint::from_limbs(q), rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::from_u64(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn small_cases() {
        let (q, r) = BigUint::from_u64(17).div_rem(&BigUint::from_u64(5));
        assert_eq!((q, r), (BigUint::from_u64(3), BigUint::from_u64(2)));
        let (q, r) = BigUint::from_u64(4).div_rem(&BigUint::from_u64(5));
        assert_eq!((q, r), (BigUint::zero(), BigUint::from_u64(4)));
    }

    #[test]
    fn exact_division() {
        let a = BigUint::from_hex("100000000000000000000000000000000").unwrap();
        let b = BigUint::from_hex("10000000000000000").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn multi_limb_divisor_correction_path() {
        // Crafted so Algorithm D's q_hat over-estimate correction fires:
        // u with repeated high limbs vs a divisor with a small second limb.
        let u = BigUint::from_limbs(vec![0, u64::MAX, u64::MAX - 1, u64::MAX]);
        let v = BigUint::from_limbs(vec![1, u64::MAX]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
    }

    #[test]
    fn hex_reference_case() {
        // Cross-checked with Python:
        // divmod(0xdeadbeefcafebabe0123456789abcdef, 0xfeedfacef00d)
        let u = BigUint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        let v = BigUint::from_hex("feedfacef00d").unwrap();
        let (q, r) = u.div_rem(&v);
        assert_eq!(q.mul(&v).add(&r), u);
        assert!(r < v);
        // Quotient length is diff or diff+1 bits depending on leading limbs.
        let diff = u.bits() - v.bits();
        assert!(q.bits() == diff || q.bits() == diff + 1);
    }

    proptest! {
        #[test]
        fn prop_div_rem_identity(
            a in proptest::collection::vec(any::<u64>(), 1..6),
            b in proptest::collection::vec(any::<u64>(), 1..4),
        ) {
            let u = BigUint::from_limbs(a);
            let v = BigUint::from_limbs(b);
            prop_assume!(!v.is_zero());
            let (q, r) = u.div_rem(&v);
            prop_assert!(r < v);
            prop_assert_eq!(q.mul(&v).add(&r), u);
        }

        #[test]
        fn prop_matches_u128(a in any::<u128>(), b in 1u128..) {
            let (q, r) = BigUint::from_u128(a).div_rem(&BigUint::from_u128(b));
            prop_assert_eq!(q, BigUint::from_u128(a / b));
            prop_assert_eq!(r, BigUint::from_u128(a % b));
        }
    }
}
