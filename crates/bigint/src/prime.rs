//! Primality testing (Miller–Rabin) and random prime generation.

use crate::modular::{mod_mul, mod_pow};
use crate::BigUint;
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 30] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113,
];

/// Miller–Rabin probable-prime test with `rounds` random bases.
///
/// For the sizes used in this workspace (≤ 1024 bits) 32 rounds gives an
/// error probability below 2⁻⁶⁴, far beyond benchmark needs.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = BigUint::from_u64(p);
        if *n == p {
            return true;
        }
        if n.rem(&p).is_zero() {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.checked_sub(&one).expect("n >= 2");
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }

    let two = BigUint::from_u64(2);
    let n_minus_3 = match n.checked_sub(&BigUint::from_u64(3)) {
        Some(v) => v,
        None => return true, // n == 2 or 3, caught above anyway
    };

    'witness: for _ in 0..rounds {
        // a uniform in [2, n-2]
        let a = BigUint::random_below(&n_minus_3.add(&one), rng).add(&two);
        let mut x = mod_pow(&a, &d, n);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = mod_mul(&x, &x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generate a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = BigUint::random_bits(bits, rng);
        // Force odd.
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
            if candidate.bits() != bits {
                continue;
            }
        }
        if is_probable_prime(&candidate, 32, rng) {
            return candidate;
        }
    }
}

/// Generate a safe prime p = 2q + 1 (q also prime) with exactly `bits`
/// bits. Used by the Pohlig–Hellman commutative-encryption baseline, where
/// exponents must be invertible mod p − 1 = 2q.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "safe primes need at least 3 bits");
    loop {
        let q = gen_prime(bits - 1, rng);
        let p = q.shl(1).add(&BigUint::one());
        if p.bits() == bits && is_probable_prime(&p, 32, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_primes_recognised() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [
            2u64,
            3,
            5,
            7,
            97,
            101,
            113,
            127,
            8191,
            131071,
            1_000_000_007,
        ] {
            assert!(
                is_probable_prime(&BigUint::from_u64(p), 16, &mut rng),
                "{p} should be prime"
            );
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        for c in [
            0u64,
            1,
            4,
            6,
            9,
            15,
            91,
            561,
            1105,
            6601,
            8911,
            1_000_000_006,
        ] {
            assert!(
                !is_probable_prime(&BigUint::from_u64(c), 16, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut rng = StdRng::seed_from_u64(3);
        for c in [561u64, 41041, 825265, 321197185] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 16, &mut rng));
        }
    }

    #[test]
    fn mersenne_prime_2_61_minus_1() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = BigUint::from_u64((1u64 << 61) - 1);
        assert!(is_probable_prime(&p, 16, &mut rng));
    }

    #[test]
    fn gen_prime_has_requested_bits() {
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bits(), bits);
            assert!(is_probable_prime(&p, 16, &mut rng));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = gen_safe_prime(48, &mut rng);
        assert_eq!(p.bits(), 48);
        let q = p.checked_sub(&BigUint::one()).unwrap().shr(1);
        assert!(is_probable_prime(&q, 16, &mut rng));
        assert!(is_probable_prime(&p, 16, &mut rng));
    }

    #[test]
    fn large_prime_product_is_composite() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = gen_prime(96, &mut rng);
        let q = gen_prime(96, &mut rng);
        assert!(!is_probable_prime(&p.mul(&q), 16, &mut rng));
    }
}
