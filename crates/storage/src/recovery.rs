//! Crash-recovery support: typed recovery errors and the checkpoint
//! metadata that pairs a pager image with a WAL generation.
//!
//! A durable provider directory holds three files:
//!
//! * `data.db` — the pager file with the last checkpoint's heap image,
//! * `meta.bin` — this module's [`CheckpointMeta`]: which pages belong
//!   to which table, which commitments were published, and the WAL
//!   generation the image supersedes,
//! * `wal.log` — the write-ahead log of operations since the checkpoint.
//!
//! `meta.bin` is replaced atomically (tmp + fsync + rename + directory
//! fsync), so recovery always sees either the old or the new checkpoint,
//! never a blend. The generation stamp links the two: a WAL whose header
//! generation differs from `meta.bin`'s belongs to a superseded epoch and
//! is reset, not replayed — that is the invariant that makes the
//! checkpoint/log switch crash-safe without a multi-file transaction.
//!
//! All parsing here returns a typed [`RecoveryError`]; nothing panics on
//! corrupt input (torn-tail fuzzing in `tests/fault_injection.rs` holds
//! this line at every byte offset).

use crate::wal::crc32;
use crate::{PageId, StorageError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Why recovery could not produce an engine.
#[derive(Debug)]
pub enum RecoveryError {
    /// Filesystem failure while reading the directory, metadata, or log.
    Io(std::io::Error),
    /// The storage layer rejected the checkpoint image.
    Storage(StorageError),
    /// `meta.bin` exists but does not parse (real disk corruption: the
    /// file is written atomically, so a torn write cannot produce this).
    CorruptMeta(&'static str),
    /// A WAL record survived its CRC but does not decode as an
    /// operation, or replaying it failed — the log and image disagree.
    Replay(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery io error: {e}"),
            RecoveryError::Storage(e) => write!(f, "recovery storage error: {e}"),
            RecoveryError::CorruptMeta(what) => write!(f, "corrupt checkpoint meta: {what}"),
            RecoveryError::Replay(what) => write!(f, "wal replay failed: {what}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<std::io::Error> for RecoveryError {
    fn from(e: std::io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<StorageError> for RecoveryError {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Io(io) => RecoveryError::Io(io),
            other => RecoveryError::Storage(other),
        }
    }
}

/// One table's slice of the checkpoint image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Column names, in order.
    pub columns: Vec<String>,
    /// Which columns carry an index (rebuilt from the heap on recovery).
    pub indexed: Vec<bool>,
    /// Heap pages holding the table's rows, in heap-file order.
    pub pages: Vec<PageId>,
}

/// The durable checkpoint descriptor stored in `meta.bin`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// WAL generation this image supersedes; the live log must carry the
    /// same stamp to be replayed.
    pub generation: u64,
    /// Tables in the image.
    pub tables: Vec<TableMeta>,
    /// `(table, column)` pairs whose Merkle commitments were published
    /// at checkpoint time (rebuilt deterministically on recovery).
    pub committed: Vec<(String, u32)>,
}

const META_MAGIC: [u8; 4] = *b"DCKP";
const META_VERSION: u32 = 1;
/// Parse sanity bound: no real deployment has a billion tables.
const MAX_COUNT: u32 = 1 << 24;

/// Name of the metadata file inside a provider directory.
pub const META_FILE: &str = "meta.bin";
/// Name of the pager file inside a provider directory.
pub const DATA_FILE: &str = "data.db";
/// Name of the write-ahead log inside a provider directory.
pub const WAL_FILE: &str = "wal.log";

struct MetaReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> MetaReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecoveryError> {
        let slice = self
            .bytes
            .get(self.at..self.at + n)
            .ok_or(RecoveryError::CorruptMeta("truncated body"))?;
        self.at += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, RecoveryError> {
        let b = self.take(4)?;
        // dasp::allow(P3): take(4) yields exactly 4 bytes or errors
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, RecoveryError> {
        let b = self.take(8)?;
        // dasp::allow(P3): take(8) yields exactly 8 bytes or errors
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn count(&mut self) -> Result<u32, RecoveryError> {
        let n = self.u32()?;
        if n > MAX_COUNT {
            return Err(RecoveryError::CorruptMeta("implausible count"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, RecoveryError> {
        let len = self.count()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RecoveryError::CorruptMeta("non-utf8 string"))
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl CheckpointMeta {
    /// Serialize to the on-disk format: magic, version, body length,
    /// body CRC32, body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&self.generation.to_le_bytes());
        body.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for table in &self.tables {
            put_string(&mut body, &table.name);
            body.extend_from_slice(&(table.columns.len() as u32).to_le_bytes());
            for col in &table.columns {
                put_string(&mut body, col);
            }
            body.extend_from_slice(&(table.indexed.len() as u32).to_le_bytes());
            for &ix in &table.indexed {
                body.push(u8::from(ix));
            }
            body.extend_from_slice(&(table.pages.len() as u32).to_le_bytes());
            for &page in &table.pages {
                body.extend_from_slice(&page.to_le_bytes());
            }
        }
        body.extend_from_slice(&(self.committed.len() as u32).to_le_bytes());
        for (table, col) in &self.committed {
            put_string(&mut body, table);
            body.extend_from_slice(&col.to_le_bytes());
        }
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(&META_MAGIC);
        out.extend_from_slice(&META_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse the on-disk format, verifying magic, length, and CRC.
    pub fn decode(bytes: &[u8]) -> Result<Self, RecoveryError> {
        let mut r = MetaReader { bytes, at: 0 };
        if r.take(4)? != META_MAGIC {
            return Err(RecoveryError::CorruptMeta("bad magic"));
        }
        if r.u32()? != META_VERSION {
            return Err(RecoveryError::CorruptMeta("unknown version"));
        }
        let body_len = r.u32()? as usize;
        let crc = r.u32()?;
        let body = r.take(body_len)?;
        if r.at != bytes.len() {
            return Err(RecoveryError::CorruptMeta("trailing bytes"));
        }
        if crc32(body) != crc {
            return Err(RecoveryError::CorruptMeta("crc mismatch"));
        }
        let mut r = MetaReader { bytes: body, at: 0 };
        let generation = r.u64()?;
        let ntables = r.count()?;
        let mut tables = Vec::with_capacity(ntables.min(1024) as usize);
        for _ in 0..ntables {
            let name = r.string()?;
            let ncols = r.count()?;
            let mut columns = Vec::with_capacity(ncols.min(1024) as usize);
            for _ in 0..ncols {
                columns.push(r.string()?);
            }
            let nindexed = r.count()?;
            let mut indexed = Vec::with_capacity(nindexed.min(1024) as usize);
            for _ in 0..nindexed {
                indexed.push(r.take(1)?[0] != 0);
            }
            let npages = r.count()?;
            let mut pages = Vec::with_capacity(npages.min(1024) as usize);
            for _ in 0..npages {
                pages.push(r.u32()?);
            }
            tables.push(TableMeta {
                name,
                columns,
                indexed,
                pages,
            });
        }
        let ncommitted = r.count()?;
        let mut committed = Vec::with_capacity(ncommitted.min(1024) as usize);
        for _ in 0..ncommitted {
            let table = r.string()?;
            let col = r.u32()?;
            committed.push((table, col));
        }
        if r.at != body.len() {
            return Err(RecoveryError::CorruptMeta("trailing body bytes"));
        }
        Ok(CheckpointMeta {
            generation,
            tables,
            committed,
        })
    }

    /// Atomically replace `meta.bin` in `dir`: write a temp file, fsync
    /// it, rename over the target, fsync the directory. A crash at any
    /// point leaves either the old or the new metadata intact.
    pub fn write_atomic(&self, dir: &Path) -> Result<(), RecoveryError> {
        let tmp = dir.join("meta.bin.tmp");
        let target = dir.join(META_FILE);
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            file.write_all(&self.encode())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &target)?;
        // Make the rename itself durable.
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Read `meta.bin` from `dir`; `None` if it does not exist (a fresh
    /// directory, generation 0, empty image).
    pub fn read(dir: &Path) -> Result<Option<Self>, RecoveryError> {
        let path = dir.join(META_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(RecoveryError::Io(e)),
        };
        Self::decode(&bytes).map(Some)
    }
}

/// Paths of the durable files inside a provider directory.
pub fn provider_paths(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    (dir.join(DATA_FILE), dir.join(META_FILE), dir.join(WAL_FILE))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointMeta {
        CheckpointMeta {
            generation: 7,
            tables: vec![
                TableMeta {
                    name: "accounts".into(),
                    columns: vec!["balance".into(), "owner".into()],
                    indexed: vec![true, false],
                    pages: vec![1, 2, 9],
                },
                TableMeta {
                    name: "empty".into(),
                    columns: vec![],
                    indexed: vec![],
                    pages: vec![4],
                },
            ],
            committed: vec![("accounts".into(), 0), ("accounts".into(), 1)],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let meta = sample();
        let decoded = CheckpointMeta::decode(&meta.encode()).unwrap();
        assert_eq!(decoded, meta);
    }

    #[test]
    fn default_roundtrip() {
        let meta = CheckpointMeta::default();
        assert_eq!(CheckpointMeta::decode(&meta.encode()).unwrap(), meta);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = CheckpointMeta::decode(&bytes[..cut]);
            assert!(err.is_err(), "truncation at {cut} must not parse");
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x5A;
            // Either a typed error or (never) a silent wrong parse: the
            // CRC covers the body, the header fields are checked.
            if let Ok(parsed) = CheckpointMeta::decode(&evil) {
                panic!("byte {i} corrupted silently: {parsed:?}");
            }
        }
    }

    #[test]
    fn atomic_write_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dasp-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(CheckpointMeta::read(&dir).unwrap().is_none());
        let meta = sample();
        meta.write_atomic(&dir).unwrap();
        assert_eq!(CheckpointMeta::read(&dir).unwrap(), Some(meta.clone()));
        // Overwrite with a newer generation.
        let mut newer = meta;
        newer.generation += 1;
        newer.write_atomic(&dir).unwrap();
        assert_eq!(
            CheckpointMeta::read(&dir).unwrap().unwrap().generation,
            newer.generation
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
