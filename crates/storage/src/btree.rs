//! A page-based B+tree with fixed-size composite keys.
//!
//! Providers index stored shares so that the §V-A rewritten queries —
//! `share = s` and `share BETWEEN s₁ AND s₂` — run in O(log n + answer)
//! instead of scanning. Keys are 24 bytes: the order-preserving encoding
//! of the `i128` share value ([`encode_i128`]) concatenated with the row
//! id, which makes duplicate share values unique while keeping byte order
//! equal to (share, row) order. Values are `u64` (packed
//! [`crate::RecordId`]s).
//!
//! Deletes are tombstone-free removals without rebalancing: pages may
//! underflow but never corrupt — the standard trade-off for an
//! insert-mostly index, and irrelevant to the measured workloads.

use crate::buffer::BufferPool;
use crate::page::{Page, PageType};
use crate::pager::PageId;
use crate::Result;

/// Key width: 16-byte encoded share + 8-byte row id.
pub const KEY_LEN: usize = 24;
const VAL_LEN: usize = 8;

const N_KEYS_OFF: usize = 8;
const NEXT_LEAF_OFF: usize = 10;
const LEFT_CHILD_OFF: usize = 12;
const BODY_OFF: usize = 16;

/// Leaf fan-out: 16 + cap·(24 + 8) ≤ 4096 → cap ≤ 127.
const LEAF_CAP: usize = 120;
/// Internal fan-out: 16 + 4 + cap·(24 + 4) ≤ 4096 → cap ≤ 145.
const INT_CAP: usize = 140;

const NO_PAGE: u32 = u32::MAX;

/// Map an `i128` to 16 bytes whose lexicographic order equals numeric
/// order (sign bit flipped, big-endian).
pub fn encode_i128(v: i128) -> [u8; 16] {
    ((v as u128) ^ (1u128 << 127)).to_be_bytes()
}

/// Inverse of [`encode_i128`].
pub fn decode_i128(b: &[u8; 16]) -> i128 {
    (u128::from_be_bytes(*b) ^ (1u128 << 127)) as i128
}

/// Compose a B+tree key from a share value and a row id.
pub fn compose_key(share: i128, row: u64) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    k[..16].copy_from_slice(&encode_i128(share));
    k[16..].copy_from_slice(&row.to_be_bytes());
    k
}

/// Split a composed key back into (share, row).
pub fn decompose_key(k: &[u8; KEY_LEN]) -> (i128, u64) {
    let share = decode_i128(k[..16].try_into().expect("16 bytes"));
    let row = u64::from_be_bytes(k[16..].try_into().expect("8 bytes"));
    (share, row)
}

/// A B+tree over a buffer pool.
pub struct BTree {
    root: PageId,
}

// ---- low-level node accessors (operate on a Page) ----

fn n_keys(p: &Page) -> usize {
    u16::from_le_bytes(p.read_at(N_KEYS_OFF, 2).try_into().expect("2")) as usize
}

fn set_n_keys(p: &mut Page, n: usize) {
    p.write_at(N_KEYS_OFF, &(n as u16).to_le_bytes());
}

fn next_leaf(p: &Page) -> Option<PageId> {
    // Leaves use bytes 10..14 (next pointer); internal nodes use 12..16
    // (leftmost child). The ranges overlap but the page types are disjoint.
    let v = u32::from_le_bytes(p.read_at(NEXT_LEAF_OFF, 4).try_into().expect("4"));
    if v == NO_PAGE {
        None
    } else {
        Some(v)
    }
}

fn set_next_leaf(p: &mut Page, id: Option<PageId>) {
    p.write_at(NEXT_LEAF_OFF, &id.unwrap_or(NO_PAGE).to_le_bytes());
}

fn leftmost_child(p: &Page) -> PageId {
    u32::from_le_bytes(p.read_at(LEFT_CHILD_OFF, 4).try_into().expect("4"))
}

fn set_leftmost_child(p: &mut Page, id: PageId) {
    p.write_at(LEFT_CHILD_OFF, &id.to_le_bytes());
}

fn key_at(p: &Page, i: usize) -> [u8; KEY_LEN] {
    p.read_at(BODY_OFF + i * KEY_LEN, KEY_LEN)
        .try_into()
        .expect("key")
}

fn set_key_at(p: &mut Page, i: usize, k: &[u8; KEY_LEN]) {
    p.write_at(BODY_OFF + i * KEY_LEN, k);
}

fn leaf_val_off(i: usize) -> usize {
    BODY_OFF + LEAF_CAP * KEY_LEN + i * VAL_LEN
}

fn leaf_val(p: &Page, i: usize) -> u64 {
    u64::from_le_bytes(p.read_at(leaf_val_off(i), 8).try_into().expect("8"))
}

fn set_leaf_val(p: &mut Page, i: usize, v: u64) {
    p.write_at(leaf_val_off(i), &v.to_le_bytes());
}

fn child_off(i: usize) -> usize {
    BODY_OFF + INT_CAP * KEY_LEN + i * 4
}

/// Child to the right of key i.
fn child_at(p: &Page, i: usize) -> PageId {
    u32::from_le_bytes(p.read_at(child_off(i), 4).try_into().expect("4"))
}

fn set_child_at(p: &mut Page, i: usize, id: PageId) {
    p.write_at(child_off(i), &id.to_le_bytes());
}

/// Binary search: index of first key ≥ `key`.
fn lower_bound(p: &Page, key: &[u8; KEY_LEN]) -> usize {
    let (mut lo, mut hi) = (0usize, n_keys(p));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if key_at(p, mid).as_slice() < key.as_slice() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

enum InsertResult {
    Done,
    Split { sep: [u8; KEY_LEN], right: PageId },
}

impl BTree {
    /// Create an empty tree (allocates the root leaf).
    pub fn create(pool: &BufferPool) -> Result<Self> {
        let root = pool.pager().allocate(PageType::BTreeLeaf)?;
        pool.with_page_mut(root, |p| {
            set_n_keys(p, 0);
            set_next_leaf(p, None);
        })?;
        Ok(BTree { root })
    }

    /// Re-open a tree by its root page (as recorded in engine metadata).
    pub fn open(root: PageId) -> Self {
        BTree { root }
    }

    /// The current root page id (persist this in metadata).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Insert `(key, value)`. Duplicate keys are rejected with `false`
    /// (compose row ids into keys to avoid duplicates).
    pub fn insert(&mut self, pool: &BufferPool, key: &[u8; KEY_LEN], value: u64) -> Result<bool> {
        match self.insert_rec(pool, self.root, key, value)? {
            None => Ok(false),
            Some(InsertResult::Done) => Ok(true),
            Some(InsertResult::Split { sep, right }) => {
                // Grow a new root.
                let new_root = pool.pager().allocate(PageType::BTreeInternal)?;
                let old_root = self.root;
                pool.with_page_mut(new_root, |p| {
                    set_n_keys(p, 1);
                    set_leftmost_child(p, old_root);
                    set_key_at(p, 0, &sep);
                    set_child_at(p, 0, right);
                })?;
                self.root = new_root;
                Ok(true)
            }
        }
    }

    fn insert_rec(
        &self,
        pool: &BufferPool,
        node: PageId,
        key: &[u8; KEY_LEN],
        value: u64,
    ) -> Result<Option<InsertResult>> {
        let ptype = pool.with_page(node, |p| p.page_type())??;
        match ptype {
            PageType::BTreeLeaf => self.insert_leaf(pool, node, key, value),
            PageType::BTreeInternal => {
                let (child, child_idx) = pool.with_page(node, |p| {
                    let idx = upper_route(p, key);
                    (route_child(p, idx), idx)
                })?;
                match self.insert_rec(pool, child, key, value)? {
                    None => Ok(None),
                    Some(InsertResult::Done) => Ok(Some(InsertResult::Done)),
                    Some(InsertResult::Split { sep, right }) => {
                        self.insert_internal(pool, node, child_idx, sep, right)
                    }
                }
            }
            _ => Err(crate::StorageError::Corrupt("not a btree page")),
        }
    }

    fn insert_leaf(
        &self,
        pool: &BufferPool,
        leaf: PageId,
        key: &[u8; KEY_LEN],
        value: u64,
    ) -> Result<Option<InsertResult>> {
        // Fast path: room in the leaf.
        let inserted = pool.with_page_mut(leaf, |p| {
            let n = n_keys(p);
            let pos = lower_bound(p, key);
            if pos < n && key_at(p, pos) == *key {
                return Some(false); // duplicate
            }
            if n >= LEAF_CAP {
                return None; // must split
            }
            // Shift right.
            for i in (pos..n).rev() {
                let k = key_at(p, i);
                set_key_at(p, i + 1, &k);
                let v = leaf_val(p, i);
                set_leaf_val(p, i + 1, v);
            }
            set_key_at(p, pos, key);
            set_leaf_val(p, pos, value);
            set_n_keys(p, n + 1);
            Some(true)
        })?;
        match inserted {
            Some(true) => return Ok(Some(InsertResult::Done)),
            Some(false) => return Ok(None),
            None => {}
        }

        // Split: move the upper half to a fresh right leaf.
        let right = pool.pager().allocate(PageType::BTreeLeaf)?;
        let (sep, old_next) = pool.with_page_mut(leaf, |p| {
            let n = n_keys(p);
            let mid = n / 2;
            let moved: Vec<([u8; KEY_LEN], u64)> =
                (mid..n).map(|i| (key_at(p, i), leaf_val(p, i))).collect();
            set_n_keys(p, mid);
            let old_next = next_leaf(p);
            set_next_leaf(p, Some(right));
            (moved, old_next)
        })?;
        pool.with_page_mut(right, |p| {
            set_n_keys(p, sep.len());
            set_next_leaf(p, old_next);
            for (i, (k, v)) in sep.iter().enumerate() {
                set_key_at(p, i, k);
                set_leaf_val(p, i, *v);
            }
        })?;
        let sep_key = sep[0].0;
        // Insert the pending key into the correct half.
        let target = if key.as_slice() < sep_key.as_slice() {
            leaf
        } else {
            right
        };
        let ok = pool.with_page_mut(target, |p| {
            let n = n_keys(p);
            let pos = lower_bound(p, key);
            if pos < n && key_at(p, pos) == *key {
                return false;
            }
            for i in (pos..n).rev() {
                let k = key_at(p, i);
                set_key_at(p, i + 1, &k);
                let v = leaf_val(p, i);
                set_leaf_val(p, i + 1, v);
            }
            set_key_at(p, pos, key);
            set_leaf_val(p, pos, value);
            set_n_keys(p, n + 1);
            true
        })?;
        debug_assert!(ok, "post-split leaf must have room");
        Ok(Some(InsertResult::Split {
            sep: sep_key,
            right,
        }))
    }

    fn insert_internal(
        &self,
        pool: &BufferPool,
        node: PageId,
        child_idx: usize,
        sep: [u8; KEY_LEN],
        right: PageId,
    ) -> Result<Option<InsertResult>> {
        // child_idx is the routing slot we descended through: the new
        // separator lands at position child_idx.
        let fits = pool.with_page_mut(node, |p| {
            let n = n_keys(p);
            if n >= INT_CAP {
                return false;
            }
            for i in (child_idx..n).rev() {
                let k = key_at(p, i);
                set_key_at(p, i + 1, &k);
                let c = child_at(p, i);
                set_child_at(p, i + 1, c);
            }
            set_key_at(p, child_idx, &sep);
            set_child_at(p, child_idx, right);
            set_n_keys(p, n + 1);
            true
        })?;
        if fits {
            return Ok(Some(InsertResult::Done));
        }

        // Split the internal node. Collect entries, include the pending one.
        let (mut keys, mut children, leftmost) = pool.with_page(node, |p| {
            let n = n_keys(p);
            let keys: Vec<[u8; KEY_LEN]> = (0..n).map(|i| key_at(p, i)).collect();
            let children: Vec<PageId> = (0..n).map(|i| child_at(p, i)).collect();
            (keys, children, leftmost_child(p))
        })?;
        keys.insert(child_idx, sep);
        children.insert(child_idx, right);

        let total = keys.len();
        let mid = total / 2; // key[mid] moves up
        let up_key = keys[mid];

        // Left node keeps keys[..mid]; right node gets keys[mid+1..].
        let right_node = pool.pager().allocate(PageType::BTreeInternal)?;
        pool.with_page_mut(node, |p| {
            set_n_keys(p, mid);
            for (i, k) in keys[..mid].iter().enumerate() {
                set_key_at(p, i, k);
                set_child_at(p, i, children[i]);
            }
            set_leftmost_child(p, leftmost);
        })?;
        pool.with_page_mut(right_node, |p| {
            let rn = total - mid - 1;
            set_n_keys(p, rn);
            set_leftmost_child(p, children[mid]);
            for i in 0..rn {
                set_key_at(p, i, &keys[mid + 1 + i]);
                set_child_at(p, i, children[mid + 1 + i]);
            }
        })?;
        Ok(Some(InsertResult::Split {
            sep: up_key,
            right: right_node,
        }))
    }

    /// Exact lookup.
    pub fn get(&self, pool: &BufferPool, key: &[u8; KEY_LEN]) -> Result<Option<u64>> {
        let leaf = self.find_leaf(pool, key)?;
        pool.with_page(leaf, |p| {
            let pos = lower_bound(p, key);
            if pos < n_keys(p) && key_at(p, pos) == *key {
                Some(leaf_val(p, pos))
            } else {
                None
            }
        })
    }

    /// Remove `key`; returns whether it existed. No rebalancing.
    pub fn delete(&self, pool: &BufferPool, key: &[u8; KEY_LEN]) -> Result<bool> {
        let leaf = self.find_leaf(pool, key)?;
        pool.with_page_mut(leaf, |p| {
            let n = n_keys(p);
            let pos = lower_bound(p, key);
            if pos >= n || key_at(p, pos) != *key {
                return false;
            }
            for i in pos..n - 1 {
                let k = key_at(p, i + 1);
                set_key_at(p, i, &k);
                let v = leaf_val(p, i + 1);
                set_leaf_val(p, i, v);
            }
            set_n_keys(p, n - 1);
            true
        })
    }

    /// Inclusive range scan: every `(key, value)` with `lo ≤ key ≤ hi`,
    /// in key order.
    pub fn range(
        &self,
        pool: &BufferPool,
        lo: &[u8; KEY_LEN],
        hi: &[u8; KEY_LEN],
    ) -> Result<Vec<([u8; KEY_LEN], u64)>> {
        let mut out = Vec::new();
        let mut leaf = Some(self.find_leaf(pool, lo)?);
        while let Some(id) = leaf {
            let (done, next) = pool.with_page(id, |p| {
                let n = n_keys(p);
                let start = lower_bound(p, lo);
                for i in start..n {
                    let k = key_at(p, i);
                    if k.as_slice() > hi.as_slice() {
                        return (true, None);
                    }
                    out.push((k, leaf_val(p, i)));
                }
                (false, next_leaf(p))
            })?;
            if done {
                break;
            }
            leaf = next;
        }
        Ok(out)
    }

    /// Scan every entry (in key order).
    pub fn scan_all(&self, pool: &BufferPool) -> Result<Vec<([u8; KEY_LEN], u64)>> {
        self.range(pool, &[0u8; KEY_LEN], &[0xffu8; KEY_LEN])
    }

    /// Number of entries (O(n) leaf walk).
    pub fn len(&self, pool: &BufferPool) -> Result<usize> {
        Ok(self.scan_all(pool)?.len())
    }

    /// True iff the tree has no entries.
    pub fn is_empty(&self, pool: &BufferPool) -> Result<bool> {
        Ok(self.len(pool)? == 0)
    }

    /// Height of the tree (1 = single leaf).
    pub fn height(&self, pool: &BufferPool) -> Result<usize> {
        let mut h = 1;
        let mut node = self.root;
        loop {
            let ptype = pool.with_page(node, |p| p.page_type())??;
            match ptype {
                PageType::BTreeLeaf => return Ok(h),
                PageType::BTreeInternal => {
                    node = pool.with_page(node, leftmost_child)?;
                    h += 1;
                }
                _ => return Err(crate::StorageError::Corrupt("not a btree page")),
            }
        }
    }

    fn find_leaf(&self, pool: &BufferPool, key: &[u8; KEY_LEN]) -> Result<PageId> {
        let mut node = self.root;
        loop {
            let ptype = pool.with_page(node, |p| p.page_type())??;
            match ptype {
                PageType::BTreeLeaf => return Ok(node),
                PageType::BTreeInternal => {
                    node = pool.with_page(node, |p| {
                        let idx = upper_route(p, key);
                        route_child(p, idx)
                    })?;
                }
                _ => return Err(crate::StorageError::Corrupt("not a btree page")),
            }
        }
    }
}

/// Routing position in an internal node: number of keys ≤ `key`
/// (descend into the child to the right of the last such key).
fn upper_route(p: &Page, key: &[u8; KEY_LEN]) -> usize {
    let (mut lo, mut hi) = (0usize, n_keys(p));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if key_at(p, mid).as_slice() <= key.as_slice() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Child pointer for routing index `idx` (0 = leftmost).
fn route_child(p: &Page, idx: usize) -> PageId {
    if idx == 0 {
        leftmost_child(p)
    } else {
        child_at(p, idx - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn setup() -> (BufferPool, BTree) {
        let pool = BufferPool::new(Pager::in_memory(), 64);
        let tree = BTree::create(&pool).unwrap();
        (pool, tree)
    }

    #[test]
    fn encode_i128_preserves_order() {
        let vals = [i128::MIN, -5, -1, 0, 1, 42, i128::MAX];
        for w in vals.windows(2) {
            assert!(encode_i128(w[0]) < encode_i128(w[1]));
        }
        for v in vals {
            assert_eq!(decode_i128(&encode_i128(v)), v);
        }
    }

    #[test]
    fn compose_decompose_roundtrip() {
        for (s, r) in [(0i128, 0u64), (-7, 3), (1 << 100, u64::MAX)] {
            assert_eq!(decompose_key(&compose_key(s, r)), (s, r));
        }
    }

    #[test]
    fn empty_tree() {
        let (pool, tree) = setup();
        assert!(tree.is_empty(&pool).unwrap());
        assert_eq!(tree.get(&pool, &compose_key(5, 0)).unwrap(), None);
        assert_eq!(tree.height(&pool).unwrap(), 1);
    }

    #[test]
    fn insert_get_small() {
        let (pool, mut tree) = setup();
        for i in 0..50i128 {
            assert!(tree
                .insert(&pool, &compose_key(i, i as u64), i as u64 * 10)
                .unwrap());
        }
        for i in 0..50i128 {
            assert_eq!(
                tree.get(&pool, &compose_key(i, i as u64)).unwrap(),
                Some(i as u64 * 10)
            );
        }
        assert_eq!(tree.len(&pool).unwrap(), 50);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (pool, mut tree) = setup();
        let k = compose_key(7, 7);
        assert!(tree.insert(&pool, &k, 1).unwrap());
        assert!(!tree.insert(&pool, &k, 2).unwrap());
        assert_eq!(tree.get(&pool, &k).unwrap(), Some(1));
    }

    #[test]
    fn grows_beyond_one_leaf_and_stays_sorted() {
        let (pool, mut tree) = setup();
        let mut keys: Vec<i128> = (0..1000).collect();
        let mut rng = StdRng::seed_from_u64(42);
        keys.shuffle(&mut rng);
        for &k in &keys {
            tree.insert(&pool, &compose_key(k, k as u64), k as u64)
                .unwrap();
        }
        assert!(tree.height(&pool).unwrap() >= 2);
        let all = tree.scan_all(&pool).unwrap();
        assert_eq!(all.len(), 1000);
        for (i, (k, v)) in all.iter().enumerate() {
            let (share, _) = decompose_key(k);
            assert_eq!(share, i as i128);
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn three_level_tree() {
        // Enough entries to force height 3 (> LEAF_CAP * INT_CAP is huge;
        // instead use > LEAF_CAP * 2 and verify ≥ 2; 20k gives height 3).
        let (pool, mut tree) = setup();
        for k in 0..20_000i128 {
            tree.insert(&pool, &compose_key(k, 0), k as u64).unwrap();
        }
        assert!(tree.height(&pool).unwrap() >= 3);
        for k in (0..20_000i128).step_by(997) {
            assert_eq!(tree.get(&pool, &compose_key(k, 0)).unwrap(), Some(k as u64));
        }
        assert_eq!(tree.len(&pool).unwrap(), 20_000);
    }

    #[test]
    fn range_scan_inclusive() {
        let (pool, mut tree) = setup();
        for k in 0..500i128 {
            tree.insert(&pool, &compose_key(k * 2, 0), k as u64)
                .unwrap();
        }
        // [100, 200] covers even shares 100..=200 → 51 entries.
        let got = tree
            .range(&pool, &compose_key(100, 0), &compose_key(200, u64::MAX))
            .unwrap();
        assert_eq!(got.len(), 51);
        assert_eq!(decompose_key(&got[0].0).0, 100);
        assert_eq!(decompose_key(&got.last().unwrap().0).0, 200);
    }

    #[test]
    fn range_scan_with_negative_shares() {
        let (pool, mut tree) = setup();
        for k in -100..100i128 {
            tree.insert(&pool, &compose_key(k, 0), (k + 100) as u64)
                .unwrap();
        }
        let got = tree
            .range(&pool, &compose_key(-50, 0), &compose_key(50, u64::MAX))
            .unwrap();
        assert_eq!(got.len(), 101);
        assert_eq!(decompose_key(&got[0].0).0, -50);
    }

    #[test]
    fn delete_then_get_and_reinsert() {
        let (pool, mut tree) = setup();
        for k in 0..300i128 {
            tree.insert(&pool, &compose_key(k, 0), k as u64).unwrap();
        }
        for k in (0..300i128).step_by(3) {
            assert!(tree.delete(&pool, &compose_key(k, 0)).unwrap());
        }
        assert!(!tree.delete(&pool, &compose_key(0, 0)).unwrap(), "gone");
        assert_eq!(tree.len(&pool).unwrap(), 200);
        for k in 0..300i128 {
            let want = if k % 3 == 0 { None } else { Some(k as u64) };
            assert_eq!(tree.get(&pool, &compose_key(k, 0)).unwrap(), want, "k={k}");
        }
        // Reinsert the deleted ones.
        for k in (0..300i128).step_by(3) {
            assert!(tree.insert(&pool, &compose_key(k, 0), 999).unwrap());
        }
        assert_eq!(tree.get(&pool, &compose_key(0, 0)).unwrap(), Some(999));
    }

    #[test]
    fn duplicate_shares_distinct_rows() {
        let (pool, mut tree) = setup();
        // Same share value for 200 rows (e.g. many employees, same salary).
        for row in 0..200u64 {
            tree.insert(&pool, &compose_key(777, row), row).unwrap();
        }
        let got = tree
            .range(&pool, &compose_key(777, 0), &compose_key(777, u64::MAX))
            .unwrap();
        assert_eq!(got.len(), 200);
    }

    #[test]
    fn reopen_by_root_id() {
        let (pool, mut tree) = setup();
        for k in 0..5000i128 {
            tree.insert(&pool, &compose_key(k, 0), k as u64).unwrap();
        }
        let root = tree.root();
        let reopened = BTree::open(root);
        assert_eq!(
            reopened.get(&pool, &compose_key(4321, 0)).unwrap(),
            Some(4321)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_matches_btreemap(ops in proptest::collection::vec(
            (any::<i16>(), any::<bool>()), 1..400)
        ) {
            let (pool, mut tree) = setup();
            let mut model = std::collections::BTreeMap::new();
            for (v, is_insert) in ops {
                let key = compose_key(v as i128, 0);
                if is_insert {
                    let inserted = tree.insert(&pool, &key, v as u64).unwrap();
                    // Values are a function of the key, so reject-vs-replace
                    // semantics coincide; only presence must match.
                    let model_inserted = model.insert(v, v as u64).is_none();
                    prop_assert_eq!(inserted, model_inserted);
                } else {
                    let deleted = tree.delete(&pool, &key).unwrap();
                    prop_assert_eq!(deleted, model.remove(&v).is_some());
                }
            }
            let got = tree.scan_all(&pool).unwrap();
            prop_assert_eq!(got.len(), model.len());
            for ((k, _), (mk, _)) in got.iter().zip(model.iter()) {
                prop_assert_eq!(decompose_key(k).0, *mk as i128);
            }
        }
    }
}
