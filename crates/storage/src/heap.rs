//! Heap files: unordered variable-length tuple storage.
//!
//! Each provider stores its share-tuples in a heap file and indexes them
//! via [`crate::BTree`]. Records are addressed by [`RecordId`] (page,
//! slot); slots stay stable across intra-page compaction so record ids in
//! indexes never dangle.

use crate::buffer::BufferPool;
use crate::page::{Page, PageType};
use crate::pager::PageId;
use crate::{RecordId, Result, StorageError};

/// A heap file: a chain of heap pages with a simple append-to-last-page
/// insert policy (plus first-fit retry after deletes via `compact`).
pub struct HeapFile {
    pages: Vec<PageId>,
}

impl HeapFile {
    /// Create an empty heap file (allocates one page).
    pub fn create(pool: &BufferPool) -> Result<Self> {
        let first = pool.pager().allocate(PageType::Heap)?;
        Ok(HeapFile { pages: vec![first] })
    }

    /// Re-open from the recorded page list.
    pub fn open(pages: Vec<PageId>) -> Self {
        HeapFile { pages }
    }

    /// The page list (persist in metadata).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }

    /// Insert a record, returning its id.
    pub fn insert(&mut self, pool: &BufferPool, record: &[u8]) -> Result<RecordId> {
        if record.len() > Page::max_record() {
            return Err(StorageError::RecordTooLarge(record.len()));
        }
        let last = *self.pages.last().expect("non-empty page list");
        if let Some(slot) = pool.with_page_mut(last, |p| p.insert(record))?? {
            return Ok(RecordId { page: last, slot });
        }
        // Current tail is full: try compaction, then grow.
        let slot = pool.with_page_mut(last, |p| {
            p.compact()?;
            p.insert(record)
        })??;
        if let Some(slot) = slot {
            return Ok(RecordId { page: last, slot });
        }
        let fresh = pool.pager().allocate(PageType::Heap)?;
        self.pages.push(fresh);
        let slot = pool
            .with_page_mut(fresh, |p| p.insert(record))??
            .expect("fresh page fits any valid record");
        Ok(RecordId { page: fresh, slot })
    }

    /// Read a record.
    pub fn get(&self, pool: &BufferPool, rid: RecordId) -> Result<Option<Vec<u8>>> {
        if !self.pages.contains(&rid.page) {
            return Err(StorageError::BadSlot(rid));
        }
        pool.with_page(rid.page, |p| {
            p.get(rid.slot).map(|opt| opt.map(|r| r.to_vec()))
        })?
    }

    /// Delete a record; returns whether it was live.
    pub fn delete(&self, pool: &BufferPool, rid: RecordId) -> Result<bool> {
        if !self.pages.contains(&rid.page) {
            return Err(StorageError::BadSlot(rid));
        }
        pool.with_page_mut(rid.page, |p| p.delete(rid.slot))?
    }

    /// Replace a record in place if the new bytes fit the page (after
    /// compaction); otherwise delete + reinsert, returning the new id.
    pub fn update(&mut self, pool: &BufferPool, rid: RecordId, record: &[u8]) -> Result<RecordId> {
        let existed = self.delete(pool, rid)?;
        if !existed {
            return Err(StorageError::BadSlot(rid));
        }
        self.insert(pool, record)
    }

    /// Scan all live records as `(id, bytes)`.
    pub fn scan(&self, pool: &BufferPool) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        for &page in &self.pages {
            pool.with_page(page, |p| {
                for (slot, rec) in p.iter() {
                    out.push((RecordId { page, slot }, rec.to_vec()));
                }
            })?;
        }
        Ok(out)
    }

    /// Number of live records.
    pub fn len(&self, pool: &BufferPool) -> Result<usize> {
        Ok(self.scan(pool)?.len())
    }

    /// True iff no live records.
    pub fn is_empty(&self, pool: &BufferPool) -> Result<bool> {
        Ok(self.len(pool)? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::Pager;

    fn setup() -> (BufferPool, HeapFile) {
        let pool = BufferPool::new(Pager::in_memory(), 32);
        let heap = HeapFile::create(&pool).unwrap();
        (pool, heap)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (pool, mut heap) = setup();
        let a = heap.insert(&pool, b"tuple-a").unwrap();
        let b = heap.insert(&pool, b"tuple-b").unwrap();
        assert_eq!(heap.get(&pool, a).unwrap(), Some(b"tuple-a".to_vec()));
        assert_eq!(heap.get(&pool, b).unwrap(), Some(b"tuple-b".to_vec()));
    }

    #[test]
    fn spills_to_new_pages() {
        let (pool, mut heap) = setup();
        let rec = vec![9u8; 500];
        let mut ids = Vec::new();
        for _ in 0..50 {
            ids.push(heap.insert(&pool, &rec).unwrap());
        }
        assert!(heap.pages().len() > 1, "should have grown");
        for id in ids {
            assert_eq!(heap.get(&pool, id).unwrap(), Some(rec.clone()));
        }
        assert_eq!(heap.len(&pool).unwrap(), 50);
    }

    #[test]
    fn delete_and_scan() {
        let (pool, mut heap) = setup();
        let ids: Vec<RecordId> = (0..10)
            .map(|i| heap.insert(&pool, format!("r{i}").as_bytes()).unwrap())
            .collect();
        assert!(heap.delete(&pool, ids[3]).unwrap());
        assert!(!heap.delete(&pool, ids[3]).unwrap());
        assert_eq!(heap.get(&pool, ids[3]).unwrap(), None);
        let live = heap.scan(&pool).unwrap();
        assert_eq!(live.len(), 9);
        assert!(!live.iter().any(|(rid, _)| *rid == ids[3]));
    }

    #[test]
    fn update_returns_valid_id() {
        let (pool, mut heap) = setup();
        let rid = heap.insert(&pool, b"old").unwrap();
        let new_rid = heap.update(&pool, rid, b"new-and-longer").unwrap();
        assert_eq!(
            heap.get(&pool, new_rid).unwrap(),
            Some(b"new-and-longer".to_vec())
        );
        // Updating a dangling id errors.
        let dangling = RecordId {
            page: rid.page,
            slot: 999,
        };
        assert!(heap.update(&pool, dangling, b"x").is_err());
    }

    #[test]
    fn compaction_reuses_space_in_tail_page() {
        let (pool, mut heap) = setup();
        // Fill the single page with 39 × 100-byte records.
        let rec = vec![1u8; 100];
        let mut ids = Vec::new();
        loop {
            let id = heap.insert(&pool, &rec).unwrap();
            if id.page != heap.pages()[0] {
                break; // spilled
            }
            ids.push(id);
        }
        assert_eq!(heap.pages().len(), 2);
        // Delete everything on page 0, then insert: compaction lets the
        // tail page (page 1) keep filling, but page 0's space is only
        // reused via its own tail position — this documents the policy.
        for id in &ids {
            heap.delete(&pool, *id).unwrap();
        }
        assert_eq!(heap.len(&pool).unwrap(), 1);
    }

    #[test]
    fn foreign_record_id_rejected() {
        let (pool, heap) = setup();
        let bad = RecordId { page: 999, slot: 0 };
        assert!(matches!(
            heap.get(&pool, bad),
            Err(StorageError::BadSlot(_))
        ));
    }

    #[test]
    fn oversized_record_rejected() {
        let (pool, mut heap) = setup();
        let huge = vec![0u8; 5000];
        assert!(matches!(
            heap.insert(&pool, &huge),
            Err(StorageError::RecordTooLarge(_))
        ));
    }

    #[test]
    fn reopen_preserves_records() {
        let (pool, mut heap) = setup();
        let rid = heap.insert(&pool, b"stable").unwrap();
        let pages = heap.pages().to_vec();
        let reopened = HeapFile::open(pages);
        assert_eq!(reopened.get(&pool, rid).unwrap(), Some(b"stable".to_vec()));
    }
}
