//! Durable write-ahead log with group commit.
//!
//! The log stores opaque payloads (the provider engine logs encoded
//! requests; the client's lazy-update journal logs buffered assignments)
//! in length + CRC32-framed records behind a generation-stamped header.
//! Appends are queued in memory and a dedicated flusher thread coalesces
//! everything queued since the last fsync into **one** write + fsync —
//! group commit — so `c` concurrent committers pay one disk sync between
//! them instead of `c`. [`Wal::commit`] blocks until the record's
//! [`Lsn`] is durable.
//!
//! Recovery ([`Wal::open`]) scans the file, returns every complete
//! record, and truncates a torn tail (a crash mid-write leaves a partial
//! frame; anything after the last intact frame is discarded). A header
//! generation different from the caller's expectation means the log
//! belongs to a superseded checkpoint epoch and is reset instead of
//! replayed — that is what makes "rename checkpoint meta, then retire
//! the log" crash-safe without a second atomic step.
//!
//! Crash points ([`CrashPoint`]) instrument the commit and checkpoint
//! paths: set `DASP_CRASH_POINT` (optionally `DASP_CRASH_AFTER=n`) to
//! abort the process at the n-th hit — the kill-and-recover stress runs
//! on this — or arm an in-process hook from tests to simulate the same
//! torn states without losing the test harness.

use crate::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Log sequence number: the byte offset one past a record's frame. A
/// record is durable once the log's durable LSN reaches its own.
pub type Lsn = u64;

const WAL_MAGIC: [u8; 4] = *b"DWAL";
const WAL_VERSION: u32 = 1;
/// magic + version + generation.
pub(crate) const WAL_HEADER_LEN: u64 = 16;
/// Sanity bound on a single record (a request batch is well below this).
const MAX_RECORD: u32 = 64 << 20;

// ---- CRC32 (IEEE 802.3, table-driven) ----

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC32 checksum as used by the WAL frames and checkpoint metadata.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // dasp::allow(P3): index is masked to 0..256 over a 256-entry table
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---- crash points ----

/// Instrumented moments in the durability paths where a process can be
/// made to die, for crash-recovery testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// While a record frame is being appended: half the frame reaches
    /// the file (a torn tail), the rest never does.
    MidRecord,
    /// After record bytes reach the file but before fsync: complete
    /// frames may survive, but nothing was acknowledged.
    BeforeFsync,
    /// Immediately after fsync, before any acknowledgement is produced.
    AfterFsync,
    /// Mid-checkpoint: part of the new image is written, the metadata
    /// still points at the old one.
    MidCheckpoint,
    /// After the checkpoint metadata rename, before the old log is
    /// retired.
    BeforeWalSwitch,
}

impl CrashPoint {
    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "mid-record" => CrashPoint::MidRecord,
            "before-fsync" => CrashPoint::BeforeFsync,
            "after-fsync" => CrashPoint::AfterFsync,
            "mid-checkpoint" => CrashPoint::MidCheckpoint,
            "before-wal-switch" => CrashPoint::BeforeWalSwitch,
            _ => return None,
        })
    }
}

struct EnvCrash {
    point: CrashPoint,
    countdown: AtomicI64,
}

fn env_crash() -> &'static Option<EnvCrash> {
    static ENV: OnceLock<Option<EnvCrash>> = OnceLock::new();
    ENV.get_or_init(|| {
        let point = std::env::var("DASP_CRASH_POINT").ok()?;
        let point = CrashPoint::from_name(&point)?;
        let after = std::env::var("DASP_CRASH_AFTER")
            .ok()
            .and_then(|v| v.parse::<i64>().ok())
            .unwrap_or(1)
            .max(1);
        Some(EnvCrash {
            point,
            countdown: AtomicI64::new(after),
        })
    })
}

fn armed_hook() -> &'static Mutex<Option<CrashPoint>> {
    static HOOK: Mutex<Option<CrashPoint>> = Mutex::new(None);
    &HOOK
}

/// Arm an in-process crash hook: the next time `point` is reached the
/// operation fails (leaving the same on-disk state a real crash there
/// would) instead of aborting the process. One-shot; tests that use this
/// must serialize themselves (the hook is global).
pub fn arm_crash_point(point: CrashPoint) {
    if let Ok(mut hook) = armed_hook().lock() {
        *hook = Some(point);
    }
}

/// Disarm any armed in-process crash hook.
pub fn disarm_crash_points() {
    if let Ok(mut hook) = armed_hook().lock() {
        *hook = None;
    }
}

/// Report reaching a crash point. Aborts the process if the environment
/// (`DASP_CRASH_POINT`, `DASP_CRASH_AFTER`) selects this point; returns
/// `true` if an in-process hook is armed for it (the caller then
/// simulates the crash's on-disk effect and fails the operation).
pub fn crash_point_hit(point: CrashPoint) -> bool {
    if let Some(env) = env_crash() {
        if env.point == point && env.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            // A real kill: no destructors, no flushes — exactly the
            // state a power cut at this instant would leave.
            std::process::abort();
        }
    }
    if let Ok(mut hook) = armed_hook().lock() {
        if *hook == Some(point) {
            *hook = None;
            return true;
        }
    }
    false
}

// ---- configuration ----

/// Group-commit tuning.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Flush as soon as this many records are queued (1 = sync every
    /// record; larger values trade commit latency for fewer fsyncs).
    pub fsync_every: usize,
    /// With fewer queued records than `fsync_every`, wait at most this
    /// long for stragglers to join the batch before flushing anyway.
    pub batch_window: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync_every: 8,
            batch_window: Duration::from_millis(2),
        }
    }
}

/// Counters for the E19 experiment and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (this generation).
    pub records: u64,
    /// fsync calls issued by the flusher.
    pub fsyncs: u64,
    /// Durable bytes past the header.
    pub durable_bytes: u64,
}

// ---- the log ----

struct WalState {
    /// Framed bytes queued since the last flush, in append order.
    queued: Vec<u8>,
    /// Records represented in `queued`.
    queued_records: usize,
    /// Logical end offset (durable + queued), relative to the header.
    end_lsn: Lsn,
    durable_lsn: Lsn,
    records: u64,
    fsyncs: u64,
    /// First failure; everything after it errors out.
    error: Option<&'static str>,
    shutdown: bool,
    generation: u64,
}

struct WalShared {
    state: Mutex<WalState>,
    /// Wakes the flusher (records queued / shutdown).
    work: Condvar,
    /// Wakes committers (durable LSN advanced / error).
    durable: Condvar,
    /// The log file, touched only while the flush in progress owns it.
    file: Mutex<File>,
}

/// What [`Wal::open`] found on disk.
pub struct WalRecovery {
    /// The opened log, positioned after the last intact record.
    pub wal: Wal,
    /// Every complete record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail truncated away.
    pub torn_bytes: u64,
    /// The log carried a different generation and was reset (its records
    /// belong to a superseded checkpoint and are not returned).
    pub reset: bool,
}

/// A durable append-only record log with group commit. See the module
/// docs for the protocol.
pub struct Wal {
    shared: Arc<WalShared>,
    flusher: Option<std::thread::JoinHandle<()>>,
    path: PathBuf,
    config: WalConfig,
}

impl Wal {
    /// Open (or create) the log at `path` for checkpoint `generation`,
    /// replaying complete records and truncating any torn tail. A log
    /// stamped with a different generation is reset to an empty log of
    /// the requested generation.
    pub fn open(path: &Path, generation: u64, config: WalConfig) -> Result<WalRecovery> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut reset = false;
        let mut records = Vec::new();
        let mut torn_bytes = 0u64;
        let mut end = 0u64;
        if len < WAL_HEADER_LEN {
            reset = len > 0;
            Self::write_header(&mut file, generation)?;
        } else {
            let mut header = [0u8; WAL_HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            // dasp::allow(P3): fixed 16-byte array filled by read_exact
            let magic_ok = header[0..4] == WAL_MAGIC
                && u32::from_le_bytes([header[4], header[5], header[6], header[7]]) == WAL_VERSION;
            let file_gen = u64::from_le_bytes([
                header[8], header[9], header[10], header[11], header[12], header[13], header[14],
                header[15],
            ]);
            if !magic_ok || file_gen != generation {
                reset = true;
                Self::write_header(&mut file, generation)?;
            } else {
                let mut body = Vec::with_capacity((len - WAL_HEADER_LEN) as usize);
                file.read_to_end(&mut body)?;
                let (parsed, good_end) = Self::parse_records(&body);
                records = parsed;
                torn_bytes = body.len() as u64 - good_end;
                if torn_bytes > 0 {
                    file.set_len(WAL_HEADER_LEN + good_end)?;
                    file.sync_data()?;
                }
                end = good_end;
            }
        }
        file.seek(SeekFrom::End(0))?;
        let shared = Arc::new(WalShared {
            state: Mutex::new(WalState {
                queued: Vec::new(),
                queued_records: 0,
                end_lsn: end,
                durable_lsn: end,
                records: records.len() as u64,
                fsyncs: 0,
                error: None,
                shutdown: false,
                generation,
            }),
            work: Condvar::new(),
            durable: Condvar::new(),
            file: Mutex::new(file),
        });
        let flusher = Self::spawn_flusher(Arc::clone(&shared), config);
        Ok(WalRecovery {
            wal: Wal {
                shared,
                flusher,
                path: path.to_path_buf(),
                config,
            },
            records,
            torn_bytes,
            reset,
        })
    }

    fn write_header(file: &mut File, generation: u64) -> Result<()> {
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&generation.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(())
    }

    /// Parse complete `[len][crc][payload]` frames; returns the records
    /// and the offset of the first byte that is not part of an intact
    /// frame (the torn-tail boundary).
    fn parse_records(body: &[u8]) -> (Vec<Vec<u8>>, u64) {
        let mut records = Vec::new();
        let mut at = 0usize;
        while let Some(header) = body.get(at..at + 8) {
            // dasp::allow(P3): `header` is an 8-byte slice by construction
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            if len > MAX_RECORD {
                break;
            }
            let Some(payload) = body.get(at + 8..at + 8 + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            at += 8 + len as usize;
        }
        (records, at as u64)
    }

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    fn spawn_flusher(
        shared: Arc<WalShared>,
        config: WalConfig,
    ) -> Option<std::thread::JoinHandle<()>> {
        std::thread::Builder::new()
            .name("dasp-wal-flusher".into())
            .spawn(move || Self::flusher_loop(&shared, config))
            .ok()
    }

    fn flusher_loop(shared: &WalShared, config: WalConfig) {
        loop {
            // Phase 1: wait for work, giving stragglers one batch window
            // to pile onto the same fsync.
            let (batch, batch_end, record_batch) = {
                let Ok(mut state) = shared.state.lock() else {
                    return;
                };
                while state.queued.is_empty() && !state.shutdown {
                    let Ok((next, _)) = shared.work.wait_timeout(state, config.batch_window) else {
                        return;
                    };
                    state = next;
                }
                if state.queued.is_empty() && state.shutdown {
                    return;
                }
                if state.queued_records < config.fsync_every && !state.shutdown {
                    // Straggler window: a short nap lets concurrent
                    // committers coalesce; fsync_every short-circuits it.
                    let Ok((next, _)) = shared.work.wait_timeout(state, config.batch_window) else {
                        return;
                    };
                    state = next;
                }
                if state.error.is_some() {
                    // Poisoned (e.g. a simulated torn record): stop
                    // flushing so nothing after the tear reaches disk.
                    state.shutdown = true;
                    shared.durable.notify_all();
                    return;
                }
                let batch = std::mem::take(&mut state.queued);
                state.queued_records = 0;
                (batch, state.end_lsn, state.records)
            };
            let _ = record_batch;
            if batch.is_empty() {
                continue;
            }
            // Phase 2: one write + one fsync for the whole batch, outside
            // the state lock so appenders keep queueing.
            let io = {
                let Ok(mut file) = shared.file.lock() else {
                    return;
                };
                file.write_all(&batch)
                    .and_then(|()| {
                        if crash_point_hit(CrashPoint::BeforeFsync) {
                            // Bytes are in the file, durability was never
                            // promised: fail without syncing.
                            return Err(std::io::Error::other("crash before fsync"));
                        }
                        file.sync_data()
                    })
                    .map(|()| crash_point_hit(CrashPoint::AfterFsync))
            };
            // Phase 3: publish durability (or the failure) and wake
            // committers.
            let Ok(mut state) = shared.state.lock() else {
                return;
            };
            match io {
                Ok(crashed_after_fsync) => {
                    state.durable_lsn = batch_end;
                    state.fsyncs += 1;
                    if crashed_after_fsync {
                        state.error = Some("wal crashed after fsync");
                        state.shutdown = true;
                    }
                }
                Err(_) => {
                    state.error = Some("wal flush failed");
                    state.shutdown = true;
                }
            }
            let done = state.shutdown && state.queued.is_empty();
            shared.durable.notify_all();
            if done {
                return;
            }
        }
    }

    /// Queue one record, returning the [`Lsn`] to pass to
    /// [`Wal::commit`]. The record is *not* durable yet.
    pub fn append(&self, payload: &[u8]) -> Result<Lsn> {
        let frame = Self::frame(payload);
        let mut state = self
            .shared
            .state
            .lock()
            .map_err(|_| StorageError::Corrupt("wal state poisoned"))?;
        if let Some(err) = state.error {
            return Err(StorageError::Corrupt(err));
        }
        if crash_point_hit(CrashPoint::MidRecord) {
            // Simulate a crash halfway through the frame: the torn half
            // joins the queue (so it lands *after* everything already
            // queued, exactly as the real write order would), and the
            // log is poisoned before it can ever count as a record.
            let half = frame.len() / 2;
            // dasp::allow(P3): half = len/2 is always in bounds
            state.queued.extend_from_slice(&frame[..half]);
            state.error = Some("wal crashed mid-record");
            self.shared.work.notify_all();
            self.shared.durable.notify_all();
            return Err(StorageError::Corrupt("wal crashed mid-record"));
        }
        state.queued.extend_from_slice(&frame);
        state.queued_records += 1;
        state.end_lsn += frame.len() as u64;
        state.records += 1;
        let lsn = state.end_lsn;
        if state.queued_records >= self.config.fsync_every {
            self.shared.work.notify_all();
        } else {
            self.shared.work.notify_one();
        }
        Ok(lsn)
    }

    /// Block until everything up to `lsn` is durable. Concurrent
    /// committers waiting on the same flush share one fsync.
    pub fn commit(&self, lsn: Lsn) -> Result<()> {
        let mut state = self
            .shared
            .state
            .lock()
            .map_err(|_| StorageError::Corrupt("wal state poisoned"))?;
        loop {
            if state.durable_lsn >= lsn {
                return Ok(());
            }
            if let Some(err) = state.error {
                return Err(StorageError::Corrupt(err));
            }
            self.shared.work.notify_one();
            let Ok(next) = self.shared.durable.wait(state) else {
                return Err(StorageError::Corrupt("wal state poisoned"));
            };
            state = next;
        }
    }

    /// Append + commit in one call (fsync-per-record semantics for this
    /// record, still sharing the fsync with concurrent appenders).
    pub fn append_durable(&self, payload: &[u8]) -> Result<Lsn> {
        let lsn = self.append(payload)?;
        self.commit(lsn)?;
        Ok(lsn)
    }

    /// The current logical end of the log (including queued records).
    pub fn end_lsn(&self) -> Lsn {
        self.shared.state.lock().map(|s| s.end_lsn).unwrap_or(0)
    }

    /// The log's checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.shared.state.lock().map(|s| s.generation).unwrap_or(0)
    }

    /// Counters snapshot.
    pub fn stats(&self) -> WalStats {
        self.shared
            .state
            .lock()
            .map(|s| WalStats {
                records: s.records,
                fsyncs: s.fsyncs,
                durable_bytes: s.durable_lsn,
            })
            .unwrap_or_default()
    }

    /// Retire every record and restamp the log as `generation`: the
    /// checkpoint that superseded the records has been made durable.
    /// Queued-but-unflushed records are dropped (they are part of the
    /// checkpoint image by construction — the caller quiesced writers).
    pub fn switch_generation(&self, generation: u64) -> Result<()> {
        let mut state = self
            .shared
            .state
            .lock()
            .map_err(|_| StorageError::Corrupt("wal state poisoned"))?;
        if let Some(err) = state.error {
            return Err(StorageError::Corrupt(err));
        }
        {
            let mut file = self
                .shared
                .file
                .lock()
                .map_err(|_| StorageError::Corrupt("wal file poisoned"))?;
            Self::write_header(&mut file, generation)?;
            file.seek(SeekFrom::End(0))?;
        }
        state.queued.clear();
        state.queued_records = 0;
        state.end_lsn = 0;
        state.durable_lsn = 0;
        state.records = 0;
        state.generation = generation;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dasp-wal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn fast() -> WalConfig {
        WalConfig {
            fsync_every: 1,
            batch_window: Duration::from_micros(200),
        }
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_commit_reopen_roundtrip() {
        let path = temp_wal_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let rec = Wal::open(&path, 0, fast()).unwrap();
            assert!(rec.records.is_empty());
            for i in 0..10u32 {
                rec.wal.append_durable(&i.to_le_bytes()).unwrap();
            }
            assert_eq!(rec.wal.stats().records, 10);
            assert!(rec.wal.stats().fsyncs >= 1);
        }
        let rec = Wal::open(&path, 0, fast()).unwrap();
        assert_eq!(rec.records.len(), 10);
        assert_eq!(rec.torn_bytes, 0);
        assert!(!rec.reset);
        for (i, r) in rec.records.iter().enumerate() {
            assert_eq!(r.as_slice(), (i as u32).to_le_bytes());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_coalesces_fsyncs() {
        let path = temp_wal_path("group");
        let _ = std::fs::remove_file(&path);
        let rec = Wal::open(
            &path,
            0,
            WalConfig {
                fsync_every: 64,
                batch_window: Duration::from_millis(5),
            },
        )
        .unwrap();
        let wal = Arc::new(rec.wal);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..8u64 {
                        wal.append_durable(&(t * 100 + i).to_le_bytes()).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.records, 64);
        assert!(
            stats.fsyncs < 64,
            "64 concurrent commits used {} fsyncs; group commit must coalesce",
            stats.fsyncs
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = temp_wal_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let rec = Wal::open(&path, 0, fast()).unwrap();
            rec.wal.append_durable(b"keep-me").unwrap();
        }
        // Simulate a crash mid-append: half a frame at the tail.
        let frame = Wal::frame(b"torn-away");
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&frame[..frame.len() / 2]).unwrap();
        }
        let rec = Wal::open(&path, 0, fast()).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0], b"keep-me");
        assert!(rec.torn_bytes > 0);
        // The truncation is durable: reopening is clean.
        drop(rec);
        let rec = Wal::open(&path, 0, fast()).unwrap();
        assert_eq!((rec.records.len(), rec.torn_bytes), (1, 0));
        // Appending after recovery extends the intact prefix.
        rec.wal.append_durable(b"after").unwrap();
        drop(rec);
        let rec = Wal::open(&path, 0, fast()).unwrap();
        assert_eq!(rec.records, vec![b"keep-me".to_vec(), b"after".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_crc_truncates_from_corruption() {
        let path = temp_wal_path("crc");
        let _ = std::fs::remove_file(&path);
        {
            let rec = Wal::open(&path, 0, fast()).unwrap();
            rec.wal.append_durable(b"one").unwrap();
            rec.wal.append_durable(b"two").unwrap();
        }
        // Flip a payload byte of the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rec = Wal::open(&path, 0, fast()).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec()]);
        assert!(rec.torn_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn generation_mismatch_resets_log() {
        let path = temp_wal_path("gen");
        let _ = std::fs::remove_file(&path);
        {
            let rec = Wal::open(&path, 3, fast()).unwrap();
            rec.wal.append_durable(b"old-epoch").unwrap();
        }
        let rec = Wal::open(&path, 4, fast()).unwrap();
        assert!(rec.reset);
        assert!(rec.records.is_empty());
        assert_eq!(rec.wal.generation(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn switch_generation_retires_records() {
        let path = temp_wal_path("switch");
        let _ = std::fs::remove_file(&path);
        let rec = Wal::open(&path, 0, fast()).unwrap();
        rec.wal.append_durable(b"pre-checkpoint").unwrap();
        rec.wal.switch_generation(1).unwrap();
        rec.wal.append_durable(b"post-checkpoint").unwrap();
        drop(rec);
        let rec = Wal::open(&path, 1, fast()).unwrap();
        assert!(!rec.reset);
        assert_eq!(rec.records, vec![b"post-checkpoint".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_record_hook_leaves_recoverable_torn_tail() {
        let path = temp_wal_path("hook");
        let _ = std::fs::remove_file(&path);
        let rec = Wal::open(&path, 0, fast()).unwrap();
        rec.wal.append_durable(b"committed").unwrap();
        arm_crash_point(CrashPoint::MidRecord);
        assert!(rec.wal.append(b"torn-by-hook").is_err());
        disarm_crash_points();
        // Everything after the simulated crash fails.
        assert!(rec.wal.append(b"nope").is_err());
        drop(rec);
        let rec = Wal::open(&path, 0, fast()).unwrap();
        assert_eq!(rec.records, vec![b"committed".to_vec()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_payloads_and_large_payloads_roundtrip() {
        let path = temp_wal_path("sizes");
        let _ = std::fs::remove_file(&path);
        let big = vec![0xA5u8; 100_000];
        {
            let rec = Wal::open(&path, 0, fast()).unwrap();
            rec.wal.append_durable(b"").unwrap();
            rec.wal.append_durable(&big).unwrap();
        }
        let rec = Wal::open(&path, 0, fast()).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert!(rec.records[0].is_empty());
        assert_eq!(rec.records[1], big);
        let _ = std::fs::remove_file(&path);
    }
}
