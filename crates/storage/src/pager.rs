//! Page allocation over pluggable backends.
//!
//! The simulated providers run on [`MemBackend`] (a `Vec` of pages) so
//! experiments measure protocol costs, not disk; [`FileBackend`] offers
//! the same interface over a file for durability demos.

use crate::page::{Page, PageType, PAGE_SIZE};
use crate::Result;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Page number within a backend.
pub type PageId = u32;

/// A storage backend: fixed-size page I/O.
pub trait Backend: Send {
    /// Read page `id` into `out`.
    fn read(&mut self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()>;
    /// Write page `id`.
    fn write(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) -> Result<()>;
    /// Number of allocated pages.
    fn page_count(&self) -> PageId;
    /// Extend by one zeroed page, returning its id.
    fn grow(&mut self) -> Result<PageId>;
    /// Flush to durable storage (no-op for memory).
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// In-memory backend.
#[derive(Default)]
pub struct MemBackend {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemBackend {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Backend for MemBackend {
    fn read(&mut self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        let page = self
            .pages
            .get(id as usize)
            .ok_or(crate::StorageError::BadPage(id))?;
        out.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        let page = self
            .pages
            .get_mut(id as usize)
            .ok_or(crate::StorageError::BadPage(id))?;
        page.copy_from_slice(data);
        Ok(())
    }

    fn page_count(&self) -> PageId {
        self.pages.len() as PageId
    }

    fn grow(&mut self) -> Result<PageId> {
        let id = self.pages.len() as PageId;
        self.pages.push(Box::new([0u8; PAGE_SIZE]));
        Ok(id)
    }
}

/// File-backed backend (one file, pages at `id * PAGE_SIZE`).
pub struct FileBackend {
    file: File,
    pages: PageId,
}

impl FileBackend {
    /// Open or create the file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend {
            file,
            pages: (len / PAGE_SIZE as u64) as PageId,
        })
    }
}

impl Backend for FileBackend {
    fn read(&mut self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> Result<()> {
        if id >= self.pages {
            return Err(crate::StorageError::BadPage(id));
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(out)?;
        Ok(())
    }

    fn write(&mut self, id: PageId, data: &[u8; PAGE_SIZE]) -> Result<()> {
        if id >= self.pages {
            return Err(crate::StorageError::BadPage(id));
        }
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(data)?;
        Ok(())
    }

    fn page_count(&self) -> PageId {
        self.pages
    }

    fn grow(&mut self) -> Result<PageId> {
        let id = self.pages;
        self.file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(id)
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Thread-safe pager: page allocation with a free list, over any backend.
pub struct Pager {
    inner: Mutex<PagerInner>,
}

struct PagerInner {
    backend: Box<dyn Backend>,
    free_list: Vec<PageId>,
}

impl Pager {
    /// Wrap a backend.
    pub fn new<B: Backend + 'static>(backend: B) -> Self {
        Pager {
            inner: Mutex::new(PagerInner {
                backend: Box::new(backend),
                free_list: Vec::new(),
            }),
        }
    }

    /// An in-memory pager (the default for simulated providers).
    pub fn in_memory() -> Self {
        Self::new(MemBackend::new())
    }

    /// Allocate a page of the given type (reusing freed pages first).
    pub fn allocate(&self, ptype: PageType) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = match inner.free_list.pop() {
            Some(id) => id,
            None => inner.backend.grow()?,
        };
        let page = Page::new(ptype);
        inner.backend.write(id, page.as_bytes())?;
        Ok(id)
    }

    /// Return a page to the free list.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        let page = Page::new(PageType::Free);
        inner.backend.write(id, page.as_bytes())?;
        inner.free_list.push(id);
        Ok(())
    }

    /// Read a page.
    pub fn read(&self, id: PageId) -> Result<Page> {
        let mut buf = [0u8; PAGE_SIZE];
        self.inner.lock().backend.read(id, &mut buf)?;
        Ok(Page::from_bytes(buf))
    }

    /// Write a page.
    pub fn write(&self, id: PageId, page: &Page) -> Result<()> {
        self.inner.lock().backend.write(id, page.as_bytes())
    }

    /// Total allocated pages (including freed ones).
    pub fn page_count(&self) -> PageId {
        self.inner.lock().backend.page_count()
    }

    /// Flush the backend.
    pub fn sync(&self) -> Result<()> {
        // dasp::allow(L1, C1): `backend` is a `Box<dyn Backend>` file handle;
        // the name-based resolver links `sync` to unrelated engine methods,
        // so the lock-order edges out of this line are artifacts — the real
        // callee (`FileBackend::sync`) takes no locks.
        self.inner.lock().backend.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_backend(pager: &Pager) {
        let a = pager.allocate(PageType::Heap).unwrap();
        let b = pager.allocate(PageType::BTreeLeaf).unwrap();
        assert_ne!(a, b);

        let mut page = pager.read(a).unwrap();
        page.insert(b"persisted").unwrap();
        pager.write(a, &page).unwrap();

        let back = pager.read(a).unwrap();
        assert_eq!(back.get(0).unwrap(), Some(&b"persisted"[..]));
        assert_eq!(
            pager.read(b).unwrap().page_type().unwrap(),
            PageType::BTreeLeaf
        );

        // Freeing recycles the id.
        pager.free(a).unwrap();
        let c = pager.allocate(PageType::Meta).unwrap();
        assert_eq!(c, a, "free list should recycle");
        assert_eq!(pager.read(c).unwrap().page_type().unwrap(), PageType::Meta);
    }

    #[test]
    fn mem_backend_basics() {
        exercise_backend(&Pager::in_memory());
    }

    #[test]
    fn file_backend_basics() {
        let dir = std::env::temp_dir().join(format!("dasp-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        let _ = std::fs::remove_file(&path);
        exercise_backend(&Pager::new(FileBackend::open(&path).unwrap()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("dasp-pager2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.db");
        let _ = std::fs::remove_file(&path);
        {
            let pager = Pager::new(FileBackend::open(&path).unwrap());
            let id = pager.allocate(PageType::Heap).unwrap();
            let mut p = pager.read(id).unwrap();
            p.insert(b"durable").unwrap();
            pager.write(id, &p).unwrap();
            pager.sync().unwrap();
        }
        {
            let pager = Pager::new(FileBackend::open(&path).unwrap());
            assert_eq!(pager.page_count(), 1);
            assert_eq!(
                pager.read(0).unwrap().get(0).unwrap(),
                Some(&b"durable"[..])
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_out_of_range_errors() {
        let pager = Pager::in_memory();
        assert!(pager.read(0).is_err());
        pager.allocate(PageType::Heap).unwrap();
        assert!(pager.read(0).is_ok());
        assert!(pager.read(1).is_err());
    }
}
