//! Slotted pages: fixed 4 KiB frames holding variable-length records.
//!
//! Layout (offsets in bytes):
//!
//! ```text
//! 0..1    page type tag
//! 1..3    slot count (u16)
//! 3..5    free-space pointer (u16, grows downward from PAGE_SIZE)
//! 5..     slot directory: per slot, offset u16 + length u16
//!         (offset 0 = deleted tombstone)
//! ...     cell data, packed at the tail
//! ```

use crate::{Result, StorageError};

/// Fixed page size.
pub const PAGE_SIZE: usize = 4096;

const HEADER: usize = 5;
const SLOT_ENTRY: usize = 4;

/// Page type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageType {
    /// Unused / freshly allocated.
    Free = 0,
    /// Heap data page.
    Heap = 1,
    /// B+tree leaf.
    BTreeLeaf = 2,
    /// B+tree internal node.
    BTreeInternal = 3,
    /// Engine metadata.
    Meta = 4,
}

impl PageType {
    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => PageType::Free,
            1 => PageType::Heap,
            2 => PageType::BTreeLeaf,
            3 => PageType::BTreeInternal,
            4 => PageType::Meta,
            _ => return Err(StorageError::Corrupt("unknown page type")),
        })
    }
}

/// A 4 KiB page buffer with slotted-record accessors.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new(PageType::Free)
    }
}

impl Page {
    /// A fresh, empty page of the given type.
    pub fn new(ptype: PageType) -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data[0] = ptype as u8;
        data[3..5].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    /// Wrap raw bytes (e.g. read from disk).
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page {
            data: Box::new(bytes),
        }
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// The page type.
    pub fn page_type(&self) -> Result<PageType> {
        PageType::from_u8(self.data[0])
    }

    /// Reset to an empty page of `ptype`.
    pub fn reset(&mut self, ptype: PageType) {
        self.data.fill(0);
        self.data[0] = ptype as u8;
        self.set_free_ptr(PAGE_SIZE as u16);
    }

    /// Number of slots (including tombstones).
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[1], self.data[2]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[1..3].copy_from_slice(&n.to_le_bytes());
    }

    fn free_ptr(&self) -> u16 {
        u16::from_le_bytes([self.data[3], self.data[4]])
    }

    fn set_free_ptr(&mut self, p: u16) {
        self.data[3..5].copy_from_slice(&p.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let off = HEADER + slot as usize * SLOT_ENTRY;
        let pos = u16::from_le_bytes([self.data[off], self.data[off + 1]]);
        let len = u16::from_le_bytes([self.data[off + 2], self.data[off + 3]]);
        (pos, len)
    }

    fn set_slot_entry(&mut self, slot: u16, pos: u16, len: u16) {
        let off = HEADER + slot as usize * SLOT_ENTRY;
        self.data[off..off + 2].copy_from_slice(&pos.to_le_bytes());
        self.data[off + 2..off + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Free bytes available for one more record (including its slot entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() as usize * SLOT_ENTRY;
        (self.free_ptr() as usize).saturating_sub(dir_end)
    }

    /// Largest record insertable into an empty page.
    pub const fn max_record() -> usize {
        PAGE_SIZE - HEADER - SLOT_ENTRY
    }

    /// Insert a record, returning its slot, or `None` if it doesn't fit.
    pub fn insert(&mut self, record: &[u8]) -> Result<Option<u16>> {
        if record.len() > Self::max_record() {
            return Err(StorageError::RecordTooLarge(record.len()));
        }
        if self.free_space() < record.len() + SLOT_ENTRY {
            return Ok(None);
        }
        let slot = self.slot_count();
        let new_free = self.free_ptr() as usize - record.len();
        self.data[new_free..new_free + record.len()].copy_from_slice(record);
        self.set_free_ptr(new_free as u16);
        self.set_slot_entry(slot, new_free as u16, record.len() as u16);
        self.set_slot_count(slot + 1);
        Ok(Some(slot))
    }

    /// Read the record in `slot`; `None` if deleted.
    pub fn get(&self, slot: u16) -> Result<Option<&[u8]>> {
        if slot >= self.slot_count() {
            return Err(StorageError::Corrupt("slot out of range"));
        }
        let (pos, len) = self.slot_entry(slot);
        if pos == 0 {
            return Ok(None); // tombstone
        }
        let (pos, len) = (pos as usize, len as usize);
        if pos + len > PAGE_SIZE || pos < HEADER {
            return Err(StorageError::Corrupt("slot points outside page"));
        }
        Ok(Some(&self.data[pos..pos + len]))
    }

    /// Tombstone-delete the record in `slot`. Space is reclaimed only by
    /// [`Page::compact`].
    pub fn delete(&mut self, slot: u16) -> Result<bool> {
        if slot >= self.slot_count() {
            return Err(StorageError::Corrupt("slot out of range"));
        }
        let (pos, _) = self.slot_entry(slot);
        if pos == 0 {
            return Ok(false);
        }
        self.set_slot_entry(slot, 0, 0);
        Ok(true)
    }

    /// Rewrite live records contiguously, dropping dead space but keeping
    /// slot numbers stable (so [`crate::RecordId`]s stay valid).
    pub fn compact(&mut self) -> Result<()> {
        let n = self.slot_count();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n as usize);
        for slot in 0..n {
            if let Some(rec) = self.get(slot)? {
                live.push((slot, rec.to_vec()));
            }
        }
        let mut free = PAGE_SIZE;
        // Zero the data region, then re-pack.
        let dir_end = HEADER + n as usize * SLOT_ENTRY;
        self.data[dir_end..].fill(0);
        for (slot, rec) in live {
            free -= rec.len();
            self.data[free..free + rec.len()].copy_from_slice(&rec);
            self.set_slot_entry(slot, free as u16, rec.len() as u16);
        }
        self.set_free_ptr(free as u16);
        Ok(())
    }

    /// Iterate over live `(slot, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count())
            .filter_map(move |slot| self.get(slot).ok().flatten().map(|rec| (slot, rec)))
    }

    // ---- raw field accessors used by the B+tree (fixed layouts) ----

    /// Read `len` bytes at `offset` (B+tree node fields).
    pub fn read_at(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    /// Write bytes at `offset` (B+tree node fields).
    pub fn write_at(&mut self, offset: usize, bytes: &[u8]) {
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Page(type={:?}, slots={}, free={})",
            self.page_type().map_err(|_| std::fmt::Error)?,
            self.slot_count(),
            self.free_space()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new(PageType::Heap);
        assert_eq!(p.page_type().unwrap(), PageType::Heap);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new(PageType::Heap);
        let s0 = p.insert(b"hello").unwrap().unwrap();
        let s1 = p.insert(b"world!").unwrap().unwrap();
        assert_eq!(p.get(s0).unwrap(), Some(&b"hello"[..]));
        assert_eq!(p.get(s1).unwrap(), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fill_until_full() {
        let mut p = Page::new(PageType::Heap);
        let rec = [0xabu8; 100];
        let mut count = 0;
        while p.insert(&rec).unwrap().is_some() {
            count += 1;
        }
        // 100-byte record + 4-byte slot entry = 104; (4096-5)/104 = 39.
        assert_eq!(count, 39);
        assert!(p.free_space() < 104);
    }

    #[test]
    fn record_too_large_errors() {
        let mut p = Page::new(PageType::Heap);
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&huge),
            Err(StorageError::RecordTooLarge(_))
        ));
        // Max-size record fits exactly.
        let max = vec![7u8; Page::max_record()];
        assert!(p.insert(&max).unwrap().is_some());
        assert_eq!(p.free_space(), 0);
    }

    #[test]
    fn delete_and_tombstones() {
        let mut p = Page::new(PageType::Heap);
        let s0 = p.insert(b"aaa").unwrap().unwrap();
        let s1 = p.insert(b"bbb").unwrap().unwrap();
        assert!(p.delete(s0).unwrap());
        assert!(!p.delete(s0).unwrap(), "double delete is a no-op");
        assert_eq!(p.get(s0).unwrap(), None);
        assert_eq!(p.get(s1).unwrap(), Some(&b"bbb"[..]));
        assert!(p.get(99).is_err());
    }

    #[test]
    fn compact_reclaims_space_keeps_slots() {
        let mut p = Page::new(PageType::Heap);
        let mut slots = Vec::new();
        for i in 0..10 {
            let rec = vec![i as u8; 200];
            slots.push(p.insert(&rec).unwrap().unwrap());
        }
        let before = p.free_space();
        for &s in slots.iter().step_by(2) {
            p.delete(s).unwrap();
        }
        p.compact().unwrap();
        assert!(p.free_space() >= before + 5 * 200);
        for (i, &s) in slots.iter().enumerate() {
            let expect = if i % 2 == 0 {
                None
            } else {
                Some(vec![i as u8; 200])
            };
            assert_eq!(p.get(s).unwrap().map(|r| r.to_vec()), expect);
        }
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut p = Page::new(PageType::Heap);
        p.insert(b"a").unwrap();
        let s = p.insert(b"b").unwrap().unwrap();
        p.insert(b"c").unwrap();
        p.delete(s).unwrap();
        let live: Vec<Vec<u8>> = p.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(live, vec![b"a".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut p = Page::new(PageType::BTreeLeaf);
        p.insert(b"payload").unwrap();
        let q = Page::from_bytes(*p.as_bytes());
        assert_eq!(q.get(0).unwrap(), Some(&b"payload"[..]));
        assert_eq!(q.page_type().unwrap(), PageType::BTreeLeaf);
    }

    #[test]
    fn corrupt_type_detected() {
        let mut bytes = [0u8; PAGE_SIZE];
        bytes[0] = 0xff;
        assert!(Page::from_bytes(bytes).page_type().is_err());
    }

    proptest! {
        #[test]
        fn prop_insert_get_many(recs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..300), 1..30)
        ) {
            let mut p = Page::new(PageType::Heap);
            let mut stored = Vec::new();
            for rec in &recs {
                if let Some(slot) = p.insert(rec).unwrap() {
                    stored.push((slot, rec.clone()));
                }
            }
            for (slot, rec) in stored {
                prop_assert_eq!(p.get(slot).unwrap(), Some(rec.as_slice()));
            }
        }
    }
}
