//! Per-provider storage engine.
//!
//! Each database service provider in the paper's deployment stores a
//! table of *shares* and must answer exact-match and range scans over
//! them (§V-A). This crate supplies the storage substrate a real DAS
//! would run on:
//!
//! * [`page`] — 4 KiB slotted pages for variable-length records.
//! * [`pager`] — page allocation over a backend ([`pager::MemBackend`]
//!   for simulation speed, [`pager::FileBackend`] for durability).
//! * [`buffer`] — a clock-eviction buffer pool over the pager.
//! * [`btree`] — a B+tree with fixed 24-byte composite keys
//!   (big-endian share value ‖ row id) supporting ordered range scans —
//!   the index that makes order-preserving-share range queries cheap.
//! * [`heap`] — heap files of variable-length tuples addressed by
//!   [`RecordId`].
//!
//! Keys order shares correctly because [`btree::encode_i128`] maps
//! `i128` share values to big-endian byte strings with the sign bit
//! flipped, so byte order equals numeric order.

pub mod btree;
pub mod buffer;
pub mod heap;
pub mod page;
pub mod pager;
pub mod recovery;
pub mod wal;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use heap::HeapFile;
pub use page::{Page, PAGE_SIZE};
pub use pager::{FileBackend, MemBackend, PageId, Pager};
pub use recovery::{CheckpointMeta, RecoveryError, TableMeta};
pub use wal::{CrashPoint, Lsn, Wal, WalConfig, WalRecovery, WalStats};

/// Address of a record inside a heap file: page number plus slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into a u64 (for use as a B+tree value).
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Unpack from a u64.
    pub fn from_u64(v: u64) -> Self {
        RecordId {
            page: (v >> 16) as u32,
            slot: (v & 0xffff) as u16,
        }
    }
}

/// Errors from the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure (file backend only).
    Io(std::io::Error),
    /// A page id was out of range.
    BadPage(PageId),
    /// A slot id was invalid or deleted.
    BadSlot(RecordId),
    /// A record was too large to ever fit in a page.
    RecordTooLarge(usize),
    /// Page payload corrupted (bad type tag or offsets).
    Corrupt(&'static str),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::BadPage(p) => write!(f, "bad page id {p}"),
            StorageError::BadSlot(r) => write!(f, "bad slot {r:?}"),
            StorageError::RecordTooLarge(n) => write!(f, "record of {n} bytes too large"),
            StorageError::Corrupt(what) => write!(f, "corrupt page: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_id_roundtrip() {
        for (page, slot) in [(0u32, 0u16), (1, 2), (0xabcdef, 0xffff), (u32::MAX, 7)] {
            let rid = RecordId { page, slot };
            assert_eq!(RecordId::from_u64(rid.to_u64()), rid);
        }
    }

    #[test]
    fn record_id_ordering_is_page_major() {
        let a = RecordId { page: 1, slot: 9 };
        let b = RecordId { page: 2, slot: 0 };
        assert!(a < b);
        assert!(a.to_u64() < b.to_u64());
    }
}
