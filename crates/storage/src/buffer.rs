//! A clock-eviction buffer pool over a [`Pager`].
//!
//! Providers answer many point and range queries over the same hot index
//! pages; the pool keeps those resident. Eviction uses the clock (second
//! chance) algorithm — simpler than LRU lists, near-identical hit rates
//! for index workloads.

use crate::page::Page;
use crate::pager::{PageId, Pager};
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;

struct Frame {
    page_id: PageId,
    page: Page,
    dirty: bool,
    referenced: bool,
}

/// Cache statistics, for the E11 storage ablation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that went to the pager.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub evict_writebacks: u64,
}

/// A fixed-capacity page cache with clock eviction and write-back.
pub struct BufferPool {
    pager: Pager,
    inner: Mutex<PoolInner>,
}

struct PoolInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    hand: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `pager`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            pager,
            inner: Mutex::new(PoolInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::with_capacity(capacity),
                hand: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// The underlying pager (for allocation).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Snapshot the statistics.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Run `f` with read access to the page.
    pub fn with_page<T>(&self, id: PageId, f: impl FnOnce(&Page) -> T) -> Result<T> {
        let mut inner = self.inner.lock();
        let idx = self.ensure_resident(&mut inner, id)?;
        let frame = inner.frames[idx].as_mut().expect("resident");
        frame.referenced = true;
        Ok(f(&frame.page))
    }

    /// Run `f` with write access to the page; marks it dirty.
    pub fn with_page_mut<T>(&self, id: PageId, f: impl FnOnce(&mut Page) -> T) -> Result<T> {
        let mut inner = self.inner.lock();
        let idx = self.ensure_resident(&mut inner, id)?;
        let frame = inner.frames[idx].as_mut().expect("resident");
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write every dirty frame back to the pager.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for frame in inner.frames.iter_mut().flatten() {
            if frame.dirty {
                self.pager.write(frame.page_id, &frame.page)?;
                frame.dirty = false;
            }
        }
        self.pager.sync()
    }

    /// Drop a page from the pool (writing it back if dirty) — used when a
    /// page is freed.
    pub fn discard(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.map.remove(&id) {
            if let Some(frame) = inner.frames[idx].take() {
                if frame.dirty {
                    self.pager.write(frame.page_id, &frame.page)?;
                }
            }
        }
        Ok(())
    }

    fn ensure_resident(&self, inner: &mut PoolInner, id: PageId) -> Result<usize> {
        if let Some(&idx) = inner.map.get(&id) {
            inner.stats.hits += 1;
            return Ok(idx);
        }
        inner.stats.misses += 1;
        let page = self.pager.read(id)?;
        let idx = self.find_victim(inner)?;
        if let Some(old) = inner.frames[idx].take() {
            inner.map.remove(&old.page_id);
            if old.dirty {
                inner.stats.evict_writebacks += 1;
                self.pager.write(old.page_id, &old.page)?;
            }
        }
        inner.frames[idx] = Some(Frame {
            page_id: id,
            page,
            dirty: false,
            referenced: true,
        });
        inner.map.insert(id, idx);
        Ok(idx)
    }

    fn find_victim(&self, inner: &mut PoolInner) -> Result<usize> {
        // Empty frame first.
        if let Some(idx) = inner.frames.iter().position(|f| f.is_none()) {
            return Ok(idx);
        }
        // Clock sweep: clear reference bits until an unreferenced frame.
        loop {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % inner.frames.len();
            let frame = inner.frames[idx].as_mut().expect("full pool");
            if frame.referenced {
                frame.referenced = false;
            } else {
                return Ok(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn pool(capacity: usize, pages: u32) -> BufferPool {
        let pager = Pager::in_memory();
        for _ in 0..pages {
            pager.allocate(PageType::Heap).unwrap();
        }
        BufferPool::new(pager, capacity)
    }

    #[test]
    fn hit_after_first_access() {
        let pool = pool(4, 2);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(0, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn mutations_visible_through_pool_and_after_flush() {
        let pool = pool(2, 1);
        pool.with_page_mut(0, |p| {
            p.insert(b"cached").unwrap();
        })
        .unwrap();
        // Visible via the pool without a flush.
        let seen = pool
            .with_page(0, |p| p.get(0).unwrap().map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(seen, Some(b"cached".to_vec()));
        // Not necessarily on the pager yet; after flush it must be.
        pool.flush().unwrap();
        let direct = pool.pager().read(0).unwrap();
        assert_eq!(direct.get(0).unwrap(), Some(&b"cached"[..]));
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = pool(2, 5);
        pool.with_page_mut(0, |p| {
            p.insert(b"zero").unwrap();
        })
        .unwrap();
        // Touch enough other pages to force eviction of page 0.
        for id in 1..5 {
            pool.with_page(id, |_| ()).unwrap();
        }
        assert!(pool.stats().evict_writebacks >= 1);
        let direct = pool.pager().read(0).unwrap();
        assert_eq!(direct.get(0).unwrap(), Some(&b"zero"[..]));
        // Re-reading through the pool still sees it.
        let seen = pool
            .with_page(0, |p| p.get(0).unwrap().map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(seen, Some(b"zero".to_vec()));
    }

    #[test]
    fn working_set_within_capacity_never_re_misses() {
        let pool = pool(4, 4);
        for round in 0..10 {
            for id in 0..4 {
                pool.with_page(id, |_| ()).unwrap();
            }
            let s = pool.stats();
            assert_eq!(s.misses, 4, "round {round}");
        }
        assert_eq!(pool.stats().hits, 36);
    }

    #[test]
    fn discard_drops_and_writes_back() {
        let pool = pool(2, 2);
        pool.with_page_mut(1, |p| {
            p.insert(b"bye").unwrap();
        })
        .unwrap();
        pool.discard(1).unwrap();
        assert_eq!(
            pool.pager().read(1).unwrap().get(0).unwrap(),
            Some(&b"bye"[..])
        );
        // Next access is a miss again.
        let before = pool.stats().misses;
        pool.with_page(1, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, before + 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let pager = Pager::in_memory();
        BufferPool::new(pager, 0);
    }
}
