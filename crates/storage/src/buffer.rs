//! A sharded clock-eviction buffer pool over a [`Pager`].
//!
//! Providers answer many point and range queries over the same hot index
//! pages; the pool keeps those resident. Eviction uses the clock (second
//! chance) algorithm — simpler than LRU lists, near-identical hit rates
//! for index workloads.
//!
//! The frame set is split into shards addressed by a `PageId` hash so that
//! concurrent readers probing different pages contend on different locks.
//! Each shard owns its frames, its page map, and its clock hand; eviction
//! never crosses shards. [`PoolStats`] counters live in atomics beside the
//! shard locks and are aggregated on [`BufferPool::stats`]. Small pools
//! (fewer than [`MIN_FRAMES_PER_SHARD`] frames per would-be shard)
//! collapse to a single shard so tight-capacity eviction behaviour is
//! identical to the unsharded pool.

use crate::page::Page;
use crate::pager::{PageId, Pager};
use crate::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on shard count picked by [`BufferPool::new`].
const MAX_SHARDS: usize = 16;

/// A shard must hold at least this many frames to be worth its lock.
const MIN_FRAMES_PER_SHARD: usize = 64;

struct Frame {
    page_id: PageId,
    page: Page,
    dirty: bool,
    referenced: bool,
}

/// Cache statistics, for the E11 storage ablation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that went to the pager.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub evict_writebacks: u64,
    /// Dirty pages written back by [`BufferPool::flush`] /
    /// [`BufferPool::discard`] (checkpoints), not eviction pressure.
    pub flush_writebacks: u64,
}

/// A fixed-capacity page cache with clock eviction and write-back,
/// sharded by `PageId` hash.
pub struct BufferPool {
    pager: Pager,
    shards: Vec<Shard>,
}

struct Shard {
    inner: Mutex<ShardInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evict_writebacks: AtomicU64,
    flush_writebacks: AtomicU64,
}

struct ShardInner {
    frames: Vec<Option<Frame>>,
    map: HashMap<PageId, usize>,
    hand: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            inner: Mutex::new(ShardInner {
                frames: (0..capacity).map(|_| None).collect(),
                map: HashMap::with_capacity(capacity),
                hand: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evict_writebacks: AtomicU64::new(0),
            flush_writebacks: AtomicU64::new(0),
        }
    }
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `pager`, with a shard count
    /// derived from the capacity (one shard per [`MIN_FRAMES_PER_SHARD`]
    /// frames, at most [`MAX_SHARDS`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        let shards = (capacity / MIN_FRAMES_PER_SHARD).clamp(1, MAX_SHARDS);
        Self::with_shards(pager, capacity, shards)
    }

    /// Create a pool of `capacity` frames split over exactly `shards`
    /// shards. Capacity is distributed as evenly as possible; every shard
    /// receives at least one frame.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, `shards` is zero, or `shards`
    /// exceeds `capacity` (a shard with no frames could never admit a
    /// page).
    pub fn with_shards(pager: Pager, capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        assert!(shards > 0, "buffer pool needs at least one shard");
        assert!(
            shards <= capacity,
            "buffer pool needs at least one frame per shard"
        );
        let base = capacity / shards;
        let extra = capacity % shards;
        BufferPool {
            pager,
            shards: (0..shards)
                .map(|i| Shard::new(base + usize::from(i < extra)))
                .collect(),
        }
    }

    /// The underlying pager (for allocation).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot the statistics, aggregated across shards.
    pub fn stats(&self) -> PoolStats {
        let mut s = PoolStats::default();
        for shard in &self.shards {
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.evict_writebacks += shard.evict_writebacks.load(Ordering::Relaxed);
            s.flush_writebacks += shard.flush_writebacks.load(Ordering::Relaxed);
        }
        s
    }

    /// Shard owning `id`. A multiplicative hash spreads sequential page
    /// ids (the common allocation pattern) across shards.
    fn shard(&self, id: PageId) -> &Shard {
        let mixed = u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (mixed >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Run `f` with read access to the page.
    pub fn with_page<T>(&self, id: PageId, f: impl FnOnce(&Page) -> T) -> Result<T> {
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        // dasp::allow(L1): shard mutex -> pager mutex is the declared pool
        // hierarchy (DESIGN.md S9); the pager never calls back into the pool.
        let idx = self.ensure_resident(shard, &mut inner, id)?;
        let frame = inner.frames[idx].as_mut().expect("resident");
        frame.referenced = true;
        Ok(f(&frame.page))
    }

    /// Run `f` with write access to the page; marks it dirty.
    pub fn with_page_mut<T>(&self, id: PageId, f: impl FnOnce(&mut Page) -> T) -> Result<T> {
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        // dasp::allow(L1): shard mutex -> pager mutex, same hierarchy as
        // with_page above.
        let idx = self.ensure_resident(shard, &mut inner, id)?;
        let frame = inner.frames[idx].as_mut().expect("resident");
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write every dirty frame back to the pager.
    pub fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            let mut inner = shard.inner.lock();
            for frame in inner.frames.iter_mut().flatten() {
                if frame.dirty {
                    // dasp::allow(L1): shard mutex -> pager mutex hierarchy.
                    self.pager.write(frame.page_id, &frame.page)?;
                    frame.dirty = false;
                    shard.flush_writebacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.pager.sync()
    }

    /// Drop a page from the pool (writing it back if dirty) — used when a
    /// page is freed.
    pub fn discard(&self, id: PageId) -> Result<()> {
        let shard = self.shard(id);
        let mut inner = shard.inner.lock();
        if let Some(idx) = inner.map.remove(&id) {
            if let Some(frame) = inner.frames[idx].take() {
                if frame.dirty {
                    // dasp::allow(L1): shard mutex -> pager mutex hierarchy.
                    self.pager.write(frame.page_id, &frame.page)?;
                    shard.flush_writebacks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    fn ensure_resident(&self, shard: &Shard, inner: &mut ShardInner, id: PageId) -> Result<usize> {
        if let Some(&idx) = inner.map.get(&id) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(idx);
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        let page = self.pager.read(id)?;
        let idx = Self::find_victim(inner);
        if let Some(old) = inner.frames[idx].take() {
            inner.map.remove(&old.page_id);
            if old.dirty {
                shard.evict_writebacks.fetch_add(1, Ordering::Relaxed);
                self.pager.write(old.page_id, &old.page)?;
            }
        }
        inner.frames[idx] = Some(Frame {
            page_id: id,
            page,
            dirty: false,
            referenced: true,
        });
        inner.map.insert(id, idx);
        Ok(idx)
    }

    fn find_victim(inner: &mut ShardInner) -> usize {
        // Empty frame first.
        if let Some(idx) = inner.frames.iter().position(|f| f.is_none()) {
            return idx;
        }
        // Clock sweep: clear reference bits until an unreferenced frame.
        loop {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % inner.frames.len();
            let frame = inner.frames[idx].as_mut().expect("full pool");
            if frame.referenced {
                frame.referenced = false;
            } else {
                return idx;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn pool(capacity: usize, pages: u32) -> BufferPool {
        let pager = Pager::in_memory();
        for _ in 0..pages {
            pager.allocate(PageType::Heap).unwrap();
        }
        BufferPool::new(pager, capacity)
    }

    fn sharded_pool(capacity: usize, shards: usize, pages: u32) -> BufferPool {
        let pager = Pager::in_memory();
        for _ in 0..pages {
            pager.allocate(PageType::Heap).unwrap();
        }
        BufferPool::with_shards(pager, capacity, shards)
    }

    #[test]
    fn hit_after_first_access() {
        let pool = pool(4, 2);
        pool.with_page(0, |_| ()).unwrap();
        pool.with_page(0, |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn small_pools_collapse_to_one_shard() {
        // Below MIN_FRAMES_PER_SHARD the old single-lock eviction
        // behaviour must be preserved exactly.
        assert_eq!(pool(4, 0).shard_count(), 1);
        assert_eq!(pool(MIN_FRAMES_PER_SHARD, 0).shard_count(), 1);
        assert_eq!(pool(4 * MIN_FRAMES_PER_SHARD, 0).shard_count(), 4);
        assert_eq!(
            pool(100 * MIN_FRAMES_PER_SHARD, 0).shard_count(),
            MAX_SHARDS
        );
    }

    #[test]
    fn mutations_visible_through_pool_and_after_flush() {
        let pool = pool(2, 1);
        pool.with_page_mut(0, |p| {
            p.insert(b"cached").unwrap();
        })
        .unwrap();
        // Visible via the pool without a flush.
        let seen = pool
            .with_page(0, |p| p.get(0).unwrap().map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(seen, Some(b"cached".to_vec()));
        // Not necessarily on the pager yet; after flush it must be.
        pool.flush().unwrap();
        let direct = pool.pager().read(0).unwrap();
        assert_eq!(direct.get(0).unwrap(), Some(&b"cached"[..]));
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = pool(2, 5);
        pool.with_page_mut(0, |p| {
            p.insert(b"zero").unwrap();
        })
        .unwrap();
        // Touch enough other pages to force eviction of page 0.
        for id in 1..5 {
            pool.with_page(id, |_| ()).unwrap();
        }
        assert!(pool.stats().evict_writebacks >= 1);
        let direct = pool.pager().read(0).unwrap();
        assert_eq!(direct.get(0).unwrap(), Some(&b"zero"[..]));
        // Re-reading through the pool still sees it.
        let seen = pool
            .with_page(0, |p| p.get(0).unwrap().map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(seen, Some(b"zero".to_vec()));
    }

    #[test]
    fn working_set_within_capacity_never_re_misses() {
        let pool = pool(4, 4);
        for round in 0..10 {
            for id in 0..4 {
                pool.with_page(id, |_| ()).unwrap();
            }
            let s = pool.stats();
            assert_eq!(s.misses, 4, "round {round}");
        }
        assert_eq!(pool.stats().hits, 36);
    }

    #[test]
    fn sharded_pool_serves_all_pages_and_counts_exactly() {
        // Working set far below capacity: every page misses once, then
        // always hits, regardless of which shard it hashed to.
        let pages = 32u32;
        let pool = sharded_pool(256, 8, pages);
        assert_eq!(pool.shard_count(), 8);
        for round in 0..5 {
            for id in 0..pages {
                pool.with_page(id, |_| ()).unwrap();
            }
            assert_eq!(pool.stats().misses, u64::from(pages), "round {round}");
        }
        assert_eq!(pool.stats().hits, u64::from(pages) * 4);
    }

    #[test]
    fn sharded_pool_concurrent_readers_see_consistent_pages() {
        let pages = 64u32;
        let pager = Pager::in_memory();
        for i in 0..pages {
            let id = pager.allocate(PageType::Heap).unwrap();
            pager
                .write(id, &{
                    let mut p = Page::new(PageType::Heap);
                    p.insert(format!("page-{i}").as_bytes()).unwrap();
                    p
                })
                .unwrap();
        }
        let pool = BufferPool::with_shards(pager, 128, 8);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let pool = &pool;
                s.spawn(move || {
                    for round in 0..20u32 {
                        for i in 0..pages {
                            // Stagger access order per thread and round.
                            let id = (i.wrapping_mul(t + 1).wrapping_add(round)) % pages;
                            let got = pool
                                .with_page(id, |p| p.get(0).unwrap().map(|r| r.to_vec()))
                                .unwrap();
                            assert_eq!(got, Some(format!("page-{id}").into_bytes()));
                        }
                    }
                });
            }
        });
        let s = pool.stats();
        // Working set fits: every page misses exactly once in total.
        assert_eq!(s.misses, u64::from(pages));
        assert_eq!(s.hits + s.misses, u64::from(pages) * 20 * 4);
    }

    #[test]
    fn flush_writebacks_are_counted_separately_from_eviction() {
        let pool = pool(8, 4);
        for id in 0..3 {
            pool.with_page_mut(id, |p| {
                p.insert(b"dirty").unwrap();
            })
            .unwrap();
        }
        assert_eq!(pool.stats().flush_writebacks, 0);
        pool.flush().unwrap();
        let s = pool.stats();
        // A checkpoint flush writes every dirty frame back, and the
        // counter must say so — eviction writebacks stay untouched.
        assert_eq!(s.flush_writebacks, 3);
        assert_eq!(s.evict_writebacks, 0);
        // Clean frames are not re-counted by a second flush.
        pool.flush().unwrap();
        assert_eq!(pool.stats().flush_writebacks, 3);
        // A dirty discard counts as a flush writeback too.
        pool.with_page_mut(3, |p| {
            p.insert(b"bye").unwrap();
        })
        .unwrap();
        pool.discard(3).unwrap();
        assert_eq!(pool.stats().flush_writebacks, 4);
    }

    #[test]
    fn discard_drops_and_writes_back() {
        let pool = pool(2, 2);
        pool.with_page_mut(1, |p| {
            p.insert(b"bye").unwrap();
        })
        .unwrap();
        pool.discard(1).unwrap();
        assert_eq!(
            pool.pager().read(1).unwrap().get(0).unwrap(),
            Some(&b"bye"[..])
        );
        // Next access is a miss again.
        let before = pool.stats().misses;
        pool.with_page(1, |_| ()).unwrap();
        assert_eq!(pool.stats().misses, before + 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        let pager = Pager::in_memory();
        BufferPool::new(pager, 0);
    }

    #[test]
    #[should_panic(expected = "at least one frame per shard")]
    fn more_shards_than_frames_rejected() {
        let pager = Pager::in_memory();
        BufferPool::with_shards(pager, 2, 3);
    }
}
