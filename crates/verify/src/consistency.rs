//! Cross-subset share consistency and faulty-provider identification.
//!
//! With n > k shares of the same value, every k-subset of *honest* shares
//! reconstructs the same secret; a corrupted share contaminates exactly
//! the subsets containing it. Majority voting over subsets therefore both
//! recovers the value and pinpoints the liars — the secret-sharing
//! analogue of the paper's "verify that data has been corrupted" demand.
//!
//! Complexity is C(n, k) reconstructions; deployments here have n ≤ 8, so
//! this is at most 70 cheap interpolations.

use crate::VerifyError;
use dasp_field::Fp;
use dasp_sss::{FieldShare, FieldSharing, OpSharing};
use std::collections::HashMap;

/// Result of a majority reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityOutcome<T> {
    /// The value agreed by the majority of k-subsets.
    pub value: T,
    /// Providers whose shares disagree with the majority value.
    pub faulty: Vec<usize>,
    /// How many subsets voted for the winning value.
    pub votes: usize,
    /// Total subsets examined.
    pub subsets: usize,
}

fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Find the rightmost position that can still advance.
        let mut i = k;
        while i > 0 && idx[i - 1] == i - 1 + n - k {
            i -= 1;
        }
        if i == 0 {
            return out;
        }
        idx[i - 1] += 1;
        for j in i..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Plurality winner among subset votes. A corrupted share scatters its
/// subsets across *distinct* wrong values (two degree-(k−1) polynomials
/// agree on at most k−1 points), so the honest value wins the plurality
/// with a unique maximum whenever honest shares outnumber the corrupt
/// ones. A tie for the maximum is reported as [`VerifyError::NoMajority`].
/// Guaranteed identification against *crafted* (not just random) shares
/// needs n ≥ k + 2f, the Reed–Solomon bound.
fn plurality<T: Copy + Eq + std::hash::Hash>(
    votes: &HashMap<T, usize>,
) -> Result<(T, usize), VerifyError> {
    let (&winner, &won) = votes
        .iter()
        .max_by_key(|(_, &c)| c)
        .ok_or(VerifyError::NoMajority)?;
    if votes.values().filter(|&&c| c == won).count() > 1 {
        return Err(VerifyError::NoMajority);
    }
    Ok((winner, won))
}

/// Majority-reconstruct a field-mode secret from `shares` (all claiming to
/// be shares of the same value). Needs at least k+1 shares to detect
/// anything; identifies faulty providers whenever the honest value wins
/// the subset plurality (unique-maximum vote; ties are rejected).
pub fn majority_reconstruct_field(
    sharing: &FieldSharing,
    shares: &[FieldShare],
) -> Result<MajorityOutcome<Fp>, VerifyError> {
    let k = sharing.k();
    if shares.len() < k {
        return Err(VerifyError::NotEnoughShares {
            needed: k,
            got: shares.len(),
        });
    }
    let subsets = k_subsets(shares.len(), k);
    let mut votes: HashMap<u64, usize> = HashMap::new();
    let mut subset_values = Vec::with_capacity(subsets.len());
    for subset in &subsets {
        let picked: Vec<FieldShare> = subset.iter().map(|&i| shares[i]).collect();
        match sharing.reconstruct(&picked) {
            Ok(v) => {
                *votes.entry(v.to_u64()).or_insert(0) += 1;
                subset_values.push(Some(v));
            }
            Err(_) => subset_values.push(None),
        }
    }
    let (winner, won) = plurality(&votes)?;
    let winner = Fp::from_u64(winner);
    // A provider is faulty iff every subset containing it disagrees.
    let mut faulty = Vec::new();
    for (pos, share) in shares.iter().enumerate() {
        let consistent = subsets
            .iter()
            .zip(&subset_values)
            .any(|(subset, val)| subset.contains(&pos) && *val == Some(winner));
        if !consistent {
            faulty.push(share.provider);
        }
    }
    Ok(MajorityOutcome {
        value: winner,
        faulty,
        votes: won,
        subsets: subsets.len(),
    })
}

/// Majority-reconstruct an order-preserving share set (provider index,
/// share value). Same voting scheme, over exact rational interpolation.
pub fn majority_reconstruct_op(
    sharing: &OpSharing,
    shares: &[(usize, i128)],
) -> Result<MajorityOutcome<i128>, VerifyError> {
    let k = sharing.params().k();
    if shares.len() < k {
        return Err(VerifyError::NotEnoughShares {
            needed: k,
            got: shares.len(),
        });
    }
    let subsets = k_subsets(shares.len(), k);
    let mut votes: HashMap<i128, usize> = HashMap::new();
    let mut subset_values = Vec::with_capacity(subsets.len());
    for subset in &subsets {
        let picked: Vec<(usize, i128)> = subset.iter().map(|&i| shares[i]).collect();
        let value = match sharing.reconstruct_interpolate(&picked) {
            Ok(Some(v)) => Some(v),
            _ => None, // non-integer constant term = corrupt subset
        };
        if let Some(v) = value {
            *votes.entry(v).or_insert(0) += 1;
        }
        subset_values.push(value);
    }
    let (winner, won) = plurality(&votes)?;
    let mut faulty = Vec::new();
    for (pos, &(provider, _)) in shares.iter().enumerate() {
        let consistent = subsets
            .iter()
            .zip(&subset_values)
            .any(|(subset, val)| subset.contains(&pos) && *val == Some(winner));
        if !consistent {
            faulty.push(provider);
        }
    }
    Ok(MajorityOutcome {
        value: winner,
        faulty,
        votes: won,
        subsets: subsets.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dasp_sss::{DomainKey, OpssParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k_subsets_counts() {
        assert_eq!(k_subsets(4, 2).len(), 6);
        assert_eq!(k_subsets(5, 3).len(), 10);
        assert_eq!(k_subsets(3, 3).len(), 1);
        assert_eq!(k_subsets(6, 1).len(), 6);
    }

    fn field_setup() -> (FieldSharing, Vec<FieldShare>, StdRng) {
        let mut rng = StdRng::seed_from_u64(21);
        let sharing = FieldSharing::generate(2, 5, &mut rng).unwrap();
        let shares = sharing.split_random(Fp::from_u64(777_000), &mut rng);
        (sharing, shares, rng)
    }

    #[test]
    fn all_honest_field() {
        let (sharing, shares, _) = field_setup();
        let out = majority_reconstruct_field(&sharing, &shares).unwrap();
        assert_eq!(out.value, Fp::from_u64(777_000));
        assert!(out.faulty.is_empty());
        assert_eq!(out.votes, out.subsets);
    }

    #[test]
    fn one_corrupt_field_share_identified() {
        let (sharing, mut shares, _) = field_setup();
        shares[2].y += Fp::ONE;
        let out = majority_reconstruct_field(&sharing, &shares).unwrap();
        assert_eq!(out.value, Fp::from_u64(777_000));
        assert_eq!(out.faulty, vec![shares[2].provider]);
        // 4 honest of 5: C(4,2)=6 clean subsets of C(5,2)=10.
        assert_eq!((out.votes, out.subsets), (6, 10));
    }

    #[test]
    fn two_corrupt_of_five_identified_by_plurality() {
        let (sharing, mut shares, _) = field_setup();
        shares[0].y += Fp::ONE;
        shares[4].y += Fp::from_u64(7);
        // 3 honest → C(3,2)=3 votes for the true value; every contaminated
        // subset lands on a distinct wrong value (1 vote each), so the
        // plurality still picks the truth and names both liars.
        let out = majority_reconstruct_field(&sharing, &shares).unwrap();
        assert_eq!(out.value, Fp::from_u64(777_000));
        let mut faulty = out.faulty.clone();
        faulty.sort_unstable();
        let mut expect = vec![shares[0].provider, shares[4].provider];
        expect.sort_unstable();
        assert_eq!(faulty, expect);
        assert_eq!((out.votes, out.subsets), (3, 10));
    }

    #[test]
    fn equal_corruption_split_is_rejected() {
        // 1 honest + 1 corrupt with k=2, n=2 → a single subset votes for a
        // wrong-but-unique value... make a genuine tie instead: two shares
        // of DIFFERENT secrets, two subsets impossible (C(2,2)=1). Use 4
        // shares where 2+2 split ties.
        let mut rng = StdRng::seed_from_u64(77);
        let sharing = FieldSharing::generate(2, 4, &mut rng).unwrap();
        let a = sharing.split_random(Fp::from_u64(111), &mut rng);
        let b = sharing.split_random(Fp::from_u64(222), &mut rng);
        // Providers 0,1 hold shares of 111; providers 2,3 hold shares of 222.
        let mixed = vec![a[0], a[1], b[2], b[3]];
        // Votes: {0,1}→111 (1 vote), {2,3}→222 (1 vote), cross subsets →
        // scattered values. Tie at the top → NoMajority.
        assert_eq!(
            majority_reconstruct_field(&sharing, &mixed),
            Err(VerifyError::NoMajority)
        );
    }

    #[test]
    fn too_few_shares_field() {
        let (sharing, shares, _) = field_setup();
        assert!(matches!(
            majority_reconstruct_field(&sharing, &shares[..1]),
            Err(VerifyError::NotEnoughShares { .. })
        ));
    }

    fn op_setup() -> (OpSharing, Vec<(usize, i128)>) {
        let params = OpssParams::new(1, 12, 1 << 20, vec![2, 4, 1, 7, 11]).unwrap();
        let sharing = OpSharing::new(params, DomainKey::derive(b"m", "salary"));
        let shares: Vec<(usize, i128)> = sharing
            .share(54_321)
            .unwrap()
            .into_iter()
            .enumerate()
            .collect();
        (sharing, shares)
    }

    #[test]
    fn all_honest_op() {
        let (sharing, shares) = op_setup();
        let out = majority_reconstruct_op(&sharing, &shares).unwrap();
        assert_eq!(out.value, 54_321);
        assert!(out.faulty.is_empty());
    }

    #[test]
    fn corrupt_op_share_identified() {
        let (sharing, mut shares) = op_setup();
        shares[1].1 += 1_000_000;
        let out = majority_reconstruct_op(&sharing, &shares).unwrap();
        assert_eq!(out.value, 54_321);
        assert_eq!(out.faulty, vec![1]);
    }

    #[test]
    fn corrupt_op_share_large_negative() {
        let (sharing, mut shares) = op_setup();
        shares[3].1 = -shares[3].1;
        let out = majority_reconstruct_op(&sharing, &shares).unwrap();
        assert_eq!(out.value, 54_321);
        assert_eq!(out.faulty, vec![3]);
    }

    #[test]
    fn op_not_enough_shares() {
        let (sharing, shares) = op_setup();
        assert!(matches!(
            majority_reconstruct_op(&sharing, &shares[..1]),
            Err(VerifyError::NotEnoughShares { .. })
        ));
    }
}
