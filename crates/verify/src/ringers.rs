//! Ringer-based query execution assurance (Sion, VLDB'05 — the paper's
//! ref \[19\]).
//!
//! The client plants synthetic rows ("ringers") among the outsourced data
//! at known positions in value space. Because shares are indistinguishable
//! from real data, a provider cannot tell ringers apart; a provider that
//! skips work (returns partial results, or fabricates them without
//! touching the data) will, with high probability, omit a ringer that the
//! client knows must appear.

use crate::VerifyError;
use rand::Rng;
use std::collections::BTreeMap;

/// The client's private registry of planted ringer rows for one table.
#[derive(Debug, Clone, Default)]
pub struct RingerSet {
    /// value → row id of the planted ringer.
    planted: BTreeMap<u64, u64>,
}

impl RingerSet {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plant `count` ringers with values drawn uniformly from
    /// `[0, domain)` and row ids from `id_base` upward. Returns the
    /// `(row id, value)` pairs the caller must insert as ordinary rows.
    pub fn plant<R: Rng + ?Sized>(
        &mut self,
        count: usize,
        domain: u64,
        id_base: u64,
        rng: &mut R,
    ) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(count);
        let mut next_id = id_base;
        while out.len() < count {
            let v = rng.gen_range(0..domain);
            if let std::collections::btree_map::Entry::Vacant(e) = self.planted.entry(v) {
                e.insert(next_id);
                out.push((next_id, v));
                next_id += 1;
            }
        }
        out
    }

    /// Number of planted ringers.
    pub fn len(&self) -> usize {
        self.planted.len()
    }

    /// True iff nothing is planted.
    pub fn is_empty(&self) -> bool {
        self.planted.is_empty()
    }

    /// Row ids of ringers whose value lies in `[lo, hi]` — these MUST
    /// appear in any honest answer to that range query.
    pub fn expected_in_range(&self, lo: u64, hi: u64) -> Vec<u64> {
        self.planted.range(lo..=hi).map(|(_, &id)| id).collect()
    }

    /// Is this row id a ringer (to strip from results before the app sees
    /// them)?
    pub fn is_ringer(&self, row_id: u64) -> bool {
        self.planted.values().any(|&id| id == row_id)
    }

    /// Check a range-query result: every expected ringer must be present.
    pub fn check_range_result(
        &self,
        lo: u64,
        hi: u64,
        returned_ids: &[u64],
    ) -> Result<(), VerifyError> {
        let missing: Vec<u64> = self
            .expected_in_range(lo, hi)
            .into_iter()
            .filter(|id| !returned_ids.contains(id))
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(VerifyError::MissingRingers(missing))
        }
    }

    /// Detection probability for a provider that silently drops each
    /// matching row independently with probability `drop_p`, against a
    /// range containing `ringers_in_range` ringers: 1 − (1 − p)^r.
    pub fn detection_probability(ringers_in_range: usize, drop_p: f64) -> f64 {
        1.0 - (1.0 - drop_p).powi(ringers_in_range as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planted_set() -> (RingerSet, Vec<(u64, u64)>) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut set = RingerSet::new();
        let rows = set.plant(20, 10_000, 1_000_000, &mut rng);
        (set, rows)
    }

    #[test]
    fn plant_returns_unique_ids_and_values() {
        let (set, rows) = planted_set();
        assert_eq!(set.len(), 20);
        assert_eq!(rows.len(), 20);
        let mut values: Vec<u64> = rows.iter().map(|&(_, v)| v).collect();
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 20, "values unique");
        for (id, _) in &rows {
            assert!(set.is_ringer(*id));
        }
        assert!(!set.is_ringer(5));
    }

    #[test]
    fn expected_in_range_matches_plants() {
        let (set, rows) = planted_set();
        let expected = set.expected_in_range(0, 9_999);
        assert_eq!(expected.len(), 20, "full domain contains all");
        let in_half: Vec<u64> = rows
            .iter()
            .filter(|&&(_, v)| v <= 5_000)
            .map(|&(id, _)| id)
            .collect();
        let mut got = set.expected_in_range(0, 5_000);
        got.sort_unstable();
        let mut want = in_half;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn honest_result_passes() {
        let (set, rows) = planted_set();
        let all_ids: Vec<u64> = rows.iter().map(|&(id, _)| id).collect();
        set.check_range_result(0, 9_999, &all_ids).unwrap();
    }

    #[test]
    fn lazy_provider_caught() {
        let (set, rows) = planted_set();
        let mut ids: Vec<u64> = rows.iter().map(|&(id, _)| id).collect();
        let dropped = ids.pop().unwrap();
        let err = set.check_range_result(0, 9_999, &ids).unwrap_err();
        assert_eq!(err, VerifyError::MissingRingers(vec![dropped]));
    }

    #[test]
    fn empty_range_always_passes() {
        let (set, _) = planted_set();
        // A range with no ringers imposes no constraint.
        let lo = 10_001;
        set.check_range_result(lo, lo + 5, &[]).unwrap();
    }

    #[test]
    fn detection_probability_grows_with_ringers() {
        let p1 = RingerSet::detection_probability(1, 0.5);
        let p10 = RingerSet::detection_probability(10, 0.5);
        assert!((p1 - 0.5).abs() < 1e-9);
        assert!(p10 > 0.999);
        assert_eq!(RingerSet::detection_probability(0, 0.9), 0.0);
    }
}
