//! Merkle-authenticated share tables with range-completeness proofs.
//!
//! At outsourcing time the client sorts a table's rows by an
//! order-preserving share column, builds a Merkle tree over
//! `hash(row id ‖ shares)` leaves, and keeps only the root. A (possibly
//! dishonest) provider answering a range query must return:
//!
//! * the matching rows, each with a membership proof, **and**
//! * the two *boundary* rows just outside the range (or proofs that the
//!   result touches the table's ends),
//!
//! so the client can check the result is a contiguous leaf run — any
//! withheld row would break contiguity. This is the classic
//! authenticated-range-query construction of the paper's refs \[17\]–\[21\],
//! instantiated over share space.

use crate::VerifyError;
use dasp_crypto::merkle::{Digest, MerkleProof, MerkleTree};
use dasp_crypto::sha256::Sha256;

/// A row as committed: id plus its shares at one provider.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedRow {
    /// Row id.
    pub id: u64,
    /// Share tuple.
    pub shares: Vec<i128>,
}

fn row_bytes(row: &CommittedRow) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + row.shares.len() * 16);
    out.extend_from_slice(&row.id.to_le_bytes());
    for s in &row.shares {
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

fn leaf_payload(position: usize, row: &CommittedRow) -> Vec<u8> {
    // Bind the sort position into the leaf so reordering is detectable.
    let mut h = Sha256::new();
    h.update(&(position as u64).to_le_bytes());
    h.update(&row_bytes(row));
    h.finalize().to_vec()
}

/// The provider-side (and client-rebuildable) authenticated table:
/// rows sorted by one share column.
#[derive(Debug, Clone)]
pub struct AuthenticatedTable {
    rows: Vec<CommittedRow>,
    sort_col: usize,
    tree: MerkleTree,
}

/// A verifiable answer to a share-range query.
#[derive(Debug, Clone)]
pub struct RangeProof {
    /// Index of the first returned leaf in the sorted order.
    pub start: usize,
    /// The matching rows, in sorted order.
    pub rows: Vec<CommittedRow>,
    /// Membership proofs, one per returned row.
    pub proofs: Vec<MerkleProof>,
    /// Row just below the range with its proof (`None` = range starts at
    /// the first leaf).
    pub left_boundary: Option<(CommittedRow, MerkleProof)>,
    /// Row just above the range with its proof (`None` = range ends at
    /// the last leaf).
    pub right_boundary: Option<(CommittedRow, MerkleProof)>,
}

impl AuthenticatedTable {
    /// Commit to `rows`, sorted by `sort_col`'s share.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or `sort_col` is out of range for any row.
    pub fn build(mut rows: Vec<CommittedRow>, sort_col: usize) -> Self {
        assert!(!rows.is_empty(), "cannot commit to an empty table");
        rows.sort_by_key(|r| (r.shares[sort_col], r.id));
        let leaves: Vec<Vec<u8>> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| leaf_payload(i, r))
            .collect();
        let tree = MerkleTree::build(&leaves);
        AuthenticatedTable {
            rows,
            sort_col,
            tree,
        }
    }

    /// The root digest the client retains.
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// Number of committed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Always false (empty tables are unrepresentable).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Answer `lo ≤ share(sort_col) ≤ hi` with a completeness proof.
    pub fn prove_range(&self, lo: i128, hi: i128) -> RangeProof {
        let start = self.rows.partition_point(|r| r.shares[self.sort_col] < lo);
        let end = self.rows.partition_point(|r| r.shares[self.sort_col] <= hi);
        let rows = self.rows[start..end].to_vec();
        let proofs = (start..end).map(|i| self.tree.prove(i)).collect();
        let left_boundary = start
            .checked_sub(1)
            .map(|i| (self.rows[i].clone(), self.tree.prove(i)));
        let right_boundary =
            (end < self.rows.len()).then(|| (self.rows[end].clone(), self.tree.prove(end)));
        RangeProof {
            start,
            rows,
            proofs,
            left_boundary,
            right_boundary,
        }
    }
}

impl RangeProof {
    /// Verify against the client's `root` for the query `[lo, hi]` on the
    /// committed sort column. `total_rows` is the committed table size
    /// (the client knows it — it outsourced the data).
    pub fn verify(
        &self,
        root: &Digest,
        lo: i128,
        hi: i128,
        sort_col: usize,
        total_rows: usize,
    ) -> Result<(), VerifyError> {
        if self.rows.len() != self.proofs.len() {
            return Err(VerifyError::BadProof);
        }
        // 1. Each row is a committed leaf at the claimed consecutive index.
        for (offset, (row, proof)) in self.rows.iter().zip(&self.proofs).enumerate() {
            let index = self.start + offset;
            if proof.index != index {
                return Err(VerifyError::BadProof);
            }
            let payload = leaf_payload(index, row);
            if !MerkleTree::verify(root, &payload, proof) {
                return Err(VerifyError::BadProof);
            }
            // 2. Every returned row actually matches the range.
            let share = row.shares.get(sort_col).ok_or(VerifyError::BadProof)?;
            if *share < lo || *share > hi {
                return Err(VerifyError::BadProof);
            }
        }
        // 3. Left boundary: either the result starts at leaf 0 or the
        //    previous leaf is proven to be below the range.
        match (&self.left_boundary, self.start) {
            (None, 0) => {}
            (Some((row, proof)), start) if start > 0 => {
                if proof.index != start - 1 {
                    return Err(VerifyError::BadProof);
                }
                let payload = leaf_payload(start - 1, row);
                if !MerkleTree::verify(root, &payload, proof) {
                    return Err(VerifyError::BadProof);
                }
                let share = row.shares.get(sort_col).ok_or(VerifyError::BadProof)?;
                if *share >= lo {
                    return Err(VerifyError::IncompleteRange);
                }
            }
            _ => return Err(VerifyError::IncompleteRange),
        }
        // 4. Right boundary: either the result ends at the last leaf or
        //    the next leaf is proven to be above the range.
        let end = self.start + self.rows.len();
        match (&self.right_boundary, end == total_rows) {
            (None, true) => {}
            (Some((row, proof)), false) => {
                if proof.index != end {
                    return Err(VerifyError::BadProof);
                }
                let payload = leaf_payload(end, row);
                if !MerkleTree::verify(root, &payload, proof) {
                    return Err(VerifyError::BadProof);
                }
                let share = row.shares.get(sort_col).ok_or(VerifyError::BadProof)?;
                if *share <= hi {
                    return Err(VerifyError::IncompleteRange);
                }
            }
            _ => return Err(VerifyError::IncompleteRange),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AuthenticatedTable {
        let rows: Vec<CommittedRow> = [(1u64, 30i128), (2, 210), (3, 42), (4, 64), (5, 88)]
            .iter()
            .map(|&(id, s)| CommittedRow {
                id,
                shares: vec![s],
            })
            .collect();
        AuthenticatedTable::build(rows, 0)
    }

    #[test]
    fn honest_range_verifies() {
        let t = table();
        let proof = t.prove_range(40, 90);
        assert_eq!(
            proof.rows.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        proof.verify(&t.root(), 40, 90, 0, t.len()).unwrap();
    }

    #[test]
    fn full_and_empty_ranges_verify() {
        let t = table();
        let all = t.prove_range(i128::MIN, i128::MAX);
        assert_eq!(all.rows.len(), 5);
        all.verify(&t.root(), i128::MIN, i128::MAX, 0, 5).unwrap();

        let none = t.prove_range(1000, 2000);
        assert!(none.rows.is_empty());
        none.verify(&t.root(), 1000, 2000, 0, 5).unwrap();

        let below = t.prove_range(-10, -5);
        assert!(below.rows.is_empty());
        below.verify(&t.root(), -10, -5, 0, 5).unwrap();
    }

    #[test]
    fn withheld_row_detected() {
        let t = table();
        let mut proof = t.prove_range(40, 90);
        // Provider drops the last matching row and its proof.
        proof.rows.pop();
        proof.proofs.pop();
        // It must also forge the right boundary; reuse the real row 88's
        // neighbour (share 210) — contiguity breaks either way.
        let err = proof.verify(&t.root(), 40, 90, 0, t.len()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::BadProof | VerifyError::IncompleteRange
        ));
    }

    #[test]
    fn withheld_first_row_detected() {
        let t = table();
        let mut proof = t.prove_range(40, 90);
        proof.rows.remove(0);
        proof.proofs.remove(0);
        proof.start += 1;
        let err = proof.verify(&t.root(), 40, 90, 0, t.len()).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::BadProof | VerifyError::IncompleteRange
        ));
    }

    #[test]
    fn tampered_row_detected() {
        let t = table();
        let mut proof = t.prove_range(40, 90);
        proof.rows[0].shares[0] = 50; // forged share
        assert_eq!(
            proof.verify(&t.root(), 40, 90, 0, t.len()),
            Err(VerifyError::BadProof)
        );
    }

    #[test]
    fn extra_out_of_range_row_detected() {
        let t = table();
        let mut proof = t.prove_range(40, 90);
        // Provider pads with a legitimate but out-of-range row (id 2, 210).
        let idx = 4; // position of share 210 in sorted order
        proof.rows.push(CommittedRow {
            id: 2,
            shares: vec![210],
        });
        proof.proofs.push(
            AuthenticatedTable::build(
                (1..=5)
                    .map(|id| CommittedRow {
                        id,
                        shares: vec![[30i128, 210, 42, 64, 88][(id - 1) as usize]],
                    })
                    .collect(),
                0,
            )
            .tree
            .prove(idx),
        );
        assert!(proof.verify(&t.root(), 40, 90, 0, t.len()).is_err());
    }

    #[test]
    fn missing_boundary_rejected() {
        let t = table();
        let mut proof = t.prove_range(40, 90);
        proof.left_boundary = None; // claim the range starts at leaf 0
        assert_eq!(
            proof.verify(&t.root(), 40, 90, 0, t.len()),
            Err(VerifyError::IncompleteRange)
        );
    }

    #[test]
    fn wrong_root_rejected() {
        let t = table();
        let proof = t.prove_range(40, 90);
        let mut bad_root = t.root();
        bad_root[0] ^= 1;
        assert_eq!(
            proof.verify(&bad_root, 40, 90, 0, t.len()),
            Err(VerifyError::BadProof)
        );
    }

    #[test]
    fn single_row_table() {
        let t = AuthenticatedTable::build(
            vec![CommittedRow {
                id: 9,
                shares: vec![5],
            }],
            0,
        );
        let proof = t.prove_range(0, 10);
        assert_eq!(proof.rows.len(), 1);
        proof.verify(&t.root(), 0, 10, 0, 1).unwrap();
    }
}
