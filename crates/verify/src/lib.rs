//! Trust mechanisms for outsourced data (paper §I issue 3, refs \[17\]–\[21\]).
//!
//! The paper names "providing a trust mechanism to ensure both DBSPs and
//! clients behave honestly" as the gating problem for data outsourcing.
//! This crate implements the three complementary mechanisms the
//! literature it cites proposes, adapted to the secret-sharing setting:
//!
//! * [`consistency`] — *correctness*: with more than k shares in hand,
//!   reconstruct via majority vote over k-subsets and identify which
//!   provider returned a corrupted share. Secret sharing gives this
//!   almost for free — a key advantage over single-server encryption.
//! * [`merkle_table`] — *authenticity and range completeness*: the client
//!   commits to each provider's share table with a Merkle tree over
//!   share-sorted rows; results carry membership proofs, and range
//!   results carry boundary proofs that no matching row was withheld.
//! * [`ringers`] — *execution assurance* (Sion, VLDB'05): the client
//!   plants synthetic rows whose predicates it knows; a lazy provider
//!   that skips work fails to return the expected ringers.

pub mod consistency;
pub mod merkle_table;
pub mod ringers;

pub use consistency::{majority_reconstruct_field, majority_reconstruct_op, MajorityOutcome};
pub use merkle_table::{AuthenticatedTable, RangeProof};
pub use ringers::RingerSet;

/// Verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// No value was consistent with a majority of shares.
    NoMajority,
    /// Fewer shares than the threshold k.
    NotEnoughShares { needed: usize, got: usize },
    /// A Merkle proof failed.
    BadProof,
    /// A range result omitted rows the commitment proves exist.
    IncompleteRange,
    /// Expected ringer rows were missing from a result.
    MissingRingers(Vec<u64>),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::NoMajority => write!(f, "no majority among share subsets"),
            VerifyError::NotEnoughShares { needed, got } => {
                write!(f, "need {needed} shares, got {got}")
            }
            VerifyError::BadProof => write!(f, "merkle proof rejected"),
            VerifyError::IncompleteRange => write!(f, "range result incomplete"),
            VerifyError::MissingRingers(ids) => write!(f, "missing ringers {ids:?}"),
        }
    }
}

impl std::error::Error for VerifyError {}
