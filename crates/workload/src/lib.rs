//! Deterministic workload generators for the experiments.
//!
//! Every experiment in EXPERIMENTS.md names its dataset; this crate
//! produces them reproducibly (seeded) and without depending on the rest
//! of the stack, so benches can generate data once and feed any system
//! under test:
//!
//! * [`employees`] — the paper's running Employees(name, salary, …)
//!   table with uniform or Zipf salary distributions.
//! * [`documents`] — the SIGMOD'03 intersection workload the paper quotes
//!   ("10 documents at one site and 100 at another, each with 1000
//!   words").
//! * [`medical`] — the "1 million medical records" configuration.
//! * [`places`] — friends + restaurants for the §V-D mash-up.
//! * [`queries`] — exact-match keys and ranges with target selectivity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Zipf(θ) sampler over ranks 1..=n (precomputed CDF, O(log n) sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` ranks with exponent `theta` (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(theta);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n` (0 is the hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The Employees workload.
pub mod employees {
    use super::*;

    /// One plaintext employee row.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Employee {
        /// Uppercase name, ≤ 8 chars.
        pub name: String,
        /// Salary in `[0, salary_domain)`.
        pub salary: u64,
        /// A random identifier (the "sensitive, never-filtered" column).
        pub ssn: u64,
    }

    /// Salary distribution shape.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum SalaryDist {
        /// Uniform over the domain.
        Uniform,
        /// Zipf-distributed over 1000 distinct salary levels.
        Zipf(f64),
    }

    const FIRST: [&str; 16] = [
        "JOHN", "MARY", "ALICE", "BOB", "CAROL", "DAVE", "ERIN", "FRANK", "GRACE", "HEIDI", "IVAN",
        "JUDY", "KARL", "LINDA", "MIKE", "NINA",
    ];

    /// Generate `n` employees, deterministically from `seed`.
    pub fn generate(n: usize, salary_domain: u64, dist: SalaryDist, seed: u64) -> Vec<Employee> {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = match dist {
            SalaryDist::Zipf(theta) => Some(Zipf::new(1000, theta)),
            SalaryDist::Uniform => None,
        };
        (0..n)
            .map(|i| {
                let name = format!(
                    "{}{}",
                    FIRST[rng.gen_range(0..FIRST.len())],
                    // Suffix letters keep names within VARCHAR(8).
                    char::from(b'A' + (i % 26) as u8)
                );
                let salary = match &zipf {
                    None => rng.gen_range(0..salary_domain),
                    Some(z) => {
                        let level = z.sample(&mut rng) as u64;
                        (level * salary_domain / 1000).min(salary_domain - 1)
                    }
                };
                Employee {
                    name,
                    salary,
                    ssn: rng.gen_range(0..1 << 30),
                }
            })
            .collect()
    }
}

/// The SIGMOD'03 document-intersection workload.
pub mod documents {
    use super::*;

    /// Generate `n_docs` documents of `words_each` words from a shared
    /// vocabulary, so cross-site overlaps exist. Words are short
    /// uppercase tokens.
    pub fn generate(n_docs: usize, words_each: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab_size = (n_docs * words_each / 2).max(100);
        (0..n_docs)
            .map(|_| {
                (0..words_each)
                    .map(|_| format!("W{}", rng.gen_range(0..vocab_size)))
                    .collect()
            })
            .collect()
    }

    /// Flatten a site's documents into its word multiset (deduplicated),
    /// as the intersection protocol consumes it.
    pub fn word_set(docs: &[Vec<String>]) -> Vec<Vec<u8>> {
        let mut words: Vec<&String> = docs.iter().flatten().collect();
        words.sort_unstable();
        words.dedup();
        words.into_iter().map(|w| w.as_bytes().to_vec()).collect()
    }
}

/// The 1M-medical-records configuration the paper quotes.
pub mod medical {
    use super::*;

    /// One synthetic medical record.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Record {
        /// Patient identifier.
        pub patient: u64,
        /// Diagnosis code in `[0, 10_000)`.
        pub code: u64,
        /// Cost in cents, `[0, 2^24)`.
        pub cost: u64,
    }

    /// Generate `n` records.
    pub fn generate(n: usize, seed: u64) -> Vec<Record> {
        let mut rng = StdRng::seed_from_u64(seed);
        let code_dist = Zipf::new(10_000, 1.1);
        (0..n)
            .map(|i| Record {
                patient: i as u64 / 4, // ~4 records per patient
                code: code_dist.sample(&mut rng) as u64,
                cost: rng.gen_range(0..1 << 24),
            })
            .collect()
    }
}

/// Friends + restaurants for the §V-D mash-up.
pub mod places {
    use super::*;

    /// Generate `n` public places as `(id, [location, category])` with
    /// locations uniform in `[0, domain)`.
    pub fn restaurants(n: usize, domain: u64, seed: u64) -> Vec<(u64, Vec<u64>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64)
            .map(|id| (id, vec![rng.gen_range(0..domain), rng.gen_range(0..8)]))
            .collect()
    }

    /// Generate `n` private friends as `(name, location)`.
    pub fn friends(n: usize, domain: u64, seed: u64) -> Vec<(String, u64)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf00d);
        (0..n)
            .map(|i| {
                (
                    format!("FRIEND{}", char::from(b'A' + (i % 26) as u8)),
                    rng.gen_range(0..domain),
                )
            })
            .collect()
    }
}

/// Query generators.
pub mod queries {
    use super::*;

    /// `count` random point-lookup keys drawn from `universe`.
    pub fn exact_keys(universe: u64, count: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| rng.gen_range(0..universe)).collect()
    }

    /// `count` ranges of width `selectivity * universe` (inclusive bounds).
    pub fn ranges(universe: u64, selectivity: f64, count: usize, seed: u64) -> Vec<(u64, u64)> {
        assert!((0.0..=1.0).contains(&selectivity));
        let mut rng = StdRng::seed_from_u64(seed);
        let width = ((universe as f64 * selectivity) as u64).max(1);
        (0..count)
            .map(|_| {
                let lo = rng.gen_range(0..universe.saturating_sub(width).max(1));
                (lo, (lo + width - 1).min(universe - 1))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_uniform_at_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let z = Zipf::new(100, 1.2);
        let mut counts = vec![0u32; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 3, "rank 0 should dominate");

        let u = Zipf::new(10, 0.0);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[u.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish, got {c}");
        }
    }

    #[test]
    fn employees_deterministic_and_in_domain() {
        let a = employees::generate(100, 1 << 20, employees::SalaryDist::Uniform, 7);
        let b = employees::generate(100, 1 << 20, employees::SalaryDist::Uniform, 7);
        assert_eq!(a, b);
        for e in &a {
            assert!(e.salary < 1 << 20);
            assert!(e.name.len() <= 8);
            assert!(e.name.chars().all(|c| c.is_ascii_uppercase()));
        }
        let c = employees::generate(100, 1 << 20, employees::SalaryDist::Uniform, 8);
        assert_ne!(a, c, "different seed, different data");
    }

    #[test]
    fn zipf_salaries_cluster() {
        let rows = employees::generate(1000, 1 << 20, employees::SalaryDist::Zipf(1.2), 9);
        let low = rows.iter().filter(|e| e.salary < 1 << 15).count();
        assert!(low > 500, "Zipf mass at low salaries, got {low}");
    }

    #[test]
    fn documents_shape_and_overlap() {
        let a = documents::generate(10, 1000, 11);
        let b = documents::generate(100, 1000, 12);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0].len(), 1000);
        let wa = documents::word_set(&a);
        let wb = documents::word_set(&b);
        let overlap = wa.iter().filter(|w| wb.contains(w)).count();
        assert!(overlap > 0, "sites must share vocabulary");
        // Dedup happened.
        let mut sorted = wa.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), wa.len());
    }

    #[test]
    fn medical_records_scale() {
        let rs = medical::generate(10_000, 13);
        assert_eq!(rs.len(), 10_000);
        assert!(rs.iter().all(|r| r.code < 10_000 && r.cost < 1 << 24));
        assert_eq!(rs[0].patient, 0);
        assert_eq!(rs[9999].patient, 2499);
    }

    #[test]
    fn ranges_have_requested_width() {
        let rs = queries::ranges(1_000_000, 0.01, 50, 14);
        for (lo, hi) in rs {
            assert!(hi >= lo);
            let width = hi - lo + 1;
            assert!((9_000..=10_000).contains(&width), "width {width}");
        }
    }

    #[test]
    fn places_generators() {
        let r = places::restaurants(50, 10_000, 15);
        assert_eq!(r.len(), 50);
        assert!(r.iter().all(|(_, v)| v[0] < 10_000 && v[1] < 8));
        let f = places::friends(3, 10_000, 15);
        assert_eq!(f.len(), 3);
        assert!(f[0].0.starts_with("FRIEND"));
    }
}
