//! Dense polynomials over GF(p), used to build Shamir sharing polynomials.

use crate::fp::Fp;
use rand::Rng;

/// A dense polynomial `c\[0\] + c\[1\] x + ... + c[d] x^d` over GF(p).
///
/// The constant term `c\[0\]` carries the secret in Shamir's scheme; the
/// remaining coefficients are uniform random field elements.
#[derive(Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<Fp>,
}

// dasp::allow(S1): sanctioned redacting impl — the coefficients (the secret
// and its blinding randomness) are never printed, only the shape.
impl std::fmt::Debug for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Poly(degree={}, coeffs=<redacted>)", self.degree())
    }
}

impl Poly {
    /// Build a polynomial from low-to-high coefficients. Trailing zero
    /// coefficients are trimmed so `degree` is meaningful.
    pub fn new(mut coeffs: Vec<Fp>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&Fp::ZERO) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(Fp::ZERO);
        }
        Poly { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly {
            coeffs: vec![Fp::ZERO],
        }
    }

    /// A random polynomial of exactly degree `degree` with the given
    /// constant term — i.e. a Shamir sharing polynomial for `secret`
    /// with threshold `degree + 1`.
    pub fn random_with_secret<R: Rng + ?Sized>(secret: Fp, degree: usize, rng: &mut R) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(secret);
        for i in 1..=degree {
            let c = if i == degree {
                // Leading coefficient must be non-zero so exactly `degree+1`
                // shares are required (a lower-degree poly would weaken the
                // threshold).
                Fp::random_nonzero(rng)
            } else {
                Fp::random(rng)
            };
            coeffs.push(c);
        }
        Poly { coeffs }
    }

    /// Evaluate at `x` by Horner's rule.
    pub fn eval(&self, x: Fp) -> Fp {
        let mut acc = Fp::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// The degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// The constant term `c\[0\]` (the secret, for sharing polynomials).
    pub fn constant_term(&self) -> Fp {
        self.coeffs[0]
    }

    /// Low-to-high coefficient slice.
    pub fn coeffs(&self) -> &[Fp] {
        &self.coeffs
    }

    /// Pointwise sum — mirrors the additive homomorphism of shares.
    pub fn add(&self, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let a = self.coeffs.get(i).copied().unwrap_or(Fp::ZERO);
            let b = other.coeffs.get(i).copied().unwrap_or(Fp::ZERO);
            out.push(a + b);
        }
        Poly::new(out)
    }

    /// Multiply by a scalar.
    pub fn scale(&self, s: Fp) -> Poly {
        Poly::new(self.coeffs.iter().map(|&c| c * s).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fp(v: u64) -> Fp {
        Fp::from_u64(v)
    }

    #[test]
    fn eval_figure1_polynomials() {
        // q10(x) = 100x + 10 from the paper's Figure 1.
        let q10 = Poly::new(vec![fp(10), fp(100)]);
        assert_eq!(q10.eval(fp(2)), fp(210));
        assert_eq!(q10.eval(fp(4)), fp(410));
        assert_eq!(q10.eval(fp(1)), fp(110));
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Poly::new(vec![fp(1), fp(2), fp(0), fp(0)]);
        assert_eq!(p.degree(), 1);
    }

    #[test]
    fn zero_poly_degree_zero() {
        assert_eq!(Poly::zero().degree(), 0);
        assert_eq!(Poly::zero().eval(fp(99)), Fp::ZERO);
    }

    #[test]
    fn random_with_secret_has_exact_degree_and_secret() {
        let mut rng = StdRng::seed_from_u64(42);
        for deg in 1..8 {
            let p = Poly::random_with_secret(fp(777), deg, &mut rng);
            assert_eq!(p.degree(), deg);
            assert_eq!(p.constant_term(), fp(777));
            assert_eq!(p.eval(Fp::ZERO), fp(777));
        }
    }

    #[test]
    fn add_is_pointwise() {
        let a = Poly::new(vec![fp(1), fp(2)]);
        let b = Poly::new(vec![fp(3), fp(4), fp(5)]);
        let c = a.add(&b);
        assert_eq!(c.coeffs(), &[fp(4), fp(6), fp(5)]);
    }

    #[test]
    fn scale_multiplies_all_coeffs() {
        let a = Poly::new(vec![fp(1), fp(2)]);
        let s = a.scale(fp(10));
        assert_eq!(s.coeffs(), &[fp(10), fp(20)]);
    }

    proptest! {
        #[test]
        fn prop_eval_add_homomorphic(
            a in proptest::collection::vec(0u64..1000, 1..6),
            b in proptest::collection::vec(0u64..1000, 1..6),
            x in 0u64..1000,
        ) {
            let pa = Poly::new(a.iter().map(|&v| fp(v)).collect());
            let pb = Poly::new(b.iter().map(|&v| fp(v)).collect());
            let x = fp(x);
            prop_assert_eq!(pa.add(&pb).eval(x), pa.eval(x) + pb.eval(x));
        }

        #[test]
        fn prop_horner_matches_naive(
            cs in proptest::collection::vec(0u64..u64::MAX, 1..8),
            x in 0u64..u64::MAX,
        ) {
            let p = Poly::new(cs.iter().map(|&v| fp(v)).collect());
            let x = fp(x);
            let mut naive = Fp::ZERO;
            let mut xp = Fp::ONE;
            for &c in p.coeffs() {
                naive += c * xp;
                xp *= x;
            }
            prop_assert_eq!(p.eval(x), naive);
        }
    }
}
