//! A redacting wrapper for client-held secret material.
//!
//! The paper's security argument (§III) assumes the evaluation points
//! `X = {x₁…xₙ}`, sharing-polynomial coefficients, and key material never
//! leave the client. [`Secret`] makes that assumption mechanical: the
//! wrapped value can only be reached through the explicit [`Secret::expose`]
//! call, and every `Debug`/`Display` rendering prints `<redacted>` — so a
//! stray log line or error message cannot leak what it wraps. The
//! `dasp-lint` S1 rule enforces that secret-bearing types route their
//! state through this wrapper (or carry a sanctioned redacting impl).

/// A value that must never be printed, logged, or serialized onto the wire.
///
/// Access is deliberately noisy: call sites read `key.expose()`, which is
/// easy to grep and easy to review. There is no `Deref` on purpose.
#[derive(Clone)]
pub struct Secret<T>(T);

impl<T> Secret<T> {
    /// Wrap a secret value.
    pub const fn new(value: T) -> Self {
        Secret(value)
    }

    /// Borrow the secret. The explicit name marks every use site.
    pub fn expose(&self) -> &T {
        &self.0
    }

    /// Mutably borrow the secret.
    pub fn expose_mut(&mut self) -> &mut T {
        &mut self.0
    }

    /// Unwrap, consuming the wrapper (e.g. for key escrow).
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> From<T> for Secret<T> {
    fn from(value: T) -> Self {
        Secret::new(value)
    }
}

// dasp::allow(S1): sanctioned redacting impl — prints no wrapped state.
impl<T> std::fmt::Debug for Secret<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Secret(<redacted>)")
    }
}

// dasp::allow(S1): sanctioned redacting impl — prints no wrapped state.
impl<T> std::fmt::Display for Secret<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<redacted>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expose_roundtrips() {
        let mut s = Secret::new(vec![1u64, 2, 3]);
        assert_eq!(s.expose(), &[1, 2, 3]);
        s.expose_mut().push(4);
        assert_eq!(s.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn debug_and_display_redact() {
        let s = Secret::new(0xdead_beefu64);
        assert_eq!(format!("{s:?}"), "Secret(<redacted>)");
        assert_eq!(format!("{s}"), "<redacted>");
        assert!(!format!("{s:?}").contains("3735928559"));
    }

    #[test]
    fn from_wraps() {
        let s: Secret<u8> = 7u8.into();
        assert_eq!(*s.expose(), 7);
    }
}
