//! Exact `i128` rational arithmetic and integer-polynomial interpolation.
//!
//! Order-preserving shares (paper §IV) are values of integer-coefficient
//! polynomials at small positive integer points. Modular arithmetic would
//! destroy the order, so reconstruction interpolates over the rationals
//! and checks that the result is integral. All operations are checked:
//! overflow surfaces as [`FieldError::Overflow`] rather than wrapping.

use crate::FieldError;

/// An exact rational p/q with q > 0, always kept in lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den` in lowest terms. `den` must be non-zero.
    pub fn new(num: i128, den: i128) -> Result<Self, FieldError> {
        if den == 0 {
            return Err(FieldError::DivisionByZero);
        }
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = num.checked_neg().ok_or(FieldError::Overflow)?;
            den = den.checked_neg().ok_or(FieldError::Overflow)?;
        }
        Ok(Rational { num, den })
    }

    /// An integer as a rational.
    pub fn from_int(v: i128) -> Self {
        Rational { num: v, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Checked addition.
    pub fn add(&self, o: &Rational) -> Result<Rational, FieldError> {
        // Reduce cross terms by gcd of denominators first to delay overflow.
        let g = gcd(self.den, o.den);
        let lhs_scale = o.den / g;
        let rhs_scale = self.den / g;
        let a = self
            .num
            .checked_mul(lhs_scale)
            .ok_or(FieldError::Overflow)?;
        let b = o.num.checked_mul(rhs_scale).ok_or(FieldError::Overflow)?;
        let num = a.checked_add(b).ok_or(FieldError::Overflow)?;
        let den = self
            .den
            .checked_mul(lhs_scale)
            .ok_or(FieldError::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked multiplication.
    pub fn mul(&self, o: &Rational) -> Result<Rational, FieldError> {
        // Cross-cancel before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, o.den);
        let g2 = gcd(o.num, self.den);
        let (an, ad) = (self.num / g1.max(1), self.den / g2.max(1));
        let (bn, bd) = (o.num / g2.max(1), o.den / g1.max(1));
        let num = an.checked_mul(bn).ok_or(FieldError::Overflow)?;
        let den = ad.checked_mul(bd).ok_or(FieldError::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked subtraction.
    pub fn sub(&self, o: &Rational) -> Result<Rational, FieldError> {
        let neg = Rational::new(o.num.checked_neg().ok_or(FieldError::Overflow)?, o.den)?;
        self.add(&neg)
    }

    /// Checked division.
    pub fn div(&self, o: &Rational) -> Result<Rational, FieldError> {
        if o.num == 0 {
            return Err(FieldError::DivisionByZero);
        }
        self.mul(&Rational::new(o.den, o.num)?)
    }

    /// If this rational is an integer, return it.
    pub fn to_integer(&self) -> Option<i128> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }
}

/// Interpolate the unique degree-(n−1) integer-coefficient polynomial
/// through `points` (as `(x, y)` integer pairs) and evaluate at x = 0,
/// returning the constant term.
///
/// Used to reconstruct order-preserving shares: the polynomial was built
/// with integer coefficients, so the result must be integral; a fractional
/// result means the shares are inconsistent (e.g. a Byzantine provider
/// corrupted one) and yields [`FieldError::Overflow`]-free detection via
/// `Ok(None)`.
///
/// # Errors
///
/// * [`FieldError::DuplicatePoint`] — repeated x coordinate.
/// * [`FieldError::NotEnoughPoints`] — empty input.
/// * [`FieldError::Overflow`] — intermediate value exceeded `i128`.
pub fn rational_interpolate_at_zero(points: &[(i128, i128)]) -> Result<Option<i128>, FieldError> {
    let xs: Vec<i128> = points.iter().map(|&(x, _)| x).collect();
    let weights = rational_basis_at_zero(&xs)?;
    let ys: Vec<i128> = points.iter().map(|&(_, y)| y).collect();
    rational_apply_at_zero(&weights, &ys)
}

/// Precompute the exact-rational Lagrange weights `l_i(0)` for a fixed set
/// of distinct integer points. Reconstructing each row over the same
/// provider subset is then [`rational_apply_at_zero`] — k rational
/// multiply-adds instead of the O(k²) weight solve per row.
///
/// # Errors
///
/// Same conditions as [`rational_interpolate_at_zero`].
pub fn rational_basis_at_zero(xs: &[i128]) -> Result<Vec<Rational>, FieldError> {
    if xs.is_empty() {
        return Err(FieldError::NotEnoughPoints { needed: 1, got: 0 });
    }
    for (i, xi) in xs.iter().enumerate() {
        for xj in xs.iter().skip(i + 1) {
            if xi == xj {
                // Diagnostic value only; saturate rather than truncate.
                let shown = u64::try_from(xi.unsigned_abs()).unwrap_or(u64::MAX);
                return Err(FieldError::DuplicatePoint(shown));
            }
        }
    }
    let mut weights = Vec::with_capacity(xs.len());
    for (i, &xi) in xs.iter().enumerate() {
        let mut li0 = Rational::ONE;
        for (j, &xj) in xs.iter().enumerate() {
            if i == j {
                continue;
            }
            // l_i(0) *= x_j / (x_j - x_i)
            let term = Rational::new(xj, xj - xi)?;
            li0 = li0.mul(&term)?;
        }
        weights.push(li0);
    }
    Ok(weights)
}

/// Apply precomputed [`rational_basis_at_zero`] weights to one row of
/// share values: `Σ yᵢ·wᵢ`. Returns `Ok(None)` when the result is not an
/// integer (inconsistent shares), mirroring
/// [`rational_interpolate_at_zero`].
pub fn rational_apply_at_zero(
    weights: &[Rational],
    ys: &[i128],
) -> Result<Option<i128>, FieldError> {
    let mut acc = Rational::ZERO;
    for (&y, w) in ys.iter().zip(weights) {
        acc = acc.add(&Rational::from_int(y).mul(w)?)?;
    }
    Ok(acc.to_integer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_normalizes() {
        let r = Rational::new(4, -8).unwrap();
        assert_eq!((r.num(), r.den()), (-1, 2));
        let z = Rational::new(0, 5).unwrap();
        assert_eq!((z.num(), z.den()), (0, 1));
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(Rational::new(1, 0), Err(FieldError::DivisionByZero));
    }

    #[test]
    fn arithmetic_basics() {
        let half = Rational::new(1, 2).unwrap();
        let third = Rational::new(1, 3).unwrap();
        assert_eq!(half.add(&third).unwrap(), Rational::new(5, 6).unwrap());
        assert_eq!(half.mul(&third).unwrap(), Rational::new(1, 6).unwrap());
        assert_eq!(half.sub(&third).unwrap(), Rational::new(1, 6).unwrap());
        assert_eq!(half.div(&third).unwrap(), Rational::new(3, 2).unwrap());
    }

    #[test]
    fn div_by_zero_rational() {
        assert_eq!(
            Rational::ONE.div(&Rational::ZERO),
            Err(FieldError::DivisionByZero)
        );
    }

    #[test]
    fn interpolate_linear() {
        // p(x) = 100x + 10 at x = 2, 4 (Figure 1).
        let got = rational_interpolate_at_zero(&[(2, 210), (4, 410)]).unwrap();
        assert_eq!(got, Some(10));
    }

    #[test]
    fn interpolate_cubic() {
        // p(x) = 2x^3 + 3x^2 + 5x + 7
        let p = |x: i128| 2 * x * x * x + 3 * x * x + 5 * x + 7;
        let pts: Vec<_> = [1i128, 2, 3, 5].iter().map(|&x| (x, p(x))).collect();
        assert_eq!(rational_interpolate_at_zero(&pts).unwrap(), Some(7));
    }

    #[test]
    fn interpolate_detects_non_integer() {
        // Points not on any integer-coefficient line through integer x's
        // can yield a fractional constant term.
        let got = rational_interpolate_at_zero(&[(1, 0), (2, 1)]).unwrap();
        // p(x) = x - 1 → constant -1, integral. Pick one that isn't:
        assert_eq!(got, Some(-1));
        let got = rational_interpolate_at_zero(&[(2, 0), (4, 1)]).unwrap();
        // slope 1/2 → p(0) = -1, integral again. Force fraction with 3 pts:
        assert_eq!(got, Some(-1));
        let got = rational_interpolate_at_zero(&[(1, 1), (2, 2), (4, 5)]).unwrap();
        assert_eq!(got, None, "fractional constant term must be flagged");
    }

    #[test]
    fn interpolate_rejects_duplicates_and_empty() {
        assert!(matches!(
            rational_interpolate_at_zero(&[(1, 1), (1, 2)]),
            Err(FieldError::DuplicatePoint(1))
        ));
        assert!(matches!(
            rational_interpolate_at_zero(&[]),
            Err(FieldError::NotEnoughPoints { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_interpolate_recovers_constant(
            c0 in -1_000_000i128..1_000_000,
            c1 in -1_000i128..1_000,
            c2 in -1_000i128..1_000,
            c3 in -1_000i128..1_000,
        ) {
            let p = |x: i128| c3 * x * x * x + c2 * x * x + c1 * x + c0;
            let pts: Vec<_> = [1i128, 3, 7, 11].iter().map(|&x| (x, p(x))).collect();
            prop_assert_eq!(rational_interpolate_at_zero(&pts).unwrap(), Some(c0));
        }

        #[test]
        fn prop_basis_apply_matches_interpolate(
            ys in proptest::collection::vec(-1_000_000i128..1_000_000, 4),
        ) {
            let xs = [1i128, 3, 7, 11];
            let pts: Vec<(i128, i128)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            let weights = rational_basis_at_zero(&xs).unwrap();
            prop_assert_eq!(
                rational_apply_at_zero(&weights, &ys).unwrap(),
                rational_interpolate_at_zero(&pts).unwrap()
            );
        }

        #[test]
        fn prop_add_commutes(a in -10_000i128..10_000, b in 1i128..100,
                             c in -10_000i128..10_000, d in 1i128..100) {
            let x = Rational::new(a, b).unwrap();
            let y = Rational::new(c, d).unwrap();
            prop_assert_eq!(x.add(&y).unwrap(), y.add(&x).unwrap());
        }

        #[test]
        fn prop_mul_div_roundtrip(a in -10_000i128..10_000, b in 1i128..100,
                                  c in 1i128..10_000, d in 1i128..100) {
            let x = Rational::new(a, b).unwrap();
            let y = Rational::new(c, d).unwrap();
            prop_assert_eq!(x.mul(&y).unwrap().div(&y).unwrap(), x);
        }
    }
}
