//! The prime field GF(p) with p = 2^61 − 1.
//!
//! 2^61 − 1 is a Mersenne prime, so reduction after a `u128` product is a
//! couple of shifts and adds — no division. The field is large enough to
//! hold 60-bit application values (salaries, encoded strings, row ids)
//! while keeping share arithmetic in native words.

use rand::Rng;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus, p = 2^61 − 1.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of GF(2^61 − 1), kept in canonical form `0 <= value < p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Construct from a `u64`, reducing mod p.
    #[inline]
    pub fn from_u64(v: u64) -> Self {
        Fp(v % MODULUS)
    }

    /// Construct from an `i64`; negative inputs map to `p - |v| mod p`.
    #[inline]
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Fp::from_u64(v.unsigned_abs())
        } else {
            -Fp::from_u64(v.unsigned_abs())
        }
    }

    /// Construct from a `u128`, reducing mod p.
    #[inline]
    pub fn from_u128(v: u128) -> Self {
        Fp(reduce128(v))
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub fn to_u64(self) -> u64 {
        self.0
    }

    /// A uniformly random field element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection-sample the 61-bit range for exact uniformity.
        loop {
            let v: u64 = rng.gen::<u64>() >> 3; // 61 random bits
            if v < MODULUS {
                return Fp(v);
            }
        }
    }

    /// A uniformly random *non-zero* field element.
    pub fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = Self::random(rng);
            if v != Fp::ZERO {
                return v;
            }
        }
    }

    /// `self^exp` by square-and-multiply.
    pub fn pow(self, mut exp: u64) -> Self {
        let mut base = self;
        let mut acc = Fp::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem; `None` for zero.
    pub fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }

    /// True iff this is the zero element.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Truncate a `u128` to its low 64 bits.
///
/// The one sanctioned narrowing conversion in this crate: every caller is
/// a Mersenne fold that accounts for the discarded high bits separately.
#[inline]
fn lo64(v: u128) -> u64 {
    // dasp::allow(P2): deliberate truncation — the fold keeps the high bits.
    v as u64
}

/// Reduce a u128 modulo the Mersenne prime 2^61 − 1 using shift/add folds.
#[inline]
fn reduce128(v: u128) -> u64 {
    // Fold twice: v = hi * 2^61 + lo  ≡  hi + lo (mod 2^61 − 1).
    let lo = lo64(v) & MODULUS;
    let mid = lo64(v >> 61) & MODULUS;
    let hi = lo64(v >> 122); // at most 6 bits
    let mut r = u128::from(lo) + u128::from(mid) + u128::from(hi);
    // r < 3 * 2^61; fold once more.
    r = (r & u128::from(MODULUS)) + (r >> 61);
    let mut r = lo64(r); // < 2^62 after the fold, so no bits lost
    if r >= MODULUS {
        r -= MODULUS;
    }
    r
}

impl Add for Fp {
    type Output = Fp;
    #[inline]
    fn add(self, rhs: Fp) -> Fp {
        let mut s = self.0 + rhs.0; // < 2^62, no overflow
        if s >= MODULUS {
            s -= MODULUS;
        }
        Fp(s)
    }
}

impl Sub for Fp {
    type Output = Fp;
    #[inline]
    fn sub(self, rhs: Fp) -> Fp {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        };
        Fp(s)
    }
}

impl Neg for Fp {
    type Output = Fp;
    #[inline]
    fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl Mul for Fp {
    type Output = Fp;
    #[inline]
    fn mul(self, rhs: Fp) -> Fp {
        Fp(reduce128(self.0 as u128 * rhs.0 as u128))
    }
}

impl AddAssign for Fp {
    #[inline]
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl SubAssign for Fp {
    #[inline]
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl MulAssign for Fp {
    #[inline]
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_mersenne_61() {
        assert_eq!(MODULUS, 2_305_843_009_213_693_951);
    }

    #[test]
    fn add_wraps_at_modulus() {
        let a = Fp::from_u64(MODULUS - 1);
        assert_eq!(a + Fp::ONE, Fp::ZERO);
        assert_eq!(a + Fp::from_u64(2), Fp::ONE);
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(Fp::ZERO - Fp::ONE, Fp::from_u64(MODULUS - 1));
    }

    #[test]
    fn neg_is_additive_inverse() {
        let a = Fp::from_u64(123_456_789);
        assert_eq!(a + (-a), Fp::ZERO);
        assert_eq!(-Fp::ZERO, Fp::ZERO);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let a = Fp::from_u64(0x1234_5678_9abc_def0 % MODULUS);
        let b = Fp::from_u64(0x0fed_cba9_8765_4321 % MODULUS);
        let expect = ((a.to_u64() as u128 * b.to_u64() as u128) % MODULUS as u128) as u64;
        assert_eq!((a * b).to_u64(), expect);
    }

    #[test]
    fn inv_zero_is_none() {
        assert_eq!(Fp::ZERO.inv(), None);
    }

    #[test]
    fn pow_small_cases() {
        let a = Fp::from_u64(3);
        assert_eq!(a.pow(0), Fp::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(4), Fp::from_u64(81));
    }

    #[test]
    fn random_is_canonical() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = Fp::random(&mut rng);
            assert!(v.to_u64() < MODULUS);
        }
    }

    #[test]
    fn from_i64_negative() {
        assert_eq!(Fp::from_i64(-1), Fp::from_u64(MODULUS - 1));
        assert_eq!(Fp::from_i64(-5) + Fp::from_i64(5), Fp::ZERO);
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in 0u64..MODULUS, b in 0u64..MODULUS) {
            prop_assert_eq!(Fp(a) + Fp(b), Fp(b) + Fp(a));
        }

        #[test]
        fn prop_mul_commutes(a in 0u64..MODULUS, b in 0u64..MODULUS) {
            prop_assert_eq!(Fp(a) * Fp(b), Fp(b) * Fp(a));
        }

        #[test]
        fn prop_mul_associates(a in 0u64..MODULUS, b in 0u64..MODULUS, c in 0u64..MODULUS) {
            prop_assert_eq!((Fp(a) * Fp(b)) * Fp(c), Fp(a) * (Fp(b) * Fp(c)));
        }

        #[test]
        fn prop_distributes(a in 0u64..MODULUS, b in 0u64..MODULUS, c in 0u64..MODULUS) {
            prop_assert_eq!(Fp(a) * (Fp(b) + Fp(c)), Fp(a) * Fp(b) + Fp(a) * Fp(c));
        }

        #[test]
        fn prop_inverse_roundtrip(a in 1u64..MODULUS) {
            let a = Fp(a);
            prop_assert_eq!(a * a.inv().unwrap(), Fp::ONE);
        }

        #[test]
        fn prop_sub_is_add_neg(a in 0u64..MODULUS, b in 0u64..MODULUS) {
            prop_assert_eq!(Fp(a) - Fp(b), Fp(a) + (-Fp(b)));
        }

        #[test]
        fn prop_reduce128_matches_mod(v in any::<u128>()) {
            prop_assert_eq!(reduce128(v), (v % MODULUS as u128) as u64);
        }
    }
}
