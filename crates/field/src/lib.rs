//! Finite-field and exact-rational arithmetic underpinning `dasp`'s secret
//! sharing schemes.
//!
//! Two number systems are provided:
//!
//! * [`Fp`] — the prime field GF(p) with p = 2^61 − 1 (a Mersenne prime).
//!   Shamir sharing in *random* mode lives here: it gives
//!   information-theoretic secrecy and cheap additive homomorphism.
//! * [`Rational`] — exact `i128` rationals, used to interpolate
//!   *order-preserving* integer-coefficient polynomials back to their
//!   constant term (the secret). Order cannot survive modular wrap-around,
//!   so order-preserving shares are plain integers, not field elements.
//!
//! On top of both sit dense polynomials ([`Poly`]) and Lagrange
//! interpolation ([`lagrange_at_zero`], [`rational_interpolate_at_zero`]).

pub mod fp;
pub mod poly;
pub mod rational;
pub mod secret;

pub use fp::{Fp, MODULUS};
pub use poly::Poly;
pub use rational::{
    rational_apply_at_zero, rational_basis_at_zero, rational_interpolate_at_zero, Rational,
};
pub use secret::Secret;

/// Errors produced by interpolation and field operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldError {
    /// Two interpolation points shared the same x coordinate.
    DuplicatePoint(u64),
    /// Not enough points were supplied to determine the polynomial.
    NotEnoughPoints { needed: usize, got: usize },
    /// Division by zero (or inversion of zero).
    DivisionByZero,
    /// An exact-rational computation overflowed `i128`.
    Overflow,
}

impl std::fmt::Display for FieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldError::DuplicatePoint(x) => write!(f, "duplicate interpolation point x={x}"),
            FieldError::NotEnoughPoints { needed, got } => {
                write!(f, "interpolation needs {needed} points, got {got}")
            }
            FieldError::DivisionByZero => write!(f, "division by zero"),
            FieldError::Overflow => write!(f, "exact rational arithmetic overflowed i128"),
        }
    }
}

impl std::error::Error for FieldError {}

/// Precompute the Lagrange weights `l_i(0)` for a fixed set of distinct
/// evaluation points.
///
/// Reconstructing any polynomial sampled at these points is then a single
/// dot product `Σ yᵢ·wᵢ` — the batch-codec fast path: one O(k²) weight
/// solve amortized over every row sharing the same provider subset,
/// instead of a full solve per row.
///
/// # Errors
///
/// Returns [`FieldError::DuplicatePoint`] if two x coordinates coincide
/// and [`FieldError::NotEnoughPoints`] if `xs` is empty.
pub fn lagrange_basis_at_zero(xs: &[Fp]) -> Result<Vec<Fp>, FieldError> {
    if xs.is_empty() {
        return Err(FieldError::NotEnoughPoints { needed: 1, got: 0 });
    }
    for (i, xi) in xs.iter().enumerate() {
        for xj in xs.iter().skip(i + 1) {
            if xi == xj {
                return Err(FieldError::DuplicatePoint(xi.to_u64()));
            }
        }
    }
    let mut weights = Vec::with_capacity(xs.len());
    for (i, &xi) in xs.iter().enumerate() {
        // l_i(0) = prod_{j != i} x_j / (x_j - x_i)
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (j, &xj) in xs.iter().enumerate() {
            if i == j {
                continue;
            }
            num *= xj;
            den *= xj - xi;
        }
        weights.push(num * den.inv().ok_or(FieldError::DivisionByZero)?);
    }
    Ok(weights)
}

/// Apply precomputed [`lagrange_basis_at_zero`] weights to one share row:
/// `Σ yᵢ·wᵢ`. The caller guarantees `ys` is ordered like the `xs` the
/// weights were built from.
pub fn lagrange_apply(weights: &[Fp], ys: &[Fp]) -> Fp {
    weights
        .iter()
        .zip(ys)
        .fold(Fp::ZERO, |acc, (&w, &y)| acc + y * w)
}

/// Interpolate the unique degree-(n−1) polynomial through `points`
/// (given as `(x, y)` pairs in GF(p)) and evaluate it at x = 0.
///
/// This is the reconstruction step of Shamir's scheme: the constant term
/// *is* the secret. Runs in O(n²); for many rows over the same points use
/// [`lagrange_basis_at_zero`] + [`lagrange_apply`].
///
/// # Errors
///
/// Returns [`FieldError::DuplicatePoint`] if two points share an x
/// coordinate and [`FieldError::NotEnoughPoints`] if `points` is empty.
pub fn lagrange_at_zero(points: &[(Fp, Fp)]) -> Result<Fp, FieldError> {
    let xs: Vec<Fp> = points.iter().map(|&(x, _)| x).collect();
    let weights = lagrange_basis_at_zero(&xs)?;
    let ys: Vec<Fp> = points.iter().map(|&(_, y)| y).collect();
    Ok(lagrange_apply(&weights, &ys))
}

/// Interpolate the unique polynomial through `points` and evaluate it at
/// an arbitrary `x` — the share-regeneration primitive: given k surviving
/// shares, compute what a (lost) provider at evaluation point `x` held.
///
/// # Errors
///
/// Same conditions as [`lagrange_at_zero`].
pub fn lagrange_eval_at(points: &[(Fp, Fp)], x: Fp) -> Result<Fp, FieldError> {
    if points.is_empty() {
        return Err(FieldError::NotEnoughPoints { needed: 1, got: 0 });
    }
    for (i, (xi, _)) in points.iter().enumerate() {
        for (xj, _) in points.iter().skip(i + 1) {
            if xi == xj {
                return Err(FieldError::DuplicatePoint(xi.to_u64()));
            }
        }
    }
    let mut acc = Fp::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // l_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            num *= x - xj;
            den *= xi - xj;
        }
        acc += yi * num * den.inv().ok_or(FieldError::DivisionByZero)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lagrange_eval_at_regenerates_lost_share() {
        // q10(x) = 100x + 10 with X = {2, 4, 1}: from the shares at x=2
        // and x=4, regenerate the share at x=1.
        let pts = [
            (Fp::from_u64(2), Fp::from_u64(210)),
            (Fp::from_u64(4), Fp::from_u64(410)),
        ];
        assert_eq!(
            lagrange_eval_at(&pts, Fp::from_u64(1)).unwrap(),
            Fp::from_u64(110)
        );
        // Evaluating at a held point returns that share.
        assert_eq!(
            lagrange_eval_at(&pts, Fp::from_u64(4)).unwrap(),
            Fp::from_u64(410)
        );
        // At zero it degenerates to reconstruction.
        assert_eq!(
            lagrange_eval_at(&pts, Fp::ZERO).unwrap(),
            lagrange_at_zero(&pts).unwrap()
        );
    }

    #[test]
    fn lagrange_eval_at_rejects_bad_inputs() {
        assert!(matches!(
            lagrange_eval_at(&[], Fp::ONE),
            Err(FieldError::NotEnoughPoints { .. })
        ));
        let dup = [
            (Fp::from_u64(2), Fp::from_u64(1)),
            (Fp::from_u64(2), Fp::from_u64(2)),
        ];
        assert!(lagrange_eval_at(&dup, Fp::ONE).is_err());
    }

    #[test]
    fn lagrange_reconstructs_figure1_polynomials() {
        // Figure 1 of the paper: q10(x) = 100x + 10 with X = {2, 4, 1}.
        let pts = [
            (Fp::from_u64(2), Fp::from_u64(210)),
            (Fp::from_u64(4), Fp::from_u64(410)),
        ];
        assert_eq!(lagrange_at_zero(&pts).unwrap(), Fp::from_u64(10));
        let pts = [
            (Fp::from_u64(4), Fp::from_u64(410)),
            (Fp::from_u64(1), Fp::from_u64(110)),
        ];
        assert_eq!(lagrange_at_zero(&pts).unwrap(), Fp::from_u64(10));
    }

    #[test]
    fn lagrange_rejects_duplicates() {
        let pts = [
            (Fp::from_u64(2), Fp::from_u64(210)),
            (Fp::from_u64(2), Fp::from_u64(410)),
        ];
        assert_eq!(lagrange_at_zero(&pts), Err(FieldError::DuplicatePoint(2)));
    }

    #[test]
    fn lagrange_rejects_empty() {
        assert!(matches!(
            lagrange_at_zero(&[]),
            Err(FieldError::NotEnoughPoints { .. })
        ));
    }

    #[test]
    fn lagrange_single_point_is_constant() {
        let pts = [(Fp::from_u64(7), Fp::from_u64(42))];
        assert_eq!(lagrange_at_zero(&pts).unwrap(), Fp::from_u64(42));
    }

    #[test]
    fn basis_apply_matches_direct_interpolation() {
        let pts = [
            (Fp::from_u64(2), Fp::from_u64(210)),
            (Fp::from_u64(4), Fp::from_u64(410)),
            (Fp::from_u64(1), Fp::from_u64(110)),
        ];
        let xs: Vec<Fp> = pts.iter().map(|&(x, _)| x).collect();
        let ys: Vec<Fp> = pts.iter().map(|&(_, y)| y).collect();
        let weights = lagrange_basis_at_zero(&xs).unwrap();
        assert_eq!(
            lagrange_apply(&weights, &ys),
            lagrange_at_zero(&pts).unwrap()
        );
        // Reusing the weights on a second row over the same points agrees
        // with the per-row solve (the batch-codec invariant).
        let ys2: Vec<Fp> = [30u64, 40, 25].iter().map(|&y| Fp::from_u64(y)).collect();
        let pts2: Vec<(Fp, Fp)> = xs.iter().copied().zip(ys2.iter().copied()).collect();
        assert_eq!(
            lagrange_apply(&weights, &ys2),
            lagrange_at_zero(&pts2).unwrap()
        );
    }

    #[test]
    fn basis_rejects_bad_inputs() {
        assert!(matches!(
            lagrange_basis_at_zero(&[]),
            Err(FieldError::NotEnoughPoints { .. })
        ));
        assert_eq!(
            lagrange_basis_at_zero(&[Fp::from_u64(3), Fp::from_u64(3)]),
            Err(FieldError::DuplicatePoint(3))
        );
    }
}
