//! End-to-end reactor + transport integration: a real TCP server echoing
//! through a `SharedService`, driven by the multiplexing client, the
//! blocking connection, and a full `Cluster` over sockets.

use dasp_net::{
    BlockingConn, Cluster, ReactorConfig, SharedService, TcpClient, TcpClientConfig, TcpServer,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Echoes the payload back with a leading marker byte.
struct Echo(u8);

impl SharedService for Echo {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(request.len() + 1);
        out.push(self.0);
        out.extend_from_slice(request);
        out
    }
}

fn serve(marker: u8) -> TcpServer {
    TcpServer::serve(
        "127.0.0.1:0",
        Arc::new(Echo(marker)),
        ReactorConfig::default(),
    )
    .expect("bind")
}

#[test]
fn blocking_conn_roundtrip() {
    let server = serve(0xEE);
    let mut conn =
        BlockingConn::connect(server.local_addr(), Duration::from_secs(5)).expect("dial");
    for i in 0..100u32 {
        let req = i.to_le_bytes();
        let resp = conn.call(&req).expect("call");
        assert_eq!(resp[0], 0xEE);
        assert_eq!(&resp[1..], &req);
    }
    let snap = server.stats();
    assert!(snap.frames_in >= 100);
    assert!(snap.frames_out >= 100);
    assert_eq!(snap.protocol_errors, 0);
}

#[test]
fn multiplexed_client_concurrent_calls() {
    let server = serve(0xAB);
    let client = Arc::new(
        TcpClient::connect(server.local_addr(), TcpClientConfig::default()).expect("dial"),
    );
    let hits = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for t in 0..8u64 {
        let client = Arc::clone(&client);
        let hits = Arc::clone(&hits);
        threads.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let req = (t * 1000 + i).to_le_bytes();
                let resp = client.call(&req).expect("call");
                assert_eq!(resp[0], 0xAB);
                assert_eq!(&resp[1..], &req);
                hits.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for th in threads {
        th.join().expect("join");
    }
    assert_eq!(hits.load(Ordering::Relaxed), 400);
}

#[test]
fn batched_client_concurrent_calls() {
    let server = serve(0xBA);
    let client = Arc::new(
        TcpClient::connect(
            server.local_addr(),
            TcpClientConfig {
                batch_window: Duration::from_micros(500),
                ..TcpClientConfig::default()
            },
        )
        .expect("dial"),
    );
    let hits = Arc::new(AtomicUsize::new(0));
    let mut threads = Vec::new();
    for t in 0..8u64 {
        let client = Arc::clone(&client);
        let hits = Arc::clone(&hits);
        threads.push(std::thread::spawn(move || {
            for i in 0..50u64 {
                let req = (t * 1000 + i).to_le_bytes();
                let resp = client.call(&req).expect("call");
                assert_eq!(resp[0], 0xBA);
                assert_eq!(&resp[1..], &req);
                hits.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for th in threads {
        th.join().expect("join");
    }
    assert_eq!(hits.load(Ordering::Relaxed), 400);
    let snap = server.stats();
    // Every request/response message is counted individually even when
    // coalesced into batch envelopes.
    assert!(snap.frames_in >= 400, "frames_in = {}", snap.frames_in);
    assert!(snap.frames_out >= 400, "frames_out = {}", snap.frames_out);
    assert_eq!(snap.protocol_errors, 0);
}

#[test]
fn batched_single_caller_pays_no_window() {
    let server = serve(0x77);
    let client = TcpClient::connect(
        server.local_addr(),
        TcpClientConfig {
            // A window so large that paying it per call would blow the
            // test timeout: the early-flush path must kick in.
            batch_window: Duration::from_millis(500),
            ..TcpClientConfig::default()
        },
    )
    .expect("dial");
    let start = std::time::Instant::now();
    for i in 0..20u32 {
        let resp = client.call(&i.to_le_bytes()).expect("call");
        assert_eq!(resp[0], 0x77);
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "lone caller waited out the batch window: {:?}",
        start.elapsed()
    );
}

#[test]
fn blocking_conn_call_many_roundtrip() {
    let server = serve(0xCD);
    let mut conn =
        BlockingConn::connect(server.local_addr(), Duration::from_secs(5)).expect("dial");
    let payloads: Vec<Vec<u8>> = (0..37u32).map(|i| i.to_le_bytes().to_vec()).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let responses = conn.call_many(&refs).expect("call_many");
    assert_eq!(responses.len(), payloads.len());
    for (req, resp) in payloads.iter().zip(&responses) {
        assert_eq!(resp[0], 0xCD);
        assert_eq!(&resp[1..], req.as_slice());
    }
    // Mixed traffic afterwards still works (tokens stay in sync).
    let resp = conn.call(b"after").expect("call");
    assert_eq!(&resp[1..], b"after");
    let snap = server.stats();
    assert!(snap.batch_frames_in >= 1, "server saw no batch envelope");
    assert!(snap.frames_in >= 38);
    assert_eq!(snap.protocol_errors, 0);
}

#[test]
fn call_many_empty_is_ok() {
    let server = serve(0x00);
    let mut conn =
        BlockingConn::connect(server.local_addr(), Duration::from_secs(5)).expect("dial");
    assert_eq!(conn.call_many(&[]).expect("empty"), Vec::<Vec<u8>>::new());
}

#[test]
fn large_payload_roundtrip() {
    let server = serve(0x11);
    let client = TcpClient::connect(server.local_addr(), TcpClientConfig::default()).expect("dial");
    // Big enough to exercise partial reads/writes and outbound queuing.
    let big: Vec<u8> = (0..2_000_000u32).map(|i| (i % 251) as u8).collect();
    let resp = client.call(&big).expect("call");
    assert_eq!(resp.len(), big.len() + 1);
    assert_eq!(resp[0], 0x11);
    assert_eq!(&resp[1..], &big[..]);
}

#[test]
fn cluster_runs_over_sockets() {
    let servers: Vec<TcpServer> = (0..3).map(|i| serve(0xC0 + i as u8)).collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.local_addr()).collect();
    let cluster = Cluster::connect_tcp(&addrs, Duration::from_secs(5), 2).expect("connect");
    for i in 0..3 {
        let resp = cluster.call(i, b"ping".to_vec()).expect("call");
        assert_eq!(resp[0], 0xC0 + i as u8);
        assert_eq!(&resp[1..], b"ping");
    }
    let all = cluster.call_many((0..3).map(|i| (i, b"fan".to_vec())).collect());
    assert!(all.iter().all(|(_, r)| r.is_ok()));
    let mut cluster = cluster;
    cluster.shutdown();
}

#[test]
fn dead_server_surfaces_as_timeout() {
    let server = serve(0x01);
    let addr = server.local_addr();
    let cluster = Cluster::connect_tcp(&[addr], Duration::from_millis(300), 1).expect("connect");
    assert!(cluster.call(0, b"up".to_vec()).is_ok());
    let mut server = server;
    server.shutdown();
    drop(server);
    // The provider process is gone: the client retries inside its error
    // hold, the cluster deadline fires first — a crash looks like a
    // timeout, exactly as with in-process providers.
    let err = cluster
        .call(0, b"down".to_vec())
        .expect_err("server is gone");
    assert!(matches!(err, dasp_net::RpcError::Timeout(_)));
    let mut cluster = cluster;
    cluster.shutdown();
}

#[test]
fn client_reconnects_after_server_restart() {
    let server = serve(0x55);
    let addr = server.local_addr();
    let client = TcpClient::connect(
        addr,
        TcpClientConfig {
            reconnect_backoff: Duration::from_millis(10),
            ..TcpClientConfig::default()
        },
    )
    .expect("dial");
    assert_eq!(client.call(b"one").expect("call")[0], 0x55);
    let mut server = server;
    server.shutdown();
    drop(server);
    // Dead server: calls fail with a typed transport error.
    assert!(client.call(b"two").is_err());
    // Restart on the same port (may need a few tries if the OS lags).
    let mut revived = None;
    for _ in 0..50 {
        match TcpServer::serve(addr, Arc::new(Echo(0x66)), ReactorConfig::default()) {
            Ok(s) => {
                revived = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    let _revived = revived.expect("rebind same port");
    // The client heals on its own within a few retries.
    let mut healed = false;
    for _ in 0..100 {
        if let Ok(resp) = client.call(b"three") {
            assert_eq!(resp[0], 0x66);
            healed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(healed, "client never reconnected");
}

#[test]
#[ignore = "diagnostic: prints steady-state batch depth"]
fn diag_batch_depth() {
    let server = serve(0xDD);
    let client = Arc::new(
        TcpClient::connect(
            server.local_addr(),
            TcpClientConfig {
                batch_window: Duration::from_micros(1000),
                ..TcpClientConfig::default()
            },
        )
        .expect("dial"),
    );
    let warm = server.stats();
    let mut threads = Vec::new();
    for _ in 0..4u64 {
        let client = Arc::clone(&client);
        threads.push(std::thread::spawn(move || {
            for i in 0..2000u64 {
                let _ = client.call(&i.to_le_bytes()).expect("call");
            }
        }));
    }
    for th in threads {
        th.join().expect("join");
    }
    let snap = server.stats();
    let subs = snap.frames_in - warm.frames_in;
    let envs = snap.batch_frames_in - warm.batch_frames_in;
    println!(
        "subs={} batch_envelopes={} avg_depth={:.2}",
        subs,
        envs,
        if envs > 0 {
            subs as f64 / envs as f64
        } else {
            0.0
        }
    );
}
