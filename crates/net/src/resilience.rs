//! Resilience primitives for the quorum transport: retry policies with
//! deterministic jittered backoff, per-provider health tracking with
//! latency EWMAs, and circuit breakers with half-open probes.
//!
//! The paper's availability argument (§V-A) is that any k of the n
//! providers suffice; this module supplies the client-side machinery that
//! makes that true *operationally* — a sick provider is retried (omission
//! faults), skipped (open breaker), or raced against a hedge request
//! (stragglers), and every decision is observable via [`HealthSnapshot`].
//!
//! Everything here is deterministic under test: time comes from the
//! [`Clock`] trait (swap in [`ManualClock`]), and backoff jitter is a pure
//! function of `(seed, provider, attempt)`.

use crate::rpc::ProviderId;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- clock --

/// Monotonic time source; swappable so breaker tests control time.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;
}

/// Wall-clock time relative to construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Hand-cranked clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock(Mutex<Duration>);

impl ManualClock {
    /// Clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance time by `d`.
    pub fn advance(&self, d: Duration) {
        *self.0.lock() += d;
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        *self.0.lock()
    }
}

// ---------------------------------------------------------------- retry --

/// Retry schedule for idempotent requests: bounded attempts with
/// exponentially growing, deterministically jittered backoff.
///
/// Only *reads* should carry a multi-attempt policy — an omission-faulty
/// provider applies a write before dropping the response, so retrying a
/// write could double-apply it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Cap on the exponential growth.
    pub max_backoff: Duration,
    /// Per-attempt response deadline; `None` uses the transport timeout.
    pub per_attempt_timeout: Option<Duration>,
    /// Seed for the jitter, so retry timing replays exactly per seed.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(80),
            per_attempt_timeout: None,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Single attempt, no retries (appropriate for writes).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Default::default()
        }
    }

    /// Policy with the given attempt budget and default backoff shape.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Default::default()
        }
    }

    /// Same policy with a different jitter seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Backoff to sleep after `attempt` (1-based) fails. Exponential in
    /// the attempt number, capped, then scaled by a deterministic jitter
    /// factor in [0.5, 1.0) derived from `(seed, provider, attempt)`.
    pub fn backoff_for(&self, provider: ProviderId, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.max_backoff);
        let h = splitmix64(
            self.jitter_seed
                ^ (provider as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (attempt as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
        );
        let jitter = 0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        exp.mul_f64(jitter)
    }
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// -------------------------------------------------------------- breaker --

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// Breaker state for one provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests rejected until the cooldown elapses.
    Open,
    /// Probing: one trial request decides re-admission.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Verdict of [`HealthTracker::admit`] for one provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: send freely.
    Yes,
    /// Breaker cooled down: send one probe request.
    Probe,
    /// Breaker open (or a probe is already in flight): skip.
    No,
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    Open { until: Duration },
    HalfOpen { since: Duration },
}

#[derive(Debug)]
struct ProviderHealth {
    state: State,
    consecutive_failures: u32,
    total_successes: u64,
    total_failures: u64,
    ewma_latency: Option<Duration>,
}

impl ProviderHealth {
    fn new() -> Self {
        ProviderHealth {
            state: State::Closed,
            consecutive_failures: 0,
            total_successes: 0,
            total_failures: 0,
            ewma_latency: None,
        }
    }
}

/// EWMA smoothing factor for latency (higher = more reactive).
const EWMA_ALPHA: f64 = 0.3;

/// Per-provider health: success/failure counters, latency EWMAs, and the
/// circuit-breaker state machine. All methods take `&self` (internally
/// locked) so the tracker can be shared across a cluster.
pub struct HealthTracker {
    providers: Vec<Mutex<ProviderHealth>>,
    cfg: BreakerConfig,
    clock: Arc<dyn Clock>,
}

impl HealthTracker {
    /// Tracker for `n` providers, all initially closed/unknown.
    pub fn new(n: usize, cfg: BreakerConfig, clock: Arc<dyn Clock>) -> Self {
        HealthTracker {
            providers: (0..n).map(|_| Mutex::new(ProviderHealth::new())).collect(),
            cfg,
            clock,
        }
    }

    /// Number of tracked providers.
    pub fn n(&self) -> usize {
        self.providers.len()
    }

    /// The breaker configuration in force.
    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Should a request go to `provider` right now? Open breakers reject
    /// until the cooldown elapses, then admit exactly one probe; a stuck
    /// probe (no verdict within another cooldown) is re-admitted.
    pub fn admit(&self, provider: ProviderId) -> Admission {
        let Some(cell) = self.providers.get(provider) else {
            return Admission::No;
        };
        let mut h = cell.lock();
        let now = self.clock.now();
        match h.state {
            State::Closed => Admission::Yes,
            State::Open { until } => {
                if now >= until {
                    h.state = State::HalfOpen { since: now };
                    Admission::Probe
                } else {
                    Admission::No
                }
            }
            State::HalfOpen { since } => {
                // A probe is outstanding; re-probe only if it looks stuck.
                if now >= since + self.cfg.cooldown {
                    h.state = State::HalfOpen { since: now };
                    Admission::Probe
                } else {
                    Admission::No
                }
            }
        }
    }

    /// Record a successful exchange and its observed latency. Closes the
    /// breaker from any state.
    pub fn record_success(&self, provider: ProviderId, latency: Duration) {
        let Some(cell) = self.providers.get(provider) else {
            return;
        };
        let mut h = cell.lock();
        h.consecutive_failures = 0;
        h.total_successes += 1;
        h.state = State::Closed;
        h.ewma_latency = Some(match h.ewma_latency {
            None => latency,
            Some(prev) => {
                let blended =
                    EWMA_ALPHA * latency.as_secs_f64() + (1.0 - EWMA_ALPHA) * prev.as_secs_f64();
                Duration::from_secs_f64(blended)
            }
        });
    }

    /// Record a failed exchange (timeout, rejected response, transport
    /// error). Opens the breaker at the failure threshold, and re-opens it
    /// immediately when a half-open probe fails.
    pub fn record_failure(&self, provider: ProviderId) {
        let Some(cell) = self.providers.get(provider) else {
            return;
        };
        let mut h = cell.lock();
        h.consecutive_failures += 1;
        h.total_failures += 1;
        let now = self.clock.now();
        match h.state {
            State::HalfOpen { .. } => {
                h.state = State::Open {
                    until: now + self.cfg.cooldown,
                };
            }
            State::Closed if h.consecutive_failures >= self.cfg.failure_threshold => {
                h.state = State::Open {
                    until: now + self.cfg.cooldown,
                };
            }
            _ => {}
        }
    }

    /// Smoothed latency estimate, if the provider ever answered.
    pub fn ewma_latency(&self, provider: ProviderId) -> Option<Duration> {
        self.providers.get(provider)?.lock().ewma_latency
    }

    /// Current breaker state.
    pub fn breaker_state(&self, provider: ProviderId) -> BreakerState {
        match self.providers.get(provider) {
            None => BreakerState::Closed,
            Some(cell) => match cell.lock().state {
                State::Closed => BreakerState::Closed,
                State::Open { .. } => BreakerState::Open,
                State::HalfOpen { .. } => BreakerState::HalfOpen,
            },
        }
    }

    /// Point-in-time view of every provider, printable as a table.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            providers: self
                .providers
                .iter()
                .enumerate()
                .map(|(id, cell)| {
                    let h = cell.lock();
                    ProviderHealthView {
                        provider: id,
                        state: match h.state {
                            State::Closed => BreakerState::Closed,
                            State::Open { .. } => BreakerState::Open,
                            State::HalfOpen { .. } => BreakerState::HalfOpen,
                        },
                        consecutive_failures: h.consecutive_failures,
                        total_successes: h.total_successes,
                        total_failures: h.total_failures,
                        ewma_latency: h.ewma_latency,
                    }
                })
                .collect(),
        }
    }
}

/// One provider's row in a [`HealthSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderHealthView {
    /// Provider index.
    pub provider: ProviderId,
    /// Breaker state.
    pub state: BreakerState,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u32,
    /// Lifetime successes.
    pub total_successes: u64,
    /// Lifetime failures.
    pub total_failures: u64,
    /// Smoothed response latency.
    pub ewma_latency: Option<Duration>,
}

/// Printable point-in-time cluster health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// One view per provider, in provider order.
    pub providers: Vec<ProviderHealthView>,
}

impl std::fmt::Display for HealthSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "provider  breaker    streak  ok      fail    ewma")?;
        for p in &self.providers {
            writeln!(
                f,
                "{:<8}  {:<9}  {:<6}  {:<6}  {:<6}  {}",
                p.provider,
                p.state.to_string(),
                p.consecutive_failures,
                p.total_successes,
                p.total_failures,
                match p.ewma_latency {
                    Some(d) => format!("{:.2?}", d),
                    None => "-".to_string(),
                },
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- error --

/// How one provider fared during a quorum call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderOutcome {
    /// Responded and validated.
    Ok,
    /// All attempts timed out.
    TimedOut {
        /// Attempts launched.
        attempts: u32,
    },
    /// Responded, but the response failed validation every attempt.
    Rejected {
        /// Attempts launched.
        attempts: u32,
        /// Last validation failure.
        reason: String,
    },
    /// Skipped: the provider's circuit breaker was open.
    BreakerOpen,
    /// Never contacted (quorum resolved or failed without it).
    Unsent,
    /// The cluster was shut down mid-call.
    Disconnected,
}

impl std::fmt::Display for ProviderOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProviderOutcome::Ok => write!(f, "ok"),
            ProviderOutcome::TimedOut { attempts } => {
                write!(f, "timed out after {attempts} attempt(s)")
            }
            ProviderOutcome::Rejected { attempts, reason } => {
                write!(f, "rejected after {attempts} attempt(s): {reason}")
            }
            ProviderOutcome::BreakerOpen => write!(f, "skipped (breaker open)"),
            ProviderOutcome::Unsent => write!(f, "not contacted"),
            ProviderOutcome::Disconnected => write!(f, "cluster shut down"),
        }
    }
}

/// A quorum call that could not gather enough valid responses, with a
/// per-provider post-mortem (replaces the old stringly-typed
/// reconstruction error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumError {
    /// Responses required.
    pub needed: usize,
    /// Valid responses obtained.
    pub got: usize,
    /// What happened at each contacted (or skipped) provider.
    pub per_provider: Vec<(ProviderId, ProviderOutcome)>,
}

impl std::fmt::Display for QuorumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quorum unreachable: {} of the required {} providers responded",
            self.got, self.needed
        )?;
        for (p, outcome) in &self.per_provider {
            if !matches!(outcome, ProviderOutcome::Ok) {
                write!(f, "; provider {p}: {outcome}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for QuorumError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(threshold: u32, cooldown_ms: u64) -> (Arc<ManualClock>, HealthTracker) {
        let clock = Arc::new(ManualClock::new());
        let t = HealthTracker::new(
            3,
            BreakerConfig {
                failure_threshold: threshold,
                cooldown: Duration::from_millis(cooldown_ms),
            },
            clock.clone(),
        );
        (clock, t)
    }

    #[test]
    fn breaker_opens_at_threshold_and_skips() {
        let (_clock, t) = tracker(3, 100);
        assert_eq!(t.admit(1), Admission::Yes);
        t.record_failure(1);
        t.record_failure(1);
        assert_eq!(t.breaker_state(1), BreakerState::Closed, "below threshold");
        assert_eq!(t.admit(1), Admission::Yes);
        t.record_failure(1);
        assert_eq!(t.breaker_state(1), BreakerState::Open);
        assert_eq!(t.admit(1), Admission::No);
        // Other providers unaffected.
        assert_eq!(t.admit(0), Admission::Yes);
        assert_eq!(t.admit(2), Admission::Yes);
    }

    #[test]
    fn success_resets_the_streak() {
        let (_clock, t) = tracker(3, 100);
        t.record_failure(0);
        t.record_failure(0);
        t.record_success(0, Duration::from_millis(1));
        t.record_failure(0);
        t.record_failure(0);
        assert_eq!(t.breaker_state(0), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_probe_readmits_on_success() {
        let (clock, t) = tracker(2, 100);
        t.record_failure(2);
        t.record_failure(2);
        assert_eq!(t.admit(2), Admission::No);
        clock.advance(Duration::from_millis(99));
        assert_eq!(t.admit(2), Admission::No, "cooldown not elapsed");
        clock.advance(Duration::from_millis(1));
        assert_eq!(t.admit(2), Admission::Probe, "cooldown elapsed: probe");
        assert_eq!(t.breaker_state(2), BreakerState::HalfOpen);
        // While the probe is in flight, no further traffic.
        assert_eq!(t.admit(2), Admission::No);
        t.record_success(2, Duration::from_millis(2));
        assert_eq!(t.breaker_state(2), BreakerState::Closed);
        assert_eq!(t.admit(2), Admission::Yes);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let (clock, t) = tracker(2, 100);
        t.record_failure(0);
        t.record_failure(0);
        clock.advance(Duration::from_millis(100));
        assert_eq!(t.admit(0), Admission::Probe);
        t.record_failure(0);
        assert_eq!(t.breaker_state(0), BreakerState::Open);
        assert_eq!(t.admit(0), Admission::No);
        // Full new cooldown before the next probe.
        clock.advance(Duration::from_millis(99));
        assert_eq!(t.admit(0), Admission::No);
        clock.advance(Duration::from_millis(1));
        assert_eq!(t.admit(0), Admission::Probe);
    }

    #[test]
    fn stuck_probe_is_reissued_after_another_cooldown() {
        let (clock, t) = tracker(1, 50);
        t.record_failure(1);
        clock.advance(Duration::from_millis(50));
        assert_eq!(t.admit(1), Admission::Probe);
        // Probe never resolves (e.g. caller dropped it). After another
        // cooldown the tracker allows a fresh probe instead of wedging.
        clock.advance(Duration::from_millis(49));
        assert_eq!(t.admit(1), Admission::No);
        clock.advance(Duration::from_millis(1));
        assert_eq!(t.admit(1), Admission::Probe);
    }

    #[test]
    fn ewma_tracks_latency_and_snapshot_reports() {
        let (_clock, t) = tracker(5, 100);
        t.record_success(0, Duration::from_millis(10));
        assert_eq!(t.ewma_latency(0), Some(Duration::from_millis(10)));
        t.record_success(0, Duration::from_millis(20));
        let ewma = t.ewma_latency(0).unwrap();
        // 0.3·20ms + 0.7·10ms = 13ms
        assert!((ewma.as_secs_f64() - 0.013).abs() < 1e-6, "{ewma:?}");
        t.record_failure(1);
        let snap = t.snapshot();
        assert_eq!(snap.providers.len(), 3);
        assert_eq!(snap.providers[0].total_successes, 2);
        assert_eq!(snap.providers[1].total_failures, 1);
        assert_eq!(snap.providers[2].ewma_latency, None);
        let rendered = snap.to_string();
        assert!(rendered.contains("breaker"), "{rendered}");
        assert!(rendered.contains("closed"), "{rendered}");
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            per_attempt_timeout: None,
            jitter_seed: 42,
        };
        // Deterministic: same (seed, provider, attempt) → same backoff.
        assert_eq!(policy.backoff_for(1, 1), policy.backoff_for(1, 1));
        // Jitter varies across providers and attempts.
        assert_ne!(policy.backoff_for(1, 1), policy.backoff_for(2, 1));
        assert_ne!(policy.backoff_for(1, 1), policy.backoff_for(1, 2));
        // Jitter keeps every backoff within [0.5, 1.0)× the raw value.
        for attempt in 1..=6u32 {
            for provider in 0..4usize {
                let raw = Duration::from_millis(10)
                    .saturating_mul(1 << (attempt - 1))
                    .min(Duration::from_millis(50));
                let b = policy.backoff_for(provider, attempt);
                assert!(
                    b >= raw / 2 && b < raw,
                    "attempt {attempt}: {b:?} vs raw {raw:?}"
                );
            }
        }
        // Different seed shifts the schedule.
        let reseeded = policy.clone().seeded(43);
        assert_ne!(reseeded.backoff_for(1, 1), policy.backoff_for(1, 1));
    }

    #[test]
    fn quorum_error_display_names_the_sick_providers() {
        let err = QuorumError {
            needed: 3,
            got: 1,
            per_provider: vec![
                (0, ProviderOutcome::Ok),
                (1, ProviderOutcome::TimedOut { attempts: 3 }),
                (
                    2,
                    ProviderOutcome::Rejected {
                        attempts: 1,
                        reason: "bad table".into(),
                    },
                ),
                (3, ProviderOutcome::BreakerOpen),
            ],
        };
        let msg = err.to_string();
        assert!(msg.contains("1 of the required 3"), "{msg}");
        assert!(
            msg.contains("provider 1: timed out after 3 attempt(s)"),
            "{msg}"
        );
        assert!(msg.contains("provider 2: rejected"), "{msg}");
        assert!(msg.contains("breaker open"), "{msg}");
        assert!(
            !msg.contains("provider 0"),
            "healthy providers stay out of the message: {msg}"
        );
    }

    #[test]
    fn retry_policy_none_is_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
    }
}
