//! Threaded RPC fabric with failure injection and a resilient quorum
//! engine.
//!
//! Each provider runs as an OS thread owning a [`Service`] implementation
//! and serving requests from a crossbeam channel — the closest laptop
//! analogue of the paper's independent DAS sites. The client side fans
//! requests out to any subset of providers and waits with a timeout, so a
//! crashed provider degrades into a timeout exactly as a dead site would.
//!
//! Quorum calls are *first-k-wins*: every in-flight attempt replies onto
//! one shared channel tagged with an attempt token, and the engine
//! returns the moment enough valid responses have arrived — stragglers
//! are abandoned, timed-out attempts are retried per [`RetryPolicy`],
//! failures escalate to hedge launches at the next-fastest provider, and
//! providers with open circuit breakers (see
//! [`HealthTracker`](crate::resilience::HealthTracker)) are skipped
//! unless the quorum cannot be met without them.
//!
//! Failure injection (per provider, switchable at runtime):
//! * [`FailureMode::Crashed`] — requests are dropped (client times out).
//! * [`FailureMode::Omission`] — each response is dropped with probability p.
//! * [`FailureMode::Byzantine`] — each response byte-flipped with
//!   probability p (exercises share-consistency detection).

use crate::cost::TrafficStats;
use crate::resilience::{
    Admission, BreakerConfig, HealthTracker, ProviderOutcome, QuorumError, RetryPolicy, SystemClock,
};
use crate::transport::{TcpClient, TcpClientConfig};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Index of a provider within a cluster (0-based).
pub type ProviderId = usize;

/// Builds one provider's service at cluster spawn time — e.g. by
/// recovering a durable provider from its on-disk state. An `Err` carries
/// a human-readable reason and produces a dead provider slot (see
/// [`Cluster::spawn_concurrent_recovering`]).
pub type ServiceFactory = Box<dyn FnOnce() -> Result<Arc<dyn SharedService>, String> + Send>;

/// A request handler run by each provider thread.
pub trait Service: Send {
    /// Handle one request payload, producing a response payload.
    fn handle(&mut self, request: &[u8]) -> Vec<u8>;
}

impl<F> Service for F
where
    F: FnMut(&[u8]) -> Vec<u8> + Send,
{
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// A request handler that serves many requests concurrently: the worker
/// pool spawned by [`Cluster::spawn_concurrent`] calls `handle` from
/// several threads at once, so implementations synchronize internally
/// (e.g. the provider engine's read/write lock).
pub trait SharedService: Send + Sync {
    /// Handle one request payload, producing a response payload.
    fn handle(&self, request: &[u8]) -> Vec<u8>;
}

impl<F> SharedService for F
where
    F: Fn(&[u8]) -> Vec<u8> + Send + Sync,
{
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// Adapter running an exclusive [`Service`] under the concurrent spawn
/// path: a mutex serializes `handle` calls, so a single-worker pool
/// behaves exactly like the original one-thread-per-provider loop.
struct ExclusiveService(Mutex<Box<dyn Service>>);

impl SharedService for ExclusiveService {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        // dasp::allow(L1): the mutex exists to serialize the inner service;
        // the call under the guard is the whole point of this adapter.
        self.0.lock().handle(request)
    }
}

/// Per-provider failure behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureMode {
    /// Normal operation.
    Healthy,
    /// Provider is down: requests vanish.
    Crashed,
    /// Each response is dropped with this probability.
    Omission(f64),
    /// Each response is corrupted (random byte flipped) with this
    /// probability.
    Byzantine(f64),
}

/// RPC failure as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline (crashed/omitting provider).
    Timeout(ProviderId),
    /// The provider id does not exist.
    UnknownProvider(ProviderId),
    /// A quorum call could not gather enough valid responses.
    QuorumUnreachable {
        /// Responses required.
        needed: usize,
        /// Valid responses obtained.
        got: usize,
    },
    /// The cluster was shut down.
    Closed,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout(p) => write!(f, "provider {p} timed out"),
            RpcError::UnknownProvider(p) => write!(f, "unknown provider {p}"),
            RpcError::QuorumUnreachable { needed, got } => write!(
                f,
                "quorum unreachable: {got} of the required {needed} providers responded"
            ),
            RpcError::Closed => write!(f, "cluster closed"),
        }
    }
}

impl std::error::Error for RpcError {}

/// How a quorum call fans out and when it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumMode {
    /// Return as soon as enough valid responses arrive; stragglers are
    /// abandoned and providers with open breakers are skipped when the
    /// quorum can be met without them. For idempotent reads.
    FirstK,
    /// Contact every listed provider (breakers notwithstanding) and wait
    /// for each to resolve. Required for writes, which must reach all
    /// replicas and must not be silently skipped.
    All,
}

/// Tuning for [`Cluster::call_quorum_opts`].
pub struct QuorumOptions<'a> {
    /// Retry schedule for failed attempts. Use [`RetryPolicy::none`] for
    /// non-idempotent requests.
    pub retry: RetryPolicy,
    /// Extra providers contacted up front beyond the response target, to
    /// race stragglers (hedged requests). [`QuorumMode::FirstK`] only.
    pub hedge: usize,
    /// Extra responses collected beyond `need` when available (the quorum
    /// still succeeds with `need`). Lets callers cross-check shares.
    pub extra: usize,
    /// Fan-out / return discipline.
    pub mode: QuorumMode,
    /// Application-level response check; a rejected response counts as a
    /// failed attempt (retried, then reported as
    /// [`ProviderOutcome::Rejected`]).
    #[allow(clippy::type_complexity)]
    pub validate: Option<&'a dyn Fn(ProviderId, &[u8]) -> Result<(), String>>,
}

impl Default for QuorumOptions<'_> {
    fn default() -> Self {
        QuorumOptions {
            retry: RetryPolicy::none(),
            hedge: 0,
            extra: 0,
            mode: QuorumMode::FirstK,
            validate: None,
        }
    }
}

struct Envelope {
    request: Vec<u8>,
    reply_to: Sender<(u64, Vec<u8>)>,
    token: u64,
}

/// A cloneable switch over one provider's failure mode, detached from
/// the [`Cluster`] borrow so another thread can inject churn mid-call.
#[derive(Clone)]
pub struct FailureSwitch(Arc<Mutex<FailureMode>>);

impl FailureSwitch {
    /// Flip the provider's failure mode.
    pub fn set(&self, mode: FailureMode) {
        *self.0.lock() = mode;
    }

    /// The current failure mode.
    pub fn get(&self) -> FailureMode {
        *self.0.lock()
    }
}

struct ProviderHandle {
    /// `None` once the cluster has been shut down.
    tx: Option<Sender<Envelope>>,
    failure: Arc<Mutex<FailureMode>>,
    latency: Arc<Mutex<Duration>>,
    /// Worker threads draining this provider's request channel.
    threads: Vec<JoinHandle<()>>,
}

/// A running cluster of provider threads plus client-side metering and
/// per-provider health tracking.
pub struct Cluster {
    providers: Vec<ProviderHandle>,
    stats: TrafficStats,
    timeout: Duration,
    health: HealthTracker,
}

impl Cluster {
    /// Spawn one thread per service. `timeout` bounds every call.
    pub fn spawn(services: Vec<Box<dyn Service>>, timeout: Duration) -> Self {
        Self::spawn_with_breaker(services, timeout, BreakerConfig::default())
    }

    /// [`Cluster::spawn`] with custom circuit-breaker tuning.
    pub fn spawn_with_breaker(
        services: Vec<Box<dyn Service>>,
        timeout: Duration,
        breaker: BreakerConfig,
    ) -> Self {
        // An exclusive service under a 1-worker pool is behaviourally
        // identical to the original serial per-provider loop (same thread
        // count, same RNG seed, strict request ordering via the mutex).
        let shared = services
            .into_iter()
            .map(|s| Arc::new(ExclusiveService(Mutex::new(s))) as Arc<dyn SharedService>)
            .collect();
        Self::spawn_concurrent_with_breaker(shared, timeout, 1, breaker)
    }

    /// Worker-pool size used when callers don't pick one: `min(4, cores)`.
    /// Small enough that a laptop cluster of n providers doesn't
    /// oversubscribe, large enough to pipeline WAN-latency-bound requests.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4)
    }

    /// Spawn `workers` threads per provider, all draining one request
    /// channel, so a provider serves up to `workers` requests at once and
    /// responses may return out of order — the quorum engine multiplexes
    /// them by attempt token. Failure injection and latency switches are
    /// shared across a provider's workers, preserving [`FailureSwitch`]
    /// semantics.
    pub fn spawn_concurrent(
        services: Vec<Arc<dyn SharedService>>,
        timeout: Duration,
        workers: usize,
    ) -> Self {
        Self::spawn_concurrent_with_breaker(services, timeout, workers, BreakerConfig::default())
    }

    /// [`Cluster::spawn_concurrent`] with custom circuit-breaker tuning.
    pub fn spawn_concurrent_with_breaker(
        services: Vec<Arc<dyn SharedService>>,
        timeout: Duration,
        workers: usize,
        breaker: BreakerConfig,
    ) -> Self {
        let n = services.len();
        let workers = workers.max(1);
        let providers = services
            .into_iter()
            .enumerate()
            .map(|(id, service)| {
                let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
                let failure = Arc::new(Mutex::new(FailureMode::Healthy));
                let latency = Arc::new(Mutex::new(Duration::ZERO));
                let mut threads = Vec::with_capacity(workers);
                for w in 0..workers {
                    let service = Arc::clone(&service);
                    let rx = rx.clone();
                    let failure = Arc::clone(&failure);
                    let latency = Arc::clone(&latency);
                    let spawned = std::thread::Builder::new()
                        .name(format!("dasp-provider-{id}-w{w}"))
                        .spawn(move || {
                            // Worker 0 keeps the pre-pool seed so
                            // single-worker clusters inject bit-identical
                            // faults; extra workers fork the stream.
                            let mut rng =
                                StdRng::seed_from_u64(0x5eed ^ id as u64 ^ ((w as u64) << 32));
                            while let Ok(env) = rx.recv() {
                                let delay = *latency.lock();
                                if !delay.is_zero() {
                                    // Live WAN emulation: one-way request
                                    // delay (the reply path shares the same
                                    // sleep budget for simplicity).
                                    std::thread::sleep(delay);
                                }
                                let mode = *failure.lock();
                                match mode {
                                    FailureMode::Crashed => continue,
                                    FailureMode::Omission(p) => {
                                        let response = service.handle(&env.request);
                                        if rng.gen::<f64>() >= p {
                                            // dasp::allow(E1): the caller may have
                                            // timed out and dropped its reply rx;
                                            // a dead waiter is not an error here.
                                            let _ = env.reply_to.send((env.token, response));
                                        }
                                    }
                                    FailureMode::Byzantine(p) => {
                                        let mut response = service.handle(&env.request);
                                        if !response.is_empty() && rng.gen::<f64>() < p {
                                            let idx = rng.gen_range(0..response.len());
                                            let bit = rng.gen_range(0u32..8);
                                            if let Some(byte) = response.get_mut(idx) {
                                                *byte ^= 1u8 << bit;
                                            }
                                        }
                                        // dasp::allow(E1): same as above — the
                                        // waiter may be gone; drop the reply.
                                        let _ = env.reply_to.send((env.token, response));
                                    }
                                    FailureMode::Healthy => {
                                        // dasp::allow(E1): same as above — the
                                        // waiter may be gone; drop the reply.
                                        let _ = env
                                            .reply_to
                                            .send((env.token, service.handle(&env.request)));
                                    }
                                }
                            }
                        });
                    if let Ok(handle) = spawned {
                        threads.push(handle);
                    }
                }
                // If the OS refuses every worker thread, keep the handle
                // but drop the sender: every call to this provider then
                // fails with RpcError::Closed (a dead provider), instead
                // of panicking the whole cluster at construction.
                let tx = if threads.is_empty() { None } else { Some(tx) };
                ProviderHandle {
                    tx,
                    failure,
                    latency,
                    threads,
                }
            })
            .collect();
        Cluster {
            providers,
            stats: TrafficStats::new(),
            timeout,
            health: HealthTracker::new(n, breaker, Arc::new(SystemClock::new())),
        }
    }

    /// Connect a cluster to remote TCP providers (one [`TcpClient`] per
    /// address) instead of spawning in-process services. Everything
    /// above the transport — worker pools, first-k-wins quorum, hedged
    /// reads, retries, circuit breakers, failure injection — runs
    /// unchanged; the only difference is that `handle` crosses a socket.
    ///
    /// The client's `error_hold` is derived from the cluster timeout so
    /// a dead provider process surfaces as [`RpcError::Timeout`], the
    /// same observable failure as an in-process crashed provider.
    pub fn connect_tcp(
        addrs: &[std::net::SocketAddr],
        timeout: Duration,
        workers: usize,
    ) -> std::io::Result<Self> {
        Self::connect_tcp_with(addrs, timeout, workers, TcpClientConfig::default())
    }

    /// [`Cluster::connect_tcp`] with an explicit client configuration —
    /// the hook for setting [`TcpClientConfig::batch_window`] (request
    /// coalescing) or timeouts per fleet. `error_hold` and
    /// `call_timeout` are still derived from the cluster timeout so the
    /// crash/timeout equivalence contract holds regardless of the
    /// passed-in values.
    pub fn connect_tcp_with(
        addrs: &[std::net::SocketAddr],
        timeout: Duration,
        workers: usize,
        cfg: TcpClientConfig,
    ) -> std::io::Result<Self> {
        let cfg = TcpClientConfig {
            // Strictly above the cluster per-attempt timeout: the
            // cluster's deadline always fires before the transport
            // gives up, preserving crash/timeout equivalence.
            error_hold: timeout.saturating_mul(2),
            call_timeout: timeout.saturating_mul(2),
            ..cfg
        };
        let mut services: Vec<Arc<dyn SharedService>> = Vec::with_capacity(addrs.len());
        for addr in addrs {
            services.push(Arc::new(TcpClient::connect(*addr, cfg.clone())?));
        }
        Ok(Self::spawn_concurrent(services, timeout, workers))
    }

    /// Spawn a worker-pool cluster from per-provider service factories,
    /// tolerating individual construction failures. Each factory runs on
    /// the calling thread (e.g. recovering a durable provider from its
    /// directory); a factory that errors yields a *dead* provider — its
    /// slot exists, every call to it fails fast with [`RpcError::Closed`]
    /// — instead of aborting cluster construction. The per-provider
    /// errors come back alongside the cluster so callers can report or
    /// re-provision; the quorum layer treats dead slots like crashed
    /// providers.
    pub fn spawn_concurrent_recovering(
        factories: Vec<ServiceFactory>,
        timeout: Duration,
        workers: usize,
    ) -> (Self, Vec<Option<String>>) {
        struct DeadService;
        impl SharedService for DeadService {
            fn handle(&self, _request: &[u8]) -> Vec<u8> {
                Vec::new() // never reached: the slot's sender is dropped
            }
        }
        let mut errors = Vec::with_capacity(factories.len());
        let services: Vec<Arc<dyn SharedService>> = factories
            .into_iter()
            .map(|factory| match factory() {
                Ok(service) => {
                    errors.push(None);
                    service
                }
                Err(e) => {
                    errors.push(Some(e));
                    Arc::new(DeadService) as Arc<dyn SharedService>
                }
            })
            .collect();
        let mut cluster = Self::spawn_concurrent(services, timeout, workers);
        for (provider, error) in cluster.providers.iter_mut().zip(&errors) {
            if error.is_some() {
                // Dropping the sender drains the slot's workers and makes
                // every call fail with RpcError::Closed.
                provider.tx = None;
            }
        }
        (cluster, errors)
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.providers.len()
    }

    /// The shared traffic meters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Per-provider health: breaker states, failure streaks, latency
    /// EWMAs. Print `health().snapshot()` for a table.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The per-call (and default per-attempt) timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Set a provider's failure mode.
    pub fn set_failure(&self, provider: ProviderId, mode: FailureMode) {
        if let Some(h) = self.providers.get(provider) {
            *h.failure.lock() = mode;
        }
    }

    /// A cloneable, thread-safe handle to one provider's failure switch.
    /// Lets a churn thread flip failure modes while the owner of the
    /// cluster keeps issuing calls (soak tests).
    pub fn failure_switch(&self, provider: ProviderId) -> Option<FailureSwitch> {
        self.providers
            .get(provider)
            .map(|h| FailureSwitch(Arc::clone(&h.failure)))
    }

    /// Inject real per-request latency at every provider (live WAN
    /// emulation — complements the analytical [`crate::NetworkModel`]).
    /// The call timeout must exceed the injected latency.
    pub fn set_latency(&self, delay: Duration) {
        for h in &self.providers {
            *h.latency.lock() = delay;
        }
    }

    /// Inject latency at a single provider (a straggler, not a WAN).
    pub fn set_latency_for(&self, provider: ProviderId, delay: Duration) {
        if let Some(h) = self.providers.get(provider) {
            *h.latency.lock() = delay;
        }
    }

    /// Stop accepting requests and join every provider thread. In-flight
    /// requests are abandoned; subsequent calls return
    /// [`RpcError::Closed`]. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        for p in &mut self.providers {
            p.tx = None;
        }
        for p in &mut self.providers {
            for t in p.threads.drain(..) {
                let _ = t.join();
            }
        }
    }

    /// Call one provider, counting the exchange as a round trip.
    pub fn call(&self, provider: ProviderId, request: Vec<u8>) -> Result<Vec<u8>, RpcError> {
        let result = self.send_one(provider, request, self.timeout);
        self.stats.record_round_trip();
        result
    }

    /// Call one provider, retrying timed-out attempts per `policy` with
    /// jittered exponential backoff. Counts one round trip. Only use for
    /// idempotent requests.
    pub fn call_with_retry(
        &self,
        provider: ProviderId,
        request: Vec<u8>,
        policy: &RetryPolicy,
    ) -> Result<Vec<u8>, RpcError> {
        self.stats.record_round_trip();
        let per_attempt = policy.per_attempt_timeout.unwrap_or(self.timeout);
        let max_attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.send_one(provider, request.clone(), per_attempt) {
                Ok(response) => return Ok(response),
                Err(RpcError::Timeout(_)) if attempt < max_attempts => {
                    std::thread::sleep(policy.backoff_for(provider, attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn send_one(
        &self,
        provider: ProviderId,
        request: Vec<u8>,
        timeout: Duration,
    ) -> Result<Vec<u8>, RpcError> {
        let handle = self
            .providers
            .get(provider)
            .ok_or(RpcError::UnknownProvider(provider))?;
        let tx = handle.tx.as_ref().ok_or(RpcError::Closed)?;
        self.stats.record_send(request.len());
        let (reply_tx, reply_rx) = bounded(1);
        let start = Instant::now();
        tx.send(Envelope {
            request,
            reply_to: reply_tx,
            token: 0,
        })
        .map_err(|_| RpcError::Closed)?;
        match reply_rx.recv_timeout(timeout) {
            Ok((_token, response)) => {
                self.stats.record_recv(response.len());
                self.health.record_success(provider, start.elapsed());
                Ok(response)
            }
            Err(_) => {
                self.health.record_failure(provider);
                Err(RpcError::Timeout(provider))
            }
        }
    }

    /// Fan a (provider-specific) request out to a subset of providers in
    /// parallel; returns per-provider results. Counts one round trip.
    pub fn call_many(
        &self,
        requests: Vec<(ProviderId, Vec<u8>)>,
    ) -> Vec<(ProviderId, Result<Vec<u8>, RpcError>)> {
        type Slot = (ProviderId, Result<Vec<u8>, RpcError>);
        let n = self.providers.len();
        let mut slots: Vec<Slot> = Vec::new();
        let mut valid = Vec::new();
        let mut valid_pos = Vec::new();
        for (i, (provider, request)) in requests.into_iter().enumerate() {
            if provider < n {
                valid_pos.push(i);
                valid.push((provider, request));
                // Placeholder, overwritten below: run_quorum in All mode
                // resolves every submitted request exactly once.
                slots.push((provider, Err(RpcError::Timeout(provider))));
            } else {
                slots.push((provider, Err(RpcError::UnknownProvider(provider))));
            }
        }
        let opts = QuorumOptions {
            mode: QuorumMode::All,
            ..Default::default()
        };
        let resolutions = self.run_quorum(valid, 0, &opts);
        for (pos, (provider, resolution)) in valid_pos.into_iter().zip(resolutions) {
            let resolved = (
                provider,
                match resolution {
                    Ok(response) => Ok(response),
                    Err(ProviderOutcome::Disconnected) => Err(RpcError::Closed),
                    Err(_) => Err(RpcError::Timeout(provider)),
                },
            );
            if let Some(slot) = slots.get_mut(pos) {
                *slot = resolved;
            }
        }
        slots
    }

    /// Fan out and return as soon as `k` successes arrive (the paper's
    /// "any k of the service providers must be available"). Responses
    /// beyond the first k successes may be discarded.
    pub fn call_quorum(
        &self,
        requests: Vec<(ProviderId, Vec<u8>)>,
        k: usize,
    ) -> Result<Vec<(ProviderId, Vec<u8>)>, RpcError> {
        let opts = QuorumOptions {
            hedge: usize::MAX,
            ..Default::default()
        };
        self.call_quorum_opts(requests, k, &opts)
            .map_err(|e| RpcError::QuorumUnreachable {
                needed: e.needed,
                got: e.got,
            })
    }

    /// First-k-wins quorum call with retries, hedging, and breaker-aware
    /// provider selection. Returns the successful `(provider, response)`
    /// pairs in request order — at least `need` of them, up to
    /// `need + extra` — or a [`QuorumError`] post-mortem.
    pub fn call_quorum_opts(
        &self,
        requests: Vec<(ProviderId, Vec<u8>)>,
        need: usize,
        opts: &QuorumOptions<'_>,
    ) -> Result<Vec<(ProviderId, Vec<u8>)>, QuorumError> {
        let resolutions = self.run_quorum(requests, need, opts);
        let got = resolutions.iter().filter(|(_, r)| r.is_ok()).count();
        if got >= need {
            Ok(resolutions
                .into_iter()
                .filter_map(|(p, r)| r.ok().map(|v| (p, v)))
                .collect())
        } else {
            Err(QuorumError {
                needed: need,
                got,
                per_provider: resolutions
                    .into_iter()
                    .map(|(p, r)| {
                        (
                            p,
                            match r {
                                Ok(_) => ProviderOutcome::Ok,
                                Err(outcome) => outcome,
                            },
                        )
                    })
                    .collect(),
            })
        }
    }

    /// The quorum engine: one shared reply channel, token-tagged
    /// attempts, an event loop over response/timeout/retry deadlines.
    /// Returns each request's resolution in request order.
    fn run_quorum(
        &self,
        requests: Vec<(ProviderId, Vec<u8>)>,
        need: usize,
        opts: &QuorumOptions<'_>,
    ) -> Vec<(ProviderId, Result<Vec<u8>, ProviderOutcome>)> {
        self.stats.record_round_trip();
        let n_req = requests.len();
        let want = match opts.mode {
            QuorumMode::All => n_req,
            QuorumMode::FirstK => need.saturating_add(opts.extra).min(n_req),
        };
        let per_attempt = opts.retry.per_attempt_timeout.unwrap_or(self.timeout);
        let max_attempts = opts.retry.max_attempts.max(1);

        struct Cand {
            provider: ProviderId,
            request: Vec<u8>,
            attempts: u32,
            /// (token, sent_at, deadline) of the attempt in flight.
            live: Option<(u64, Instant, Instant)>,
            retry_at: Option<Instant>,
            held: bool,
            done: Option<Result<Vec<u8>, ProviderOutcome>>,
        }

        let mut cands: Vec<Cand> = requests
            .into_iter()
            .map(|(provider, request)| Cand {
                provider,
                request,
                attempts: 0,
                live: None,
                retry_at: None,
                held: false,
                done: if provider < self.providers.len() {
                    None
                } else {
                    Some(Err(ProviderOutcome::Unsent))
                },
            })
            .collect();

        // Launch order: admitted candidates, fastest EWMA first with
        // never-measured providers leading (so they get sampled), then —
        // only when the quorum cannot be met otherwise — providers whose
        // breaker is open.
        let mut admitted: Vec<usize> = Vec::new();
        let mut held: VecDeque<usize> = VecDeque::new();
        for (idx, c) in cands.iter_mut().enumerate() {
            if c.done.is_some() {
                continue;
            }
            let admit = match opts.mode {
                QuorumMode::All => Admission::Yes,
                QuorumMode::FirstK => self.health.admit(c.provider),
            };
            if admit == Admission::No {
                c.held = true;
                held.push_back(idx);
            } else {
                admitted.push(idx);
            }
        }
        admitted.sort_by_key(|&i| {
            let p = cands[i].provider;
            match self.health.ewma_latency(p) {
                None => (0u8, Duration::ZERO, p),
                Some(d) => (1u8, d, p),
            }
        });
        let mut ready: VecDeque<usize> = admitted.into();

        let (reply_tx, reply_rx) = unbounded::<(u64, Vec<u8>)>();
        // token → (candidate index, sent_at); stale tokens stay mapped so
        // a slow first attempt can still satisfy its candidate.
        let mut token_map: HashMap<u64, (usize, Instant)> = HashMap::new();
        let mut next_token: u64 = 0;
        let mut successes = 0usize;

        let launch = |cands: &mut [Cand],
                      idx: usize,
                      token_map: &mut HashMap<u64, (usize, Instant)>,
                      next_token: &mut u64| {
            let c = &mut cands[idx];
            c.attempts += 1;
            let token = *next_token;
            *next_token += 1;
            let now = Instant::now();
            let sent = match self.providers[c.provider].tx.as_ref() {
                Some(tx) => {
                    self.stats.record_send(c.request.len());
                    tx.send(Envelope {
                        request: c.request.clone(),
                        reply_to: reply_tx.clone(),
                        token,
                    })
                    .is_ok()
                }
                None => false,
            };
            if sent {
                token_map.insert(token, (idx, now));
                c.live = Some((token, now, now + per_attempt));
            } else {
                c.done = Some(Err(ProviderOutcome::Disconnected));
            }
        };

        // Initial wave: everything in All mode; the response target plus
        // the hedge allowance in FirstK mode.
        let wave = match opts.mode {
            QuorumMode::All => ready.len(),
            QuorumMode::FirstK => want.saturating_add(opts.hedge).min(ready.len()),
        };
        for _ in 0..wave {
            let Some(idx) = ready.pop_front() else { break };
            launch(&mut cands, idx, &mut token_map, &mut next_token);
        }

        loop {
            let now = Instant::now();

            // Finalize attempts past their deadline: record the failure,
            // schedule a retry if budget and the quorum still need it,
            // and escalate by launching the next-best unsent provider.
            let timed_out: Vec<usize> = cands
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.done.is_none() && matches!(c.live, Some((_, _, dl)) if now >= dl)
                })
                .map(|(i, _)| i)
                .collect();
            for idx in timed_out {
                let provider = cands[idx].provider;
                self.health.record_failure(provider);
                cands[idx].live = None;
                if cands[idx].attempts < max_attempts && successes < need {
                    cands[idx].retry_at =
                        Some(now + opts.retry.backoff_for(provider, cands[idx].attempts));
                } else {
                    let attempts = cands[idx].attempts;
                    cands[idx].done = Some(Err(ProviderOutcome::TimedOut { attempts }));
                }
                if successes < want {
                    if let Some(next) = ready.pop_front() {
                        launch(&mut cands, next, &mut token_map, &mut next_token);
                    }
                }
            }

            // Fire retries that have cooled down.
            let due: Vec<usize> = cands
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.done.is_none()
                        && c.live.is_none()
                        && matches!(c.retry_at, Some(at) if now >= at)
                })
                .map(|(i, _)| i)
                .collect();
            for idx in due {
                cands[idx].retry_at = None;
                if successes < need {
                    launch(&mut cands, idx, &mut token_map, &mut next_token);
                } else {
                    let attempts = cands[idx].attempts;
                    cands[idx].done = Some(Err(ProviderOutcome::TimedOut { attempts }));
                }
            }

            // Quorum met: cancel pending retries so only live attempts
            // can still add responses (bounds degraded-read latency).
            if successes >= need {
                for c in cands.iter_mut() {
                    if c.done.is_none() && c.live.is_none() && c.retry_at.take().is_some() {
                        c.done = Some(Err(ProviderOutcome::TimedOut {
                            attempts: c.attempts,
                        }));
                    }
                }
            }

            // Top up: the quorum must stay reachable — force-include
            // held (breaker-open) providers when nothing else remains.
            // (`successes` is fixed here; each `launch` grows `live`
            // until the invariant holds or the queues run dry.)
            loop {
                if successes >= need {
                    break;
                }
                let live = cands
                    .iter()
                    .filter(|c| c.done.is_none() && c.live.is_some())
                    .count();
                let retries = cands
                    .iter()
                    .filter(|c| c.done.is_none() && c.retry_at.is_some())
                    .count();
                if successes + live + retries >= need {
                    break;
                }
                let Some(idx) = ready.pop_front().or_else(|| held.pop_front()) else {
                    break;
                };
                launch(&mut cands, idx, &mut token_map, &mut next_token);
            }

            if successes >= want {
                break;
            }
            let live = cands
                .iter()
                .filter(|c| c.done.is_none() && c.live.is_some())
                .count();
            let retries = cands
                .iter()
                .filter(|c| c.done.is_none() && c.retry_at.is_some())
                .count();
            if live == 0 && retries == 0 {
                break;
            }

            // Sleep until the next deadline or the next response.
            let next_event = cands
                .iter()
                .filter(|c| c.done.is_none())
                .flat_map(|c| c.live.map(|(_, _, dl)| dl).into_iter().chain(c.retry_at))
                .min();
            let Some(next_event) = next_event else { break };
            let wait = next_event
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO);
            let Ok((token, payload)) = reply_rx.recv_timeout(wait) else {
                continue;
            };
            let Some(&(idx, sent_at)) = token_map.get(&token) else {
                continue;
            };
            if cands[idx].done.is_some() {
                continue; // duplicate/late response for a settled candidate
            }
            self.stats.record_recv(payload.len());
            let provider = cands[idx].provider;
            let verdict = match opts.validate {
                Some(f) => f(provider, &payload),
                None => Ok(()),
            };
            match verdict {
                Ok(()) => {
                    self.health.record_success(provider, sent_at.elapsed());
                    cands[idx].live = None;
                    cands[idx].retry_at = None;
                    cands[idx].done = Some(Ok(payload));
                    successes += 1;
                }
                Err(reason) => {
                    self.health.record_failure(provider);
                    if cands[idx].live.map(|(t, _, _)| t) == Some(token) {
                        cands[idx].live = None;
                    }
                    if cands[idx].live.is_none() && cands[idx].retry_at.is_none() {
                        if cands[idx].attempts < max_attempts && successes < need {
                            cands[idx].retry_at = Some(
                                Instant::now()
                                    + opts.retry.backoff_for(provider, cands[idx].attempts),
                            );
                        } else {
                            let attempts = cands[idx].attempts;
                            cands[idx].done =
                                Some(Err(ProviderOutcome::Rejected { attempts, reason }));
                        }
                    }
                    if successes < want {
                        if let Some(next) = ready.pop_front() {
                            launch(&mut cands, next, &mut token_map, &mut next_token);
                        }
                    }
                }
            }
        }

        cands
            .into_iter()
            .map(|c| {
                let resolution = match c.done {
                    Some(r) => r,
                    None if c.attempts > 0 => Err(ProviderOutcome::TimedOut {
                        attempts: c.attempts,
                    }),
                    None if c.held => Err(ProviderOutcome::BreakerOpen),
                    None => Err(ProviderOutcome::Unsent),
                };
                (c.provider, resolution)
            })
            .collect()
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_cluster(n: usize) -> Cluster {
        let services: Vec<Box<dyn Service>> = (0..n)
            .map(|id| {
                Box::new(move |req: &[u8]| {
                    let mut out = vec![id as u8];
                    out.extend_from_slice(req);
                    out
                }) as Box<dyn Service>
            })
            .collect();
        Cluster::spawn(services, Duration::from_millis(200))
    }

    #[test]
    fn call_roundtrip() {
        let cluster = echo_cluster(3);
        let resp = cluster.call(1, b"ping".to_vec()).unwrap();
        assert_eq!(resp, b"\x01ping");
    }

    #[test]
    fn unknown_provider() {
        let cluster = echo_cluster(2);
        assert_eq!(cluster.call(5, vec![]), Err(RpcError::UnknownProvider(5)));
    }

    #[test]
    fn crashed_provider_times_out_but_others_serve() {
        let cluster = echo_cluster(3);
        cluster.set_failure(0, FailureMode::Crashed);
        assert_eq!(cluster.call(0, b"x".to_vec()), Err(RpcError::Timeout(0)));
        assert!(cluster.call(1, b"x".to_vec()).is_ok());
        // Recovery.
        cluster.set_failure(0, FailureMode::Healthy);
        assert!(cluster.call(0, b"x".to_vec()).is_ok());
    }

    #[test]
    fn fan_out_hits_all() {
        let cluster = echo_cluster(4);
        let reqs = (0..4).map(|i| (i, vec![i as u8])).collect();
        let results = cluster.call_many(reqs);
        assert_eq!(results.len(), 4);
        for (provider, result) in results {
            assert_eq!(result.unwrap(), vec![provider as u8, provider as u8]);
        }
        // One fan-out = one round trip.
        assert_eq!(cluster.stats().snapshot().round_trips, 1);
    }

    #[test]
    fn fan_out_reports_unknown_providers_in_order() {
        let cluster = echo_cluster(2);
        let results = cluster.call_many(vec![(0, vec![1]), (7, vec![2]), (1, vec![3])]);
        assert_eq!(results.len(), 3);
        assert!(results[0].1.is_ok());
        assert_eq!(results[1].1, Err(RpcError::UnknownProvider(7)));
        assert!(results[2].1.is_ok());
    }

    #[test]
    fn quorum_tolerates_crashes() {
        let cluster = echo_cluster(4);
        cluster.set_failure(2, FailureMode::Crashed);
        let reqs = (0..4).map(|i| (i, vec![9])).collect();
        let got = cluster.call_quorum(reqs, 2).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(p, _)| *p != 2));
    }

    #[test]
    fn quorum_unreachable_when_too_many_crash() {
        let cluster = echo_cluster(3);
        cluster.set_failure(0, FailureMode::Crashed);
        cluster.set_failure(1, FailureMode::Crashed);
        let reqs = (0..3).map(|i| (i, vec![])).collect();
        assert_eq!(
            cluster.call_quorum(reqs, 2),
            Err(RpcError::QuorumUnreachable { needed: 2, got: 1 })
        );
    }

    #[test]
    fn first_k_wins_ignores_a_slow_straggler() {
        let cluster = echo_cluster(5);
        cluster.set_latency_for(4, Duration::from_millis(120));
        let reqs = (0..5).map(|i| (i, vec![7])).collect();
        let start = Instant::now();
        let got = cluster.call_quorum(reqs, 3).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(p, _)| *p != 4), "straggler not awaited");
        assert!(
            elapsed < Duration::from_millis(100),
            "first-k-wins returned in {elapsed:?}, must beat the straggler"
        );
    }

    #[test]
    fn hedged_extra_responses_are_returned_when_available() {
        let cluster = echo_cluster(4);
        let opts = QuorumOptions {
            extra: 1,
            hedge: 1,
            ..Default::default()
        };
        let reqs = (0..4).map(|i| (i, vec![1])).collect();
        let got = cluster.call_quorum_opts(reqs, 2, &opts).unwrap();
        assert_eq!(got.len(), 3, "need + extra responses collected");
    }

    #[test]
    fn quorum_succeeds_with_need_when_extra_is_unavailable() {
        let cluster = echo_cluster(3);
        cluster.set_failure(2, FailureMode::Crashed);
        let opts = QuorumOptions {
            extra: 1,
            hedge: 2,
            ..Default::default()
        };
        let reqs = (0..3).map(|i| (i, vec![1])).collect();
        let got = cluster.call_quorum_opts(reqs, 2, &opts).unwrap();
        assert_eq!(got.len(), 2, "extra is best-effort, need is the floor");
    }

    #[test]
    fn validator_rejections_do_not_count_toward_quorum() {
        let cluster = echo_cluster(3);
        let reject_p0 = |p: ProviderId, _resp: &[u8]| {
            if p == 0 {
                Err("untrusted share".to_string())
            } else {
                Ok(())
            }
        };
        let opts = QuorumOptions {
            hedge: usize::MAX,
            validate: Some(&reject_p0),
            ..Default::default()
        };
        let reqs: Vec<_> = (0..3).map(|i| (i, vec![1])).collect();
        let got = cluster.call_quorum_opts(reqs.clone(), 2, &opts).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(p, _)| *p != 0));

        let err = cluster.call_quorum_opts(reqs, 3, &opts).unwrap_err();
        assert_eq!(err.needed, 3);
        assert_eq!(err.got, 2);
        assert!(err.per_provider.iter().any(|(p, o)| {
            *p == 0 && matches!(o, ProviderOutcome::Rejected { reason, .. } if reason == "untrusted share")
        }));
    }

    #[test]
    fn retry_heals_an_omitting_provider() {
        let cluster = echo_cluster(1);
        cluster.set_failure(0, FailureMode::Omission(0.7));
        let policy = RetryPolicy {
            max_attempts: 30,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            per_attempt_timeout: Some(Duration::from_millis(25)),
            jitter_seed: 7,
        };
        let resp = cluster
            .call_with_retry(0, b"hi".to_vec(), &policy)
            .expect("retries ride out omission faults");
        assert_eq!(resp, b"\x00hi");
        assert_eq!(cluster.stats().snapshot().round_trips, 1);
    }

    #[test]
    fn quorum_retries_heal_omission_faults() {
        let cluster = echo_cluster(3);
        cluster.set_failure(1, FailureMode::Omission(0.9));
        let opts = QuorumOptions {
            retry: RetryPolicy {
                max_attempts: 40,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                per_attempt_timeout: Some(Duration::from_millis(20)),
                jitter_seed: 3,
            },
            mode: QuorumMode::All,
            ..Default::default()
        };
        let reqs = (0..3).map(|i| (i, vec![5])).collect();
        let got = cluster.call_quorum_opts(reqs, 3, &opts).unwrap();
        assert_eq!(got.len(), 3, "omitting provider healed by retries");
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_recovers() {
        let services: Vec<Box<dyn Service>> = (0..2)
            .map(|_| Box::new(|req: &[u8]| req.to_vec()) as Box<dyn Service>)
            .collect();
        let mut cluster = Cluster::spawn_with_breaker(
            services,
            Duration::from_millis(50),
            BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(80),
            },
        );
        cluster.set_failure(0, FailureMode::Crashed);
        assert!(cluster.call(0, vec![1]).is_err());
        assert!(cluster.call(0, vec![1]).is_err());
        assert_eq!(
            cluster.health().breaker_state(0),
            crate::resilience::BreakerState::Open
        );

        // FirstK quorum skips the sick provider entirely.
        let reqs: Vec<_> = (0..2).map(|i| (i, vec![2])).collect();
        let opts = QuorumOptions {
            hedge: usize::MAX,
            ..Default::default()
        };
        let start = Instant::now();
        let got = cluster.call_quorum_opts(reqs.clone(), 1, &opts).unwrap();
        assert_eq!(got, vec![(1, vec![2])]);
        assert!(
            start.elapsed() < Duration::from_millis(40),
            "open breaker must not cost a timeout"
        );

        // After healing + cooldown, a half-open probe re-admits it.
        cluster.set_failure(0, FailureMode::Healthy);
        std::thread::sleep(Duration::from_millis(100));
        let got = cluster.call_quorum_opts(reqs, 2, &opts).unwrap();
        assert_eq!(got.len(), 2, "probe re-admits the healed provider");
        assert_eq!(
            cluster.health().breaker_state(0),
            crate::resilience::BreakerState::Closed
        );
        cluster.shutdown();
    }

    #[test]
    fn open_breaker_is_force_included_when_quorum_requires_it() {
        let services: Vec<Box<dyn Service>> = (0..2)
            .map(|_| Box::new(|req: &[u8]| req.to_vec()) as Box<dyn Service>)
            .collect();
        let cluster = Cluster::spawn_with_breaker(
            services,
            Duration::from_millis(50),
            BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_secs(3600),
            },
        );
        cluster.set_failure(0, FailureMode::Crashed);
        assert!(cluster.call(0, vec![1]).is_err());
        cluster.set_failure(0, FailureMode::Healthy);
        // Breaker on 0 is open with an hour of cooldown left, but a
        // quorum of 2 of 2 cannot be met without it.
        let reqs: Vec<_> = (0..2).map(|i| (i, vec![3])).collect();
        let got = cluster
            .call_quorum_opts(reqs, 2, &QuorumOptions::default())
            .unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn shutdown_makes_subsequent_calls_fail_fast() {
        let mut cluster = echo_cluster(2);
        assert!(cluster.call(0, vec![1]).is_ok());
        cluster.shutdown();
        cluster.shutdown(); // idempotent
        let start = Instant::now();
        assert_eq!(cluster.call(0, vec![1]), Err(RpcError::Closed));
        assert!(
            start.elapsed() < Duration::from_millis(50),
            "no timeout wait"
        );
        let results = cluster.call_many(vec![(0, vec![1]), (1, vec![2])]);
        assert!(results.iter().all(|(_, r)| *r == Err(RpcError::Closed)));
        let err = cluster
            .call_quorum((0..2).map(|i| (i, vec![])).collect(), 1)
            .unwrap_err();
        assert_eq!(err, RpcError::QuorumUnreachable { needed: 1, got: 0 });
    }

    #[test]
    fn byzantine_mode_corrupts_responses() {
        let cluster = echo_cluster(1);
        cluster.set_failure(0, FailureMode::Byzantine(1.0));
        let mut corrupted = 0;
        for _ in 0..20 {
            let resp = cluster.call(0, b"abc".to_vec()).unwrap();
            if resp != b"\x00abc" {
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 20, "p=1.0 must corrupt every response");
    }

    #[test]
    fn omission_mode_drops_some() {
        let cluster = echo_cluster(1);
        cluster.set_failure(0, FailureMode::Omission(1.0));
        assert_eq!(cluster.call(0, vec![1]), Err(RpcError::Timeout(0)));
        cluster.set_failure(0, FailureMode::Omission(0.0));
        assert!(cluster.call(0, vec![1]).is_ok());
    }

    #[test]
    fn traffic_is_metered() {
        let cluster = echo_cluster(2);
        cluster.call(0, vec![0u8; 100]).unwrap();
        let snap = cluster.stats().snapshot();
        assert_eq!(snap.bytes_sent, 100);
        assert_eq!(snap.bytes_received, 101);
        assert_eq!(snap.messages_sent, 1);
    }

    #[test]
    fn injected_latency_slows_calls_and_parallel_fanout_shares_it() {
        let cluster = echo_cluster(3);
        cluster.set_latency(Duration::from_millis(30));
        let start = std::time::Instant::now();
        cluster.call(0, vec![1]).unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(30),
            "serial call delayed"
        );
        // Fan-out to all three in parallel: latency is paid once, not 3×.
        let start = std::time::Instant::now();
        let results = cluster.call_many((0..3).map(|p| (p, vec![2])).collect());
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(30));
        assert!(
            elapsed < Duration::from_millis(85),
            "parallel fan-out took {elapsed:?}; latency must not serialize"
        );
        cluster.set_latency(Duration::ZERO);
        let start = std::time::Instant::now();
        cluster.call(0, vec![3]).unwrap();
        assert!(
            start.elapsed() < Duration::from_millis(25),
            "latency cleared"
        );
    }

    #[test]
    fn health_snapshot_reflects_call_outcomes() {
        let cluster = echo_cluster(2);
        cluster.call(0, vec![1]).unwrap();
        cluster.set_failure(1, FailureMode::Crashed);
        let _ = cluster.call(1, vec![1]);
        let snap = cluster.health().snapshot();
        assert_eq!(snap.providers[0].total_successes, 1);
        assert!(snap.providers[0].ewma_latency.is_some());
        assert_eq!(snap.providers[1].total_failures, 1);
    }

    /// One provider whose per-request sleep is the first request byte
    /// (in milliseconds), echoing the request back.
    fn sleepy_shared_provider() -> Arc<dyn SharedService> {
        Arc::new(|req: &[u8]| {
            let ms = u64::from(req.first().copied().unwrap_or(0));
            std::thread::sleep(Duration::from_millis(ms));
            req.to_vec()
        })
    }

    #[test]
    fn default_workers_is_bounded() {
        let w = Cluster::default_workers();
        assert!((1..=4).contains(&w), "default workers {w}");
    }

    #[test]
    fn worker_pool_overlaps_slow_and_fast_requests() {
        // Two workers: a 60 ms request must not serialize behind-queued
        // fast requests; responses multiplex back by token, out of order.
        let cluster =
            Cluster::spawn_concurrent(vec![sleepy_shared_provider()], Duration::from_secs(2), 2);
        let start = Instant::now();
        let results = cluster.call_many(vec![(0, vec![60, 1]), (0, vec![20, 2]), (0, vec![20, 3])]);
        let elapsed = start.elapsed();
        // Every request got its own reply despite the shared channel.
        assert_eq!(results.len(), 3);
        for (i, expect) in [vec![60u8, 1], vec![20, 2], vec![20, 3]].iter().enumerate() {
            assert_eq!(results[i].1.as_ref().unwrap(), expect, "slot {i}");
        }
        // Compare against a serial replay rather than a wall-clock bound,
        // so the assertion holds on loaded machines too: one worker pays
        // the 60 ms sleep plus both 20 ms requests end to end (~100 ms),
        // while two workers overlap them inside the 60 ms (~40 ms of
        // slack, enough that scheduler jitter cannot flip the verdict).
        let serial = {
            let cluster = Cluster::spawn_concurrent(
                vec![sleepy_shared_provider()],
                Duration::from_secs(2),
                1,
            );
            let start = Instant::now();
            let results =
                cluster.call_many(vec![(0, vec![60, 1]), (0, vec![20, 2]), (0, vec![20, 3])]);
            assert!(results.iter().all(|(_, r)| r.is_ok()));
            start.elapsed()
        };
        assert!(
            elapsed < serial,
            "2-worker pool ({elapsed:?}) must beat the serial provider ({serial:?})"
        );
    }

    #[test]
    fn worker_pool_preserves_failure_switch_semantics() {
        let cluster =
            Cluster::spawn_concurrent(vec![sleepy_shared_provider()], Duration::from_millis(80), 4);
        cluster.set_failure(0, FailureMode::Crashed);
        assert_eq!(cluster.call(0, vec![0]), Err(RpcError::Timeout(0)));
        cluster.set_failure(0, FailureMode::Healthy);
        assert_eq!(cluster.call(0, vec![0, 9]).unwrap(), vec![0, 9]);
    }

    #[test]
    fn concurrent_cluster_shutdown_joins_all_workers() {
        let mut cluster = Cluster::spawn_concurrent(
            vec![sleepy_shared_provider()],
            Duration::from_millis(200),
            3,
        );
        assert!(cluster.call(0, vec![1]).is_ok());
        cluster.shutdown();
        cluster.shutdown(); // idempotent
        assert_eq!(cluster.call(0, vec![1]), Err(RpcError::Closed));
    }

    #[test]
    fn stateful_service_keeps_state_across_calls() {
        struct Counter(u64);
        impl Service for Counter {
            fn handle(&mut self, _req: &[u8]) -> Vec<u8> {
                self.0 += 1;
                self.0.to_le_bytes().to_vec()
            }
        }
        let cluster = Cluster::spawn(vec![Box::new(Counter(0))], Duration::from_millis(200));
        cluster.call(0, vec![]).unwrap();
        let second = cluster.call(0, vec![]).unwrap();
        assert_eq!(u64::from_le_bytes(second.try_into().unwrap()), 2);
    }
}
