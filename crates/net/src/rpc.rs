//! Threaded RPC fabric with failure injection.
//!
//! Each provider runs as an OS thread owning a [`Service`] implementation
//! and serving requests from a crossbeam channel — the closest laptop
//! analogue of the paper's independent DAS sites. The client side fans
//! requests out to any subset of providers and waits with a timeout, so a
//! crashed provider degrades into a timeout exactly as a dead site would.
//!
//! Failure injection (per provider, switchable at runtime):
//! * [`FailureMode::Crashed`] — requests are dropped (client times out).
//! * [`FailureMode::Omission`] — each response is dropped with probability p.
//! * [`FailureMode::Byzantine`] — each response byte-flipped with
//!   probability p (exercises share-consistency detection).

use crate::cost::TrafficStats;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Index of a provider within a cluster (0-based).
pub type ProviderId = usize;

/// A request handler run by each provider thread.
pub trait Service: Send {
    /// Handle one request payload, producing a response payload.
    fn handle(&mut self, request: &[u8]) -> Vec<u8>;
}

impl<F> Service for F
where
    F: FnMut(&[u8]) -> Vec<u8> + Send,
{
    fn handle(&mut self, request: &[u8]) -> Vec<u8> {
        self(request)
    }
}

/// Per-provider failure behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureMode {
    /// Normal operation.
    Healthy,
    /// Provider is down: requests vanish.
    Crashed,
    /// Each response is dropped with this probability.
    Omission(f64),
    /// Each response is corrupted (random byte flipped) with this
    /// probability.
    Byzantine(f64),
}

/// RPC failure as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline (crashed/omitting provider).
    Timeout(ProviderId),
    /// The provider id does not exist.
    UnknownProvider(ProviderId),
    /// The cluster was shut down.
    Closed,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Timeout(p) => write!(f, "provider {p} timed out"),
            RpcError::UnknownProvider(p) => write!(f, "unknown provider {p}"),
            RpcError::Closed => write!(f, "cluster closed"),
        }
    }
}

impl std::error::Error for RpcError {}

struct Envelope {
    request: Vec<u8>,
    reply_to: Sender<Vec<u8>>,
}

struct ProviderHandle {
    tx: Sender<Envelope>,
    failure: Arc<Mutex<FailureMode>>,
    latency: Arc<Mutex<Duration>>,
    thread: Option<JoinHandle<()>>,
}

/// A running cluster of provider threads plus client-side metering.
pub struct Cluster {
    providers: Vec<ProviderHandle>,
    stats: TrafficStats,
    timeout: Duration,
}

impl Cluster {
    /// Spawn one thread per service. `timeout` bounds every call.
    pub fn spawn(services: Vec<Box<dyn Service>>, timeout: Duration) -> Self {
        let providers = services
            .into_iter()
            .enumerate()
            .map(|(id, mut service)| {
                let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
                let failure = Arc::new(Mutex::new(FailureMode::Healthy));
                let failure_clone = Arc::clone(&failure);
                let latency = Arc::new(Mutex::new(Duration::ZERO));
                let latency_clone = Arc::clone(&latency);
                let thread = std::thread::Builder::new()
                    .name(format!("dasp-provider-{id}"))
                    .spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0x5eed ^ id as u64);
                        while let Ok(env) = rx.recv() {
                            let delay = *latency_clone.lock();
                            if !delay.is_zero() {
                                // Live WAN emulation: one-way request delay
                                // (the reply path shares the same sleep
                                // budget for simplicity).
                                std::thread::sleep(delay);
                            }
                            let mode = *failure_clone.lock();
                            match mode {
                                FailureMode::Crashed => continue,
                                FailureMode::Omission(p) => {
                                    let response = service.handle(&env.request);
                                    if rng.gen::<f64>() >= p {
                                        let _ = env.reply_to.send(response);
                                    }
                                }
                                FailureMode::Byzantine(p) => {
                                    let mut response = service.handle(&env.request);
                                    if !response.is_empty() && rng.gen::<f64>() < p {
                                        let idx = rng.gen_range(0..response.len());
                                        response[idx] ^= 1 << rng.gen_range(0..8);
                                    }
                                    let _ = env.reply_to.send(response);
                                }
                                FailureMode::Healthy => {
                                    let _ = env.reply_to.send(service.handle(&env.request));
                                }
                            }
                        }
                    })
                    .expect("spawn provider thread");
                ProviderHandle {
                    tx,
                    failure,
                    latency,
                    thread: Some(thread),
                }
            })
            .collect();
        Cluster {
            providers,
            stats: TrafficStats::new(),
            timeout,
        }
    }

    /// Number of providers.
    pub fn n(&self) -> usize {
        self.providers.len()
    }

    /// The shared traffic meters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Set a provider's failure mode.
    pub fn set_failure(&self, provider: ProviderId, mode: FailureMode) {
        if let Some(h) = self.providers.get(provider) {
            *h.failure.lock() = mode;
        }
    }

    /// Inject real per-request latency at every provider (live WAN
    /// emulation — complements the analytical [`crate::NetworkModel`]).
    /// The call timeout must exceed the injected latency.
    pub fn set_latency(&self, delay: Duration) {
        for h in &self.providers {
            *h.latency.lock() = delay;
        }
    }

    /// Call one provider, counting the exchange as a round trip.
    pub fn call(&self, provider: ProviderId, request: Vec<u8>) -> Result<Vec<u8>, RpcError> {
        let result = self.send_one(provider, request);
        self.stats.record_round_trip();
        result
    }

    fn send_one(&self, provider: ProviderId, request: Vec<u8>) -> Result<Vec<u8>, RpcError> {
        let handle = self
            .providers
            .get(provider)
            .ok_or(RpcError::UnknownProvider(provider))?;
        self.stats.record_send(request.len());
        let (reply_tx, reply_rx) = bounded(1);
        handle
            .tx
            .send(Envelope {
                request,
                reply_to: reply_tx,
            })
            .map_err(|_| RpcError::Closed)?;
        match reply_rx.recv_timeout(self.timeout) {
            Ok(response) => {
                self.stats.record_recv(response.len());
                Ok(response)
            }
            Err(RecvTimeoutError::Timeout) => Err(RpcError::Timeout(provider)),
            Err(RecvTimeoutError::Disconnected) => Err(RpcError::Timeout(provider)),
        }
    }

    /// Fan a (provider-specific) request out to a subset of providers in
    /// parallel; returns per-provider results. Counts one round trip.
    pub fn call_many(
        &self,
        requests: Vec<(ProviderId, Vec<u8>)>,
    ) -> Vec<(ProviderId, Result<Vec<u8>, RpcError>)> {
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .into_iter()
                .map(|(provider, request)| {
                    scope.spawn(move || (provider, self.send_one(provider, request)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect::<Vec<_>>()
        });
        self.stats.record_round_trip();
        results
    }

    /// Fan out and return as soon as `k` successes arrive (the paper's
    /// "any k of the service providers must be available"). Results
    /// beyond the first k successes may be discarded.
    pub fn call_quorum(
        &self,
        requests: Vec<(ProviderId, Vec<u8>)>,
        k: usize,
    ) -> Result<Vec<(ProviderId, Vec<u8>)>, RpcError> {
        let all = self.call_many(requests);
        let mut successes = Vec::with_capacity(k);
        for (provider, result) in all {
            if let Ok(response) = result {
                successes.push((provider, response));
                if successes.len() == k {
                    return Ok(successes);
                }
            }
        }
        Err(RpcError::Closed) // quorum unreachable
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Close channels, then join threads.
        for p in &mut self.providers {
            let (dead_tx, _) = unbounded();
            p.tx = dead_tx;
        }
        for p in &mut self.providers {
            if let Some(t) = p.thread.take() {
                let _ = t.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_cluster(n: usize) -> Cluster {
        let services: Vec<Box<dyn Service>> = (0..n)
            .map(|id| {
                Box::new(move |req: &[u8]| {
                    let mut out = vec![id as u8];
                    out.extend_from_slice(req);
                    out
                }) as Box<dyn Service>
            })
            .collect();
        Cluster::spawn(services, Duration::from_millis(200))
    }

    #[test]
    fn call_roundtrip() {
        let cluster = echo_cluster(3);
        let resp = cluster.call(1, b"ping".to_vec()).unwrap();
        assert_eq!(resp, b"\x01ping");
    }

    #[test]
    fn unknown_provider() {
        let cluster = echo_cluster(2);
        assert_eq!(
            cluster.call(5, vec![]),
            Err(RpcError::UnknownProvider(5))
        );
    }

    #[test]
    fn crashed_provider_times_out_but_others_serve() {
        let cluster = echo_cluster(3);
        cluster.set_failure(0, FailureMode::Crashed);
        assert_eq!(cluster.call(0, b"x".to_vec()), Err(RpcError::Timeout(0)));
        assert!(cluster.call(1, b"x".to_vec()).is_ok());
        // Recovery.
        cluster.set_failure(0, FailureMode::Healthy);
        assert!(cluster.call(0, b"x".to_vec()).is_ok());
    }

    #[test]
    fn fan_out_hits_all() {
        let cluster = echo_cluster(4);
        let reqs = (0..4).map(|i| (i, vec![i as u8])).collect();
        let results = cluster.call_many(reqs);
        assert_eq!(results.len(), 4);
        for (provider, result) in results {
            assert_eq!(result.unwrap(), vec![provider as u8, provider as u8]);
        }
        // One fan-out = one round trip.
        assert_eq!(cluster.stats().snapshot().round_trips, 1);
    }

    #[test]
    fn quorum_tolerates_crashes() {
        let cluster = echo_cluster(4);
        cluster.set_failure(2, FailureMode::Crashed);
        let reqs = (0..4).map(|i| (i, vec![9])).collect();
        let got = cluster.call_quorum(reqs, 2).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(p, _)| *p != 2));
    }

    #[test]
    fn quorum_unreachable_when_too_many_crash() {
        let cluster = echo_cluster(3);
        cluster.set_failure(0, FailureMode::Crashed);
        cluster.set_failure(1, FailureMode::Crashed);
        let reqs = (0..3).map(|i| (i, vec![])).collect();
        assert!(cluster.call_quorum(reqs, 2).is_err());
    }

    #[test]
    fn byzantine_mode_corrupts_responses() {
        let cluster = echo_cluster(1);
        cluster.set_failure(0, FailureMode::Byzantine(1.0));
        let mut corrupted = 0;
        for _ in 0..20 {
            let resp = cluster.call(0, b"abc".to_vec()).unwrap();
            if resp != b"\x00abc" {
                corrupted += 1;
            }
        }
        assert_eq!(corrupted, 20, "p=1.0 must corrupt every response");
    }

    #[test]
    fn omission_mode_drops_some() {
        let cluster = echo_cluster(1);
        cluster.set_failure(0, FailureMode::Omission(1.0));
        assert_eq!(cluster.call(0, vec![1]), Err(RpcError::Timeout(0)));
        cluster.set_failure(0, FailureMode::Omission(0.0));
        assert!(cluster.call(0, vec![1]).is_ok());
    }

    #[test]
    fn traffic_is_metered() {
        let cluster = echo_cluster(2);
        cluster.call(0, vec![0u8; 100]).unwrap();
        let snap = cluster.stats().snapshot();
        assert_eq!(snap.bytes_sent, 100);
        assert_eq!(snap.bytes_received, 101);
        assert_eq!(snap.messages_sent, 1);
    }

    #[test]
    fn injected_latency_slows_calls_and_parallel_fanout_shares_it() {
        let cluster = echo_cluster(3);
        cluster.set_latency(Duration::from_millis(30));
        let start = std::time::Instant::now();
        cluster.call(0, vec![1]).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(30), "serial call delayed");
        // Fan-out to all three in parallel: latency is paid once, not 3×.
        let start = std::time::Instant::now();
        let results = cluster.call_many((0..3).map(|p| (p, vec![2])).collect());
        assert!(results.iter().all(|(_, r)| r.is_ok()));
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(30));
        assert!(
            elapsed < Duration::from_millis(85),
            "parallel fan-out took {elapsed:?}; latency must not serialize"
        );
        cluster.set_latency(Duration::ZERO);
        let start = std::time::Instant::now();
        cluster.call(0, vec![3]).unwrap();
        assert!(start.elapsed() < Duration::from_millis(25), "latency cleared");
    }

    #[test]
    fn stateful_service_keeps_state_across_calls() {
        struct Counter(u64);
        impl Service for Counter {
            fn handle(&mut self, _req: &[u8]) -> Vec<u8> {
                self.0 += 1;
                self.0.to_le_bytes().to_vec()
            }
        }
        let cluster = Cluster::spawn(
            vec![Box::new(Counter(0))],
            Duration::from_millis(200),
        );
        cluster.call(0, vec![]).unwrap();
        let second = cluster.call(0, vec![]).unwrap();
        assert_eq!(u64::from_le_bytes(second.try_into().unwrap()), 2);
    }
}
