//! Simulated multi-provider deployment.
//!
//! The paper's architecture is one client (the data source D) talking to
//! `n` independent database service providers over a WAN. This crate
//! builds that deployment on one machine:
//!
//! * [`wire`] — a compact hand-rolled binary codec (no serde formats are
//!   available offline) used for all RPC payloads.
//! * [`cost`] — a network cost model: per-message latency and bandwidth
//!   translate measured byte/message counts into modeled WAN time, so
//!   experiments can report both raw compute and network-dominated
//!   end-to-end figures, like the paper's "~3 Gbit of transfer" claims.
//! * [`rpc`] — providers as OS threads serving requests over crossbeam
//!   channels, with per-provider failure injection (crash, omission,
//!   response corruption) for the paper's benign/malicious failure-model
//!   challenge (conclusion, challenge (b)).
//! * [`resilience`] — retry policies with jittered backoff, per-provider
//!   health tracking (latency EWMAs), and circuit breakers backing the
//!   first-k-wins quorum engine in [`rpc`].
//! * [`reactor`] — a real TCP server: nonblocking accept loop, poll-style
//!   readiness-scanning reactor shards, CRC-framed request/response
//!   multiplexing by token, per-connection write backpressure, fan-in to
//!   the MPMC worker pools.
//! * [`transport`] — the socket-backed client: a multiplexing
//!   [`transport::TcpClient`] implementing [`SharedService`] so
//!   `Cluster`, quorum, hedging, retries, and breakers run unchanged
//!   over sockets, plus a blocking per-connection handle for load
//!   generators.

pub mod cost;
pub mod reactor;
pub mod resilience;
pub mod rpc;
pub mod transport;
pub mod wire;

pub use cost::{NetworkModel, TrafficStats};
pub use reactor::{ReactorConfig, ServerStats, ServerStatsSnapshot, TcpServer};
pub use resilience::{
    Admission, BreakerConfig, BreakerState, Clock, HealthSnapshot, HealthTracker, ManualClock,
    ProviderHealthView, ProviderOutcome, QuorumError, RetryPolicy, SystemClock,
};
pub use rpc::{
    Cluster, FailureMode, FailureSwitch, ProviderId, QuorumMode, QuorumOptions, RpcError, Service,
    ServiceFactory, SharedService,
};
pub use transport::{
    batch_window_from_env, BlockingConn, TcpClient, TcpClientConfig, TransportError,
};
pub use wire::{
    batch_items, crc32, decode_batch, encode_frame, encode_frame_into, BatchFrameBuilder,
    BatchItems, Frame, FrameDecoder, FrameError, FrameKind, FrameView, WireError, WireReader,
    WireWriter, FRAME_MAGIC, FRAME_OVERHEAD, MAX_FRAME_BODY,
};
