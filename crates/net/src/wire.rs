//! Hand-rolled binary wire format and the TCP frame codec.
//!
//! Little-endian fixed-width integers, length-prefixed byte strings and
//! sequences. Every RPC payload in the workspace is encoded with
//! [`WireWriter`] and decoded with [`WireReader`], which checks bounds so
//! corrupted messages surface as [`WireError`] instead of panics — that is
//! load-bearing for the Byzantine-failure experiments.
//!
//! On top of the payload codec sits the *frame* layer used by the real
//! TCP transport (see [`crate::reactor`] and [`crate::transport`]): each
//! message travels as
//!
//! ```text
//! magic: u32 | len: u32 | crc: u32 | token: u64 | kind: u8 | payload
//! └────────── header (12 bytes) ──┘ └───────── body (len bytes) ─────┘
//! ```
//!
//! `len` counts the body (token + kind + payload); `crc` is the CRC-32
//! (IEEE) of the body, so a flipped bit anywhere in the body is detected
//! before the payload reaches [`WireReader`]. `token` is the connection-
//! level multiplexing id: responses may return out of order and the
//! client matches them back to callers by token — the same discipline the
//! in-process worker pools use. [`FrameDecoder`] is incremental (sockets
//! deliver arbitrary splits) and never over-reads: a corrupt header or
//! checksum yields a typed [`FrameError`] so the connection can be closed
//! cleanly instead of panicking or resynchronising on attacker-chosen
//! bytes.
//!
//! Two *batch* frame kinds amortize that framing over many small RPCs
//! (the wire analogue of the WAL's group commit): a
//! [`FrameKind::BatchRequest`]/[`FrameKind::BatchResponse`] body packs N
//! token-tagged sub-messages —
//!
//! ```text
//! token: u64 (= sub count) | kind: u8 | repeat: sub_token: u64 | sub_len: u32 | sub_payload
//! ```
//!
//! — under one header, one length prefix and one CRC, so a coalescing
//! client pays one syscall and one checksum per *batch* instead of per
//! query. Build one with [`BatchFrameBuilder`] (in-place, zero-alloc),
//! walk one with [`batch_items`]. Every encode entry point also has an
//! `*_into` form that appends to a caller-owned scratch buffer, which is
//! what the reactor and transport use to keep the hot path allocation-free.

use bytes::{Buf, BufMut, BytesMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the field needs.
    Truncated { wanted: usize, left: usize },
    /// A tag byte had no matching variant.
    BadTag(u8),
    /// A length prefix exceeded the sanity bound.
    LengthOverflow(u64),
    /// A string was not UTF-8.
    BadUtf8,
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { wanted, left } => {
                write!(f, "truncated: wanted {wanted} bytes, {left} left")
            }
            WireError::BadTag(t) => write!(f, "bad tag byte {t:#x}"),
            WireError::LengthOverflow(n) => write!(f, "length {n} too large"),
            WireError::BadUtf8 => write!(f, "invalid utf-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum length prefix we accept (guards against corrupt lengths
/// allocating gigabytes).
const MAX_LEN: u64 = 1 << 32;

/// An append-only message encoder.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish, yielding the encoded bytes. Consumes the writer's buffer
    /// in place — no copy on this path (it sits under every encoded RPC
    /// payload in the workspace).
    pub fn finish(self) -> Vec<u8> {
        self.buf.into()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append an `i128`.
    pub fn i128(&mut self, v: i128) -> &mut Self {
        self.buf.put_i128_le(v);
        self
    }

    /// Append a `u128`.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.put_u128_le(v);
        self
    }

    /// Append a bool (one byte).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Append length-prefixed bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Append a sequence with a callback per element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
        self
    }
}

/// A checked message decoder.
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wrap encoded bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Error unless fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                wanted: n,
                left: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(self.take(2)?.get_u16_le())
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(self.take(4)?.get_u32_le())
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(self.take(8)?.get_u64_le())
    }

    /// Read an `i128`.
    pub fn i128(&mut self) -> Result<i128, WireError> {
        Ok(self.take(16)?.get_i128_le())
    }

    /// Read a `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(self.take(16)?.get_u128_le())
    }

    /// Read a bool, rejecting tags other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        self.take(len as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(|s| s.to_string())
            .map_err(|_| WireError::BadUtf8)
    }

    /// Read a sequence with a callback per element.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        // Each element is at least one byte; cheap sanity cap.
        if (len as usize) > self.buf.len() {
            return Err(WireError::Truncated {
                wanted: len as usize,
                left: self.buf.len(),
            });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Frame layer: CRC-framed, length-prefixed messages for the TCP transport.
// ---------------------------------------------------------------------------

/// Frame magic: catches endpoint mismatches and stream desynchronisation
/// immediately instead of misparsing a length out of payload bytes.
pub const FRAME_MAGIC: u32 = 0xDA5B_F7A3;

/// Bytes of framing around a payload: 12-byte header + token + kind.
pub const FRAME_OVERHEAD: usize = 12 + 8 + 1;

/// Default cap on one frame's body. Large enough for a full batch insert
/// of shares, small enough that a corrupt length cannot OOM a provider.
pub const MAX_FRAME_BODY: u32 = 64 << 20;

/// Slice-by-16 lookup tables: table 0 is the classic byte-at-a-time
/// table; table j folds a byte that sits j positions deeper in the
/// message, so sixteen bytes fold with sixteen independent loads per
/// step (16 KiB of tables — comfortably L1-resident).
static CRC_TABLES: [[u32; 256]; 16] = crc32_tables();

const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 16 {
        let mut i = 0;
        while i < 256 {
            tables[j][i] = (tables[j - 1][i] >> 8) ^ tables[0][(tables[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

/// One slice-by-16 table lookup: fold byte `b & 0xFF` through table `j`.
#[inline(always)]
fn crc_tab(j: usize, b: u32) -> u32 {
    // dasp::allow(P3): `j` is a literal < 16 and the byte mask keeps the
    // second index < 256 — both always in bounds.
    CRC_TABLES[j][(b & 0xFF) as usize]
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`. Slice-by-16:
/// the frame layer checksums every RPC payload, so this sits on the
/// hot path of each socket round trip.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(16);
    for c in chunks.by_ref() {
        // dasp::allow(P3): `chunks_exact(16)` guarantees 16 bytes per chunk.
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]); // dasp::allow(P3): 16-byte chunk
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]); // dasp::allow(P3): 16-byte chunk
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]); // dasp::allow(P3): 16-byte chunk
        crc = crc_tab(15, a)
            ^ crc_tab(14, a >> 8)
            ^ crc_tab(13, a >> 16)
            ^ crc_tab(12, a >> 24)
            ^ crc_tab(11, b)
            ^ crc_tab(10, b >> 8)
            ^ crc_tab(9, b >> 16)
            ^ crc_tab(8, b >> 24)
            ^ crc_tab(7, d)
            ^ crc_tab(6, d >> 8)
            ^ crc_tab(5, d >> 16)
            ^ crc_tab(4, d >> 24)
            ^ crc_tab(3, e)
            ^ crc_tab(2, e >> 8)
            ^ crc_tab(1, e >> 16)
            ^ crc_tab(0, e >> 24);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ crc_tab(0, crc ^ b as u32);
    }
    !crc
}

/// Direction tag of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → provider, one request payload.
    Request,
    /// Provider → client, one response payload.
    Response,
    /// Client → provider, N token-tagged sub-requests in one frame.
    BatchRequest,
    /// Provider → client, N token-tagged sub-responses in one frame.
    BatchResponse,
}

impl FrameKind {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
            FrameKind::BatchRequest => 2,
            FrameKind::BatchResponse => 3,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            2 => Some(FrameKind::BatchRequest),
            3 => Some(FrameKind::BatchResponse),
            _ => None,
        }
    }

    /// True for the two batch envelope kinds.
    pub fn is_batch(self) -> bool {
        matches!(self, FrameKind::BatchRequest | FrameKind::BatchResponse)
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Connection-level multiplexing token (responses echo the request's).
    pub token: u64,
    /// Request or response.
    pub kind: FrameKind,
    /// The application payload ([`WireWriter`]-encoded).
    pub payload: Vec<u8>,
}

/// Frame decoding failure. Every variant means the stream is unusable;
/// the peer's only safe move is to close the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header's magic did not match [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The body length is below the fixed token+kind floor or above `max`.
    BadLength {
        /// Length the header claimed.
        len: u32,
        /// Decoder's configured cap.
        max: u32,
    },
    /// Body checksum mismatch: bytes were corrupted in flight.
    BadCrc {
        /// Checksum the header carried.
        expected: u32,
        /// Checksum of the received body.
        actual: u32,
    },
    /// Unknown [`FrameKind`] tag.
    BadKind(u8),
    /// A batch body ended mid-sub-message (truncated tag or a sub-length
    /// claiming more bytes than the body holds). The envelope CRC was
    /// valid, so this is a peer logic error, not line corruption — the
    /// connection is closed either way.
    BadBatch {
        /// Bytes the next sub-message field needed.
        wanted: usize,
        /// Bytes actually left in the body.
        left: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::BadLength { len, max } => {
                write!(f, "frame body length {len} outside [9, {max}]")
            }
            FrameError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, body {actual:#010x}"
                )
            }
            FrameError::BadKind(k) => write!(f, "bad frame kind tag {k:#04x}"),
            FrameError::BadBatch { wanted, left } => {
                write!(
                    f,
                    "truncated batch sub-message: wanted {wanted} bytes, {left} left"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one frame ready for the socket.
///
/// # Panics
///
/// If the framed body would exceed [`MAX_FRAME_BODY`]. Payloads are
/// always producer-controlled (requests the client built, responses the
/// service built), so an oversized one is a local logic error; failing
/// here gives a clear message instead of a silently truncated length
/// prefix that the peer would reject by killing the connection.
pub fn encode_frame(token: u64, kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    encode_frame_into(&mut out, token, kind, payload);
    out
}

/// Append one encoded frame to `out`, returning the frame's byte count.
/// The zero-alloc form of [`encode_frame`]: the reactor and the client
/// transport call this with a long-lived scratch (or the connection's
/// coalesced write buffer), so steady-state traffic encodes without
/// touching the allocator. Same panic contract as [`encode_frame`].
pub fn encode_frame_into(out: &mut Vec<u8>, token: u64, kind: FrameKind, payload: &[u8]) -> usize {
    let body_len = 8 + 1 + payload.len();
    assert!(
        body_len <= MAX_FRAME_BODY as usize,
        "frame body of {body_len} bytes exceeds MAX_FRAME_BODY ({MAX_FRAME_BODY})"
    );
    let head = out.len();
    out.reserve(12 + body_len);
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc patched below
    out.extend_from_slice(&token.to_le_bytes());
    out.push(kind.to_u8());
    out.extend_from_slice(payload);
    // dasp::allow(P3): `out[head..]` holds the 21-byte header by construction.
    let crc = crc32(&out[head + 12..]);
    // dasp::allow(P3): same 21-byte header — indexes head+8..head+12 exist.
    out[head + 8..head + 12].copy_from_slice(&crc.to_le_bytes());
    out.len() - head
}

/// In-place builder for one batch frame: appends the envelope header to a
/// caller-owned buffer, then each `(token, payload)` sub-message directly
/// behind it, and patches length, sub-count and CRC in [`finish`] — no
/// intermediate per-message allocation, one checksum pass over the body.
///
/// The envelope's `token` field carries the sub-message count (the
/// sub-messages have their own tokens, so the field is otherwise unused).
///
/// [`finish`]: BatchFrameBuilder::finish
pub struct BatchFrameBuilder<'a> {
    out: &'a mut Vec<u8>,
    head: usize,
    count: u64,
}

impl<'a> BatchFrameBuilder<'a> {
    /// Start a batch frame of `kind` (one of the two batch kinds) at the
    /// end of `out`.
    pub fn begin(out: &'a mut Vec<u8>, kind: FrameKind) -> Self {
        debug_assert!(kind.is_batch());
        let head = out.len();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // len + crc, patched in finish
        out.extend_from_slice(&[0u8; 8]); // envelope token = sub count, patched
        out.push(kind.to_u8());
        BatchFrameBuilder {
            out,
            head,
            count: 0,
        }
    }

    /// Sub-messages appended so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Body bytes the frame would occupy after appending a sub-message of
    /// `payload_len` bytes — the overflow guard a producer checks before
    /// [`push`] so a batch never exceeds the peer's frame-body cap.
    ///
    /// [`push`]: BatchFrameBuilder::push
    pub fn body_len_with(&self, payload_len: usize) -> usize {
        (self.out.len() - self.head - 12) + 8 + 4 + payload_len
    }

    /// Append one token-tagged sub-message.
    pub fn push(&mut self, token: u64, payload: &[u8]) {
        self.out.extend_from_slice(&token.to_le_bytes());
        self.out
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(payload);
        self.count += 1;
    }

    /// Patch the length, sub-count and CRC; returns the frame's total
    /// byte count. Panics if the body exceeds [`MAX_FRAME_BODY`] — the
    /// same producer-side contract as [`encode_frame`]; callers bound
    /// their batches with [`body_len_with`].
    ///
    /// [`body_len_with`]: BatchFrameBuilder::body_len_with
    pub fn finish(self) -> usize {
        let body_len = self.out.len() - self.head - 12;
        assert!(
            body_len <= MAX_FRAME_BODY as usize,
            "batch frame body of {body_len} bytes exceeds MAX_FRAME_BODY ({MAX_FRAME_BODY})"
        );
        let head = self.head;
        // dasp::allow(P3): `begin` wrote the 21-byte envelope at `head`, so
        // every patched range below exists by construction.
        self.out[head + 4..head + 8].copy_from_slice(&(body_len as u32).to_le_bytes());
        // dasp::allow(P3): same 21-byte envelope.
        self.out[head + 12..head + 20].copy_from_slice(&self.count.to_le_bytes());
        // dasp::allow(P3): same 21-byte envelope.
        let crc = crc32(&self.out[head + 12..]);
        // dasp::allow(P3): same 21-byte envelope.
        self.out[head + 8..head + 12].copy_from_slice(&crc.to_le_bytes());
        self.out.len() - head
    }
}

/// Iterate the `(token, payload)` sub-messages of a batch frame body
/// (the `payload` of a [`FrameKind::BatchRequest`]/
/// [`FrameKind::BatchResponse`] frame). Yields a typed
/// [`FrameError::BadBatch`] — never a panic — if the body ends
/// mid-sub-message; the iterator is fused after an error.
pub fn batch_items(payload: &[u8]) -> BatchItems<'_> {
    BatchItems { rest: payload }
}

/// Iterator returned by [`batch_items`].
pub struct BatchItems<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for BatchItems<'a> {
    type Item = Result<(u64, &'a [u8]), FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < 12 {
            let left = self.rest.len();
            self.rest = &[];
            return Some(Err(FrameError::BadBatch { wanted: 12, left }));
        }
        let (tag, body) = self.rest.split_at(12);
        // dasp::allow(P3): `split_at(12)` guarantees 12 tag bytes.
        let token = u64::from_le_bytes([
            tag[0], tag[1], tag[2], tag[3], tag[4], tag[5], tag[6], tag[7],
        ]);
        // dasp::allow(P3): same 12 tag bytes.
        let len = u32::from_le_bytes([tag[8], tag[9], tag[10], tag[11]]) as usize;
        if body.len() < len {
            let left = body.len();
            self.rest = &[];
            return Some(Err(FrameError::BadBatch { wanted: len, left }));
        }
        let (payload, tail) = body.split_at(len);
        self.rest = tail;
        Some(Ok((token, payload)))
    }
}

/// Decode a whole batch body into owned `(token, payload)` pairs — the
/// convenience form of [`batch_items`] for tests and cold paths.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<(u64, Vec<u8>)>, FrameError> {
    batch_items(payload)
        .map(|item| item.map(|(t, p)| (t, p.to_vec())))
        .collect()
}

/// A decoded frame borrowing its payload from the decoder's buffer — the
/// zero-copy form of [`Frame`] returned by
/// [`FrameDecoder::next_frame_view`]. The reactor dispatches straight off
/// the view; only payloads that outlive the read tick (worker jobs,
/// client completions) are copied out.
pub struct FrameView<'a> {
    /// Correlation token (for batch frames: the sub-message count).
    pub token: u64,
    /// Frame kind tag.
    pub kind: FrameKind,
    /// Frame payload, borrowed from the decoder's internal buffer.
    pub payload: &'a [u8],
}

/// Buffer capacity the decoder keeps through quiet periods; anything a
/// burst of large frames grew beyond this (and beyond the burst's own
/// high-water mark) is released once the buffer fully drains.
const RETAIN_CAP: usize = 64 * 1024;

/// Incremental frame decoder: feed socket bytes in arbitrary splits with
/// [`FrameDecoder::extend`], pop complete frames with
/// [`FrameDecoder::next_frame_view`] (zero-copy) or
/// [`FrameDecoder::next_frame`] (owned). Consumed bytes are compacted
/// lazily so steady-state decoding does not reallocate, and capacity
/// grown by a burst of near-[`MAX_FRAME_BODY`] frames is shrunk back to a
/// high-water mark once the buffer drains, so one huge frame does not pin
/// tens of megabytes per connection forever.
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max_body: u32,
    /// Largest single frame seen since the last capacity reclaim; the
    /// shrink floor, so a steady stream of large frames never thrashes
    /// between shrink and regrow.
    peak: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// Decoder with the default [`MAX_FRAME_BODY`] cap.
    pub fn new() -> Self {
        Self::with_max_body(MAX_FRAME_BODY)
    }

    /// Decoder rejecting bodies above `max_body` bytes.
    pub fn with_max_body(max_body: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_body,
            peak: 0,
        }
    }

    /// Append raw socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.reclaim();
        // Compact before growing: once more than half the buffer is dead
        // prefix, shift the live tail down instead of reallocating past it.
        if self.start > 0 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Undecoded bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Current capacity of the internal buffer (for retention tests and
    /// stats; not part of the decode contract).
    pub fn buffered_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Release capacity a burst of large frames grew, once the buffer has
    /// fully drained. The shrink floor is the larger of [`RETAIN_CAP`] and
    /// the biggest frame seen since the last reclaim, so an oversized
    /// buffer survives exactly one quiet cycle and sustained large-frame
    /// traffic never thrashes the allocator.
    fn reclaim(&mut self) {
        if self.start == 0 || self.start < self.buf.len() {
            return;
        }
        self.buf.clear();
        self.start = 0;
        let keep = RETAIN_CAP.max(self.peak);
        if self.buf.capacity() > keep * 2 {
            self.buf.shrink_to(keep);
        }
        self.peak = 0;
    }

    /// Pop the next complete frame without copying the payload. `Ok(None)`
    /// means more bytes are needed; `Err` means the stream is corrupt and
    /// must be closed (the decoder does not attempt to resynchronise — a
    /// CRC-failed frame boundary is attacker-controlled data).
    ///
    /// The returned view borrows the decoder's buffer; it is consumed
    /// regardless, so dropping the view without reading it skips the
    /// frame.
    pub fn next_frame_view(&mut self) -> Result<Option<FrameView<'_>>, FrameError> {
        self.reclaim();
        // dasp::allow(P3): `start <= buf.len()` is the decoder's invariant —
        // it only ever advances past bytes that are present.
        let avail = &self.buf[self.start..];
        if avail.len() < 12 {
            return Ok(None);
        }
        // dasp::allow(P3): the 12-byte header check above guards 0..12.
        let magic = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        // dasp::allow(P3): guarded by the same 12-byte header check.
        let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        if len < 9 || len > self.max_body {
            return Err(FrameError::BadLength {
                len,
                max: self.max_body,
            });
        }
        // dasp::allow(P3): guarded by the same 12-byte header check.
        let expected = u32::from_le_bytes([avail[8], avail[9], avail[10], avail[11]]);
        let total = 12 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        // dasp::allow(P3): `avail.len() >= total` was just checked.
        let body = &avail[12..total];
        let actual = crc32(body);
        if actual != expected {
            return Err(FrameError::BadCrc { expected, actual });
        }
        let token = u64::from_le_bytes([
            // dasp::allow(P3): `len >= 9` was checked, so the body holds 0..9.
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        // dasp::allow(P3): `len >= 9` was checked, so the body holds 0..9.
        let kind = FrameKind::from_u8(body[8]).ok_or(FrameError::BadKind(body[8]))?;
        let frame_start = self.start;
        self.start += total;
        self.peak = self.peak.max(total);
        // dasp::allow(P3): same bounds as `body` above, re-sliced from the
        // buffer so the borrow is tied to `self` rather than `avail`.
        let payload = &self.buf[frame_start + 12 + 9..frame_start + total];
        Ok(Some(FrameView {
            token,
            kind,
            payload,
        }))
    }

    /// Pop the next complete frame with an owned payload — the cloning
    /// convenience over [`FrameDecoder::next_frame_view`] for callers that
    /// hold frames across decoder calls.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        Ok(self.next_frame_view()?.map(|v| Frame {
            token: v.token,
            kind: v.kind,
            payload: v.payload.to_vec(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .i128(-5)
            .u128(1 << 90)
            .bool(true);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i128().unwrap(), -5);
        assert_eq!(r.u128().unwrap(), 1 << 90);
        assert!(r.bool().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn bytes_and_strings() {
        let mut w = WireWriter::new();
        w.bytes(b"").bytes(b"payload").string("héllo");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.string().unwrap(), "héllo");
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![(1u64, "a".to_string()), (2, "bb".to_string())];
        let mut w = WireWriter::new();
        w.seq(&items, |w, (n, s)| {
            w.u64(*n).string(s);
        });
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let got = r.seq(|r| Ok((r.u64()?, r.string()?))).unwrap();
        assert_eq!(got, items);
    }

    #[test]
    fn truncation_detected_not_panic() {
        let mut w = WireWriter::new();
        w.u64(42).bytes(b"hello");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let res: Result<(), WireError> = (|| {
                r.u64()?;
                r.bytes()?;
                Ok(())
            })();
            assert!(res.is_err(), "cut={cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // absurd length prefix
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(WireError::LengthOverflow(_))));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::BadTag(2)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.u8(1).u8(2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn seq_with_huge_count_rejected() {
        let mut w = WireWriter::new();
        w.u64(1 << 60);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.seq(|r| r.u8()).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_split_delivery() {
        let payload = b"share payload".to_vec();
        let encoded = encode_frame(42, FrameKind::Request, &payload);
        assert_eq!(encoded.len(), payload.len() + FRAME_OVERHEAD);
        // Feed one byte at a time: no frame until the last byte lands.
        let mut dec = FrameDecoder::new();
        for (i, b) in encoded.iter().enumerate() {
            dec.extend(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < encoded.len() {
                assert!(got.is_none(), "byte {i} must not complete the frame");
            } else {
                let frame = got.unwrap();
                assert_eq!(frame.token, 42);
                assert_eq!(frame.kind, FrameKind::Request);
                assert_eq!(frame.payload, payload);
            }
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_decoder_handles_back_to_back_frames() {
        let mut stream = Vec::new();
        for t in 0..5u64 {
            stream.extend_from_slice(&encode_frame(t, FrameKind::Response, &[t as u8; 3]));
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        for t in 0..5u64 {
            let f = dec.next_frame().unwrap().unwrap();
            assert_eq!(f.token, t);
            assert_eq!(f.payload, vec![t as u8; 3]);
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_bad_magic_rejected() {
        let mut encoded = encode_frame(1, FrameKind::Request, b"x");
        encoded[0] ^= 0xff;
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn frame_oversize_length_rejected_before_buffering() {
        let mut encoded = encode_frame(1, FrameKind::Request, b"x");
        encoded[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadLength { .. })
        ));
    }

    #[test]
    fn frame_payload_flip_caught_by_crc() {
        let mut encoded = encode_frame(7, FrameKind::Response, b"payload");
        let last = encoded.len() - 1;
        encoded[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn frame_bad_kind_rejected() {
        // Flip the kind byte and fix up the CRC so only the tag is wrong.
        let mut encoded = encode_frame(7, FrameKind::Request, b"p");
        encoded[12 + 8] = 9;
        let crc = crc32(&encoded[12..]);
        encoded[8..12].copy_from_slice(&crc.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert_eq!(dec.next_frame(), Err(FrameError::BadKind(9)));
    }

    #[test]
    fn encode_frame_into_matches_encode_frame_and_appends() {
        let mut out = vec![0xEEu8; 7]; // pre-existing bytes must survive
        let n = encode_frame_into(&mut out, 99, FrameKind::Request, b"abc");
        let standalone = encode_frame(99, FrameKind::Request, b"abc");
        assert_eq!(n, standalone.len());
        assert_eq!(&out[..7], &[0xEE; 7]);
        assert_eq!(&out[7..], standalone.as_slice());
        // A second append decodes as a clean back-to-back stream.
        encode_frame_into(&mut out, 100, FrameKind::Response, b"defg");
        let mut dec = FrameDecoder::new();
        dec.extend(&out[7..]);
        assert_eq!(dec.next_frame().unwrap().unwrap().token, 99);
        assert_eq!(dec.next_frame().unwrap().unwrap().payload, b"defg");
    }

    #[test]
    fn batch_roundtrip_zero_one_many() {
        for subs in [0usize, 1, 17] {
            let mut out = Vec::new();
            let mut b = BatchFrameBuilder::begin(&mut out, FrameKind::BatchRequest);
            for i in 0..subs {
                b.push(1000 + i as u64, &vec![i as u8; i]);
            }
            assert_eq!(b.count(), subs as u64);
            let n = b.finish();
            assert_eq!(n, out.len());
            let mut dec = FrameDecoder::new();
            dec.extend(&out);
            let f = dec.next_frame().unwrap().unwrap();
            assert_eq!(f.kind, FrameKind::BatchRequest);
            assert_eq!(f.token, subs as u64); // envelope token = sub count
            let items = decode_batch(&f.payload).unwrap();
            assert_eq!(items.len(), subs);
            for (i, (tok, payload)) in items.iter().enumerate() {
                assert_eq!(*tok, 1000 + i as u64);
                assert_eq!(payload, &vec![i as u8; i]);
            }
        }
    }

    #[test]
    fn batch_body_len_with_predicts_finish() {
        let mut out = Vec::new();
        let mut b = BatchFrameBuilder::begin(&mut out, FrameKind::BatchResponse);
        b.push(1, b"xy");
        let predicted = b.body_len_with(5);
        b.push(2, b"12345");
        let total = b.finish();
        // total = 12-byte header + body
        assert_eq!(total - 12, predicted);
    }

    #[test]
    fn batch_truncation_yields_bad_batch_never_panics() {
        let mut out = Vec::new();
        let mut b = BatchFrameBuilder::begin(&mut out, FrameKind::BatchRequest);
        b.push(7, b"hello");
        b.push(8, b"world!");
        b.finish();
        // Strip the 21-byte envelope; truncate the batch *body* at every
        // offset.
        let body = &out[FRAME_OVERHEAD..];
        for cut in 0..body.len() {
            let items: Vec<_> = batch_items(&body[..cut]).collect();
            let trailing_err = items.iter().any(|i| i.is_err());
            // Either the cut lands exactly on a sub boundary (all Ok) or
            // the final item is a typed BadBatch error.
            if !trailing_err {
                let full = batch_items(body).filter(|i| i.is_ok()).count();
                assert!(items.len() <= full);
            } else {
                assert!(matches!(
                    items.last().unwrap(),
                    Err(FrameError::BadBatch { .. })
                ));
            }
        }
    }

    #[test]
    fn decoder_releases_capacity_after_large_frame() {
        let big = vec![0xABu8; 8 << 20]; // 8 MiB payload
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(1, FrameKind::Request, &big));
        let f = dec.next_frame().unwrap().unwrap();
        assert_eq!(f.payload.len(), big.len());
        assert!(dec.buffered_capacity() >= big.len());
        // A small follow-up frame plus one drained decode cycle must
        // release the burst capacity back to the retention floor.
        dec.extend(&encode_frame(2, FrameKind::Request, b"small"));
        assert!(dec.next_frame().unwrap().is_some());
        assert!(dec.next_frame().unwrap().is_none());
        dec.extend(&encode_frame(3, FrameKind::Request, b"tiny"));
        assert!(
            dec.buffered_capacity() <= 2 * RETAIN_CAP,
            "capacity {} not released",
            dec.buffered_capacity()
        );
    }

    #[test]
    fn zero_copy_view_matches_owned_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(5, FrameKind::BatchResponse, b"viewed"));
        let v = dec.next_frame_view().unwrap().unwrap();
        assert_eq!(v.token, 5);
        assert_eq!(v.kind, FrameKind::BatchResponse);
        assert_eq!(v.payload, b"viewed");
    }

    proptest! {
        #[test]
        fn prop_batch_roundtrip_any_split(
            subs in proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
                0..12,
            ),
            chunk in 1usize..64,
        ) {
            let mut out = Vec::new();
            let mut b = BatchFrameBuilder::begin(&mut out, FrameKind::BatchRequest);
            for (tok, payload) in &subs {
                b.push(*tok, payload);
            }
            b.finish();
            let mut dec = FrameDecoder::new();
            let mut got = None;
            for part in out.chunks(chunk) {
                dec.extend(part);
                if let Some(f) = dec.next_frame().unwrap() {
                    got = Some(f);
                }
            }
            let f = got.expect("batch frame must complete");
            prop_assert_eq!(f.token, subs.len() as u64);
            let items = decode_batch(&f.payload).unwrap();
            prop_assert_eq!(items, subs);
        }

        #[test]
        fn prop_batch_garbage_body_never_panics(
            body in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            // Arbitrary bytes iterate to Ok items and/or one typed error —
            // never a panic, never an infinite loop.
            let mut n = 0usize;
            for item in batch_items(&body) {
                let _ = item;
                n += 1;
                prop_assert!(n <= body.len() + 1);
            }
        }

        #[test]
        fn prop_frame_roundtrip_any_split(
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            token in any::<u64>(),
            chunk in 1usize..64,
        ) {
            let encoded = encode_frame(token, FrameKind::Response, &payload);
            let mut dec = FrameDecoder::new();
            let mut got = None;
            for part in encoded.chunks(chunk) {
                dec.extend(part);
                if let Some(f) = dec.next_frame().unwrap() {
                    got = Some(f);
                }
            }
            let f = got.expect("frame must complete");
            prop_assert_eq!(f.token, token);
            prop_assert_eq!(f.payload, payload);
        }

        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut w = WireWriter::new();
            w.bytes(&data);
            let encoded = w.finish();
            let mut r = WireReader::new(&encoded);
            prop_assert_eq!(r.bytes().unwrap(), data.as_slice());
            r.expect_end().unwrap();
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Decoding arbitrary garbage must return Err, never panic.
            let mut r = WireReader::new(&data);
            let _ = r.seq(|r| {
                let _ = r.u64()?;
                let s = r.string()?;
                Ok(s)
            });
        }
    }
}
