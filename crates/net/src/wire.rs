//! Hand-rolled binary wire format and the TCP frame codec.
//!
//! Little-endian fixed-width integers, length-prefixed byte strings and
//! sequences. Every RPC payload in the workspace is encoded with
//! [`WireWriter`] and decoded with [`WireReader`], which checks bounds so
//! corrupted messages surface as [`WireError`] instead of panics — that is
//! load-bearing for the Byzantine-failure experiments.
//!
//! On top of the payload codec sits the *frame* layer used by the real
//! TCP transport (see [`crate::reactor`] and [`crate::transport`]): each
//! message travels as
//!
//! ```text
//! magic: u32 | len: u32 | crc: u32 | token: u64 | kind: u8 | payload
//! └────────── header (12 bytes) ──┘ └───────── body (len bytes) ─────┘
//! ```
//!
//! `len` counts the body (token + kind + payload); `crc` is the CRC-32
//! (IEEE) of the body, so a flipped bit anywhere in the body is detected
//! before the payload reaches [`WireReader`]. `token` is the connection-
//! level multiplexing id: responses may return out of order and the
//! client matches them back to callers by token — the same discipline the
//! in-process worker pools use. [`FrameDecoder`] is incremental (sockets
//! deliver arbitrary splits) and never over-reads: a corrupt header or
//! checksum yields a typed [`FrameError`] so the connection can be closed
//! cleanly instead of panicking or resynchronising on attacker-chosen
//! bytes.

use bytes::{Buf, BufMut, BytesMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the field needs.
    Truncated { wanted: usize, left: usize },
    /// A tag byte had no matching variant.
    BadTag(u8),
    /// A length prefix exceeded the sanity bound.
    LengthOverflow(u64),
    /// A string was not UTF-8.
    BadUtf8,
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { wanted, left } => {
                write!(f, "truncated: wanted {wanted} bytes, {left} left")
            }
            WireError::BadTag(t) => write!(f, "bad tag byte {t:#x}"),
            WireError::LengthOverflow(n) => write!(f, "length {n} too large"),
            WireError::BadUtf8 => write!(f, "invalid utf-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum length prefix we accept (guards against corrupt lengths
/// allocating gigabytes).
const MAX_LEN: u64 = 1 << 32;

/// An append-only message encoder.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append an `i128`.
    pub fn i128(&mut self, v: i128) -> &mut Self {
        self.buf.put_i128_le(v);
        self
    }

    /// Append a `u128`.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.put_u128_le(v);
        self
    }

    /// Append a bool (one byte).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Append length-prefixed bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Append a sequence with a callback per element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
        self
    }
}

/// A checked message decoder.
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wrap encoded bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Error unless fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                wanted: n,
                left: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(self.take(2)?.get_u16_le())
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(self.take(4)?.get_u32_le())
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(self.take(8)?.get_u64_le())
    }

    /// Read an `i128`.
    pub fn i128(&mut self) -> Result<i128, WireError> {
        Ok(self.take(16)?.get_i128_le())
    }

    /// Read a `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(self.take(16)?.get_u128_le())
    }

    /// Read a bool, rejecting tags other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        self.take(len as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(|s| s.to_string())
            .map_err(|_| WireError::BadUtf8)
    }

    /// Read a sequence with a callback per element.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        // Each element is at least one byte; cheap sanity cap.
        if (len as usize) > self.buf.len() {
            return Err(WireError::Truncated {
                wanted: len as usize,
                left: self.buf.len(),
            });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Frame layer: CRC-framed, length-prefixed messages for the TCP transport.
// ---------------------------------------------------------------------------

/// Frame magic: catches endpoint mismatches and stream desynchronisation
/// immediately instead of misparsing a length out of payload bytes.
pub const FRAME_MAGIC: u32 = 0xDA5B_F7A3;

/// Bytes of framing around a payload: 12-byte header + token + kind.
pub const FRAME_OVERHEAD: usize = 12 + 8 + 1;

/// Default cap on one frame's body. Large enough for a full batch insert
/// of shares, small enough that a corrupt length cannot OOM a provider.
pub const MAX_FRAME_BODY: u32 = 64 << 20;

/// Slice-by-16 lookup tables: table 0 is the classic byte-at-a-time
/// table; table j folds a byte that sits j positions deeper in the
/// message, so sixteen bytes fold with sixteen independent loads per
/// step (16 KiB of tables — comfortably L1-resident).
static CRC_TABLES: [[u32; 256]; 16] = crc32_tables();

const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 16 {
        let mut i = 0;
        while i < 256 {
            tables[j][i] = (tables[j - 1][i] >> 8) ^ tables[0][(tables[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

/// One slice-by-16 table lookup: fold byte `b & 0xFF` through table `j`.
#[inline(always)]
fn crc_tab(j: usize, b: u32) -> u32 {
    // dasp::allow(P3): `j` is a literal < 16 and the byte mask keeps the
    // second index < 256 — both always in bounds.
    CRC_TABLES[j][(b & 0xFF) as usize]
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`. Slice-by-16:
/// the frame layer checksums every RPC payload, so this sits on the
/// hot path of each socket round trip.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = data.chunks_exact(16);
    for c in chunks.by_ref() {
        // dasp::allow(P3): `chunks_exact(16)` guarantees 16 bytes per chunk.
        let a = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let b = u32::from_le_bytes([c[4], c[5], c[6], c[7]]); // dasp::allow(P3): 16-byte chunk
        let d = u32::from_le_bytes([c[8], c[9], c[10], c[11]]); // dasp::allow(P3): 16-byte chunk
        let e = u32::from_le_bytes([c[12], c[13], c[14], c[15]]); // dasp::allow(P3): 16-byte chunk
        crc = crc_tab(15, a)
            ^ crc_tab(14, a >> 8)
            ^ crc_tab(13, a >> 16)
            ^ crc_tab(12, a >> 24)
            ^ crc_tab(11, b)
            ^ crc_tab(10, b >> 8)
            ^ crc_tab(9, b >> 16)
            ^ crc_tab(8, b >> 24)
            ^ crc_tab(7, d)
            ^ crc_tab(6, d >> 8)
            ^ crc_tab(5, d >> 16)
            ^ crc_tab(4, d >> 24)
            ^ crc_tab(3, e)
            ^ crc_tab(2, e >> 8)
            ^ crc_tab(1, e >> 16)
            ^ crc_tab(0, e >> 24);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ crc_tab(0, crc ^ b as u32);
    }
    !crc
}

/// Direction tag of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → provider.
    Request,
    /// Provider → client.
    Response,
}

impl FrameKind {
    pub(crate) fn to_u8(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
        }
    }

    fn from_u8(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameKind::Request),
            1 => Some(FrameKind::Response),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Connection-level multiplexing token (responses echo the request's).
    pub token: u64,
    /// Request or response.
    pub kind: FrameKind,
    /// The application payload ([`WireWriter`]-encoded).
    pub payload: Vec<u8>,
}

/// Frame decoding failure. Every variant means the stream is unusable;
/// the peer's only safe move is to close the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header's magic did not match [`FRAME_MAGIC`].
    BadMagic(u32),
    /// The body length is below the fixed token+kind floor or above `max`.
    BadLength {
        /// Length the header claimed.
        len: u32,
        /// Decoder's configured cap.
        max: u32,
    },
    /// Body checksum mismatch: bytes were corrupted in flight.
    BadCrc {
        /// Checksum the header carried.
        expected: u32,
        /// Checksum of the received body.
        actual: u32,
    },
    /// Unknown [`FrameKind`] tag.
    BadKind(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::BadLength { len, max } => {
                write!(f, "frame body length {len} outside [9, {max}]")
            }
            FrameError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, body {actual:#010x}"
                )
            }
            FrameError::BadKind(k) => write!(f, "bad frame kind tag {k:#04x}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one frame ready for the socket.
///
/// # Panics
///
/// If the framed body would exceed [`MAX_FRAME_BODY`]. Payloads are
/// always producer-controlled (requests the client built, responses the
/// service built), so an oversized one is a local logic error; failing
/// here gives a clear message instead of a silently truncated length
/// prefix that the peer would reject by killing the connection.
pub fn encode_frame(token: u64, kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let body_len = 8 + 1 + payload.len();
    assert!(
        body_len <= MAX_FRAME_BODY as usize,
        "frame body of {body_len} bytes exceeds MAX_FRAME_BODY ({MAX_FRAME_BODY})"
    );
    let mut out = Vec::with_capacity(12 + body_len);
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc patched below
    out.extend_from_slice(&token.to_le_bytes());
    out.push(kind.to_u8());
    out.extend_from_slice(payload);
    // dasp::allow(P3): `out` holds the 21-byte header by construction.
    let crc = crc32(&out[12..]);
    // dasp::allow(P3): same 21-byte header — indexes 8..12 always exist.
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Incremental frame decoder: feed socket bytes in arbitrary splits with
/// [`FrameDecoder::extend`], pop complete frames with
/// [`FrameDecoder::next_frame`]. Consumed bytes are compacted lazily so
/// steady-state decoding does not reallocate.
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
    max_body: u32,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// Decoder with the default [`MAX_FRAME_BODY`] cap.
    pub fn new() -> Self {
        Self::with_max_body(MAX_FRAME_BODY)
    }

    /// Decoder rejecting bodies above `max_body` bytes.
    pub fn with_max_body(max_body: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_body,
        }
    }

    /// Append raw socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: once more than half the buffer is dead
        // prefix, shift the live tail down instead of reallocating past it.
        if self.start > 0 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Undecoded bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pop the next complete frame. `Ok(None)` means more bytes are
    /// needed; `Err` means the stream is corrupt and must be closed (the
    /// decoder does not attempt to resynchronise — a CRC-failed frame
    /// boundary is attacker-controlled data).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        // dasp::allow(P3): `start <= buf.len()` is the decoder's invariant —
        // it only ever advances past bytes that are present.
        let avail = &self.buf[self.start..];
        if avail.len() < 12 {
            return Ok(None);
        }
        // dasp::allow(P3): the 12-byte header check above guards 0..12.
        let magic = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        // dasp::allow(P3): guarded by the same 12-byte header check.
        let len = u32::from_le_bytes([avail[4], avail[5], avail[6], avail[7]]);
        if len < 9 || len > self.max_body {
            return Err(FrameError::BadLength {
                len,
                max: self.max_body,
            });
        }
        // dasp::allow(P3): guarded by the same 12-byte header check.
        let expected = u32::from_le_bytes([avail[8], avail[9], avail[10], avail[11]]);
        let total = 12 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        // dasp::allow(P3): `avail.len() >= total` was just checked.
        let body = &avail[12..total];
        let actual = crc32(body);
        if actual != expected {
            return Err(FrameError::BadCrc { expected, actual });
        }
        let token = u64::from_le_bytes([
            // dasp::allow(P3): `len >= 9` was checked, so the body holds 0..9.
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        // dasp::allow(P3): `len >= 9` was checked, so the body holds 0..9.
        let kind = FrameKind::from_u8(body[8]).ok_or(FrameError::BadKind(body[8]))?;
        let payload = body[9..].to_vec(); // dasp::allow(P3): len >= 9 checked
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(Frame {
            token,
            kind,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .i128(-5)
            .u128(1 << 90)
            .bool(true);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i128().unwrap(), -5);
        assert_eq!(r.u128().unwrap(), 1 << 90);
        assert!(r.bool().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn bytes_and_strings() {
        let mut w = WireWriter::new();
        w.bytes(b"").bytes(b"payload").string("héllo");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.string().unwrap(), "héllo");
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![(1u64, "a".to_string()), (2, "bb".to_string())];
        let mut w = WireWriter::new();
        w.seq(&items, |w, (n, s)| {
            w.u64(*n).string(s);
        });
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let got = r.seq(|r| Ok((r.u64()?, r.string()?))).unwrap();
        assert_eq!(got, items);
    }

    #[test]
    fn truncation_detected_not_panic() {
        let mut w = WireWriter::new();
        w.u64(42).bytes(b"hello");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let res: Result<(), WireError> = (|| {
                r.u64()?;
                r.bytes()?;
                Ok(())
            })();
            assert!(res.is_err(), "cut={cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // absurd length prefix
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(WireError::LengthOverflow(_))));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::BadTag(2)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.u8(1).u8(2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn seq_with_huge_count_rejected() {
        let mut w = WireWriter::new();
        w.u64(1 << 60);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.seq(|r| r.u8()).is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_split_delivery() {
        let payload = b"share payload".to_vec();
        let encoded = encode_frame(42, FrameKind::Request, &payload);
        assert_eq!(encoded.len(), payload.len() + FRAME_OVERHEAD);
        // Feed one byte at a time: no frame until the last byte lands.
        let mut dec = FrameDecoder::new();
        for (i, b) in encoded.iter().enumerate() {
            dec.extend(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < encoded.len() {
                assert!(got.is_none(), "byte {i} must not complete the frame");
            } else {
                let frame = got.unwrap();
                assert_eq!(frame.token, 42);
                assert_eq!(frame.kind, FrameKind::Request);
                assert_eq!(frame.payload, payload);
            }
        }
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn frame_decoder_handles_back_to_back_frames() {
        let mut stream = Vec::new();
        for t in 0..5u64 {
            stream.extend_from_slice(&encode_frame(t, FrameKind::Response, &[t as u8; 3]));
        }
        let mut dec = FrameDecoder::new();
        dec.extend(&stream);
        for t in 0..5u64 {
            let f = dec.next_frame().unwrap().unwrap();
            assert_eq!(f.token, t);
            assert_eq!(f.payload, vec![t as u8; 3]);
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn frame_bad_magic_rejected() {
        let mut encoded = encode_frame(1, FrameKind::Request, b"x");
        encoded[0] ^= 0xff;
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn frame_oversize_length_rejected_before_buffering() {
        let mut encoded = encode_frame(1, FrameKind::Request, b"x");
        encoded[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::BadLength { .. })
        ));
    }

    #[test]
    fn frame_payload_flip_caught_by_crc() {
        let mut encoded = encode_frame(7, FrameKind::Response, b"payload");
        let last = encoded.len() - 1;
        encoded[last] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert!(matches!(dec.next_frame(), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn frame_bad_kind_rejected() {
        // Flip the kind byte and fix up the CRC so only the tag is wrong.
        let mut encoded = encode_frame(7, FrameKind::Request, b"p");
        encoded[12 + 8] = 9;
        let crc = crc32(&encoded[12..]);
        encoded[8..12].copy_from_slice(&crc.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.extend(&encoded);
        assert_eq!(dec.next_frame(), Err(FrameError::BadKind(9)));
    }

    proptest! {
        #[test]
        fn prop_frame_roundtrip_any_split(
            payload in proptest::collection::vec(any::<u8>(), 0..300),
            token in any::<u64>(),
            chunk in 1usize..64,
        ) {
            let encoded = encode_frame(token, FrameKind::Response, &payload);
            let mut dec = FrameDecoder::new();
            let mut got = None;
            for part in encoded.chunks(chunk) {
                dec.extend(part);
                if let Some(f) = dec.next_frame().unwrap() {
                    got = Some(f);
                }
            }
            let f = got.expect("frame must complete");
            prop_assert_eq!(f.token, token);
            prop_assert_eq!(f.payload, payload);
        }

        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut w = WireWriter::new();
            w.bytes(&data);
            let encoded = w.finish();
            let mut r = WireReader::new(&encoded);
            prop_assert_eq!(r.bytes().unwrap(), data.as_slice());
            r.expect_end().unwrap();
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Decoding arbitrary garbage must return Err, never panic.
            let mut r = WireReader::new(&data);
            let _ = r.seq(|r| {
                let _ = r.u64()?;
                let s = r.string()?;
                Ok(s)
            });
        }
    }
}
