//! Hand-rolled binary wire format.
//!
//! Little-endian fixed-width integers, length-prefixed byte strings and
//! sequences. Every RPC payload in the workspace is encoded with
//! [`WireWriter`] and decoded with [`WireReader`], which checks bounds so
//! corrupted messages surface as [`WireError`] instead of panics — that is
//! load-bearing for the Byzantine-failure experiments.

use bytes::{Buf, BufMut, BytesMut};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the field needs.
    Truncated { wanted: usize, left: usize },
    /// A tag byte had no matching variant.
    BadTag(u8),
    /// A length prefix exceeded the sanity bound.
    LengthOverflow(u64),
    /// A string was not UTF-8.
    BadUtf8,
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { wanted, left } => {
                write!(f, "truncated: wanted {wanted} bytes, {left} left")
            }
            WireError::BadTag(t) => write!(f, "bad tag byte {t:#x}"),
            WireError::LengthOverflow(n) => write!(f, "length {n} too large"),
            WireError::BadUtf8 => write!(f, "invalid utf-8"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum length prefix we accept (guards against corrupt lengths
/// allocating gigabytes).
const MAX_LEN: u64 = 1 << 32;

/// An append-only message encoder.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish, yielding the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.put_u16_le(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append an `i128`.
    pub fn i128(&mut self, v: i128) -> &mut Self {
        self.buf.put_i128_le(v);
        self
    }

    /// Append a `u128`.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.put_u128_le(v);
        self
    }

    /// Append a bool (one byte).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Append length-prefixed bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Append a sequence with a callback per element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
        self
    }
}

/// A checked message decoder.
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wrap encoded bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Remaining undecoded bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Error unless fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.buf.len()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                wanted: n,
                left: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(self.take(2)?.get_u16_le())
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(self.take(4)?.get_u32_le())
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(self.take(8)?.get_u64_le())
    }

    /// Read an `i128`.
    pub fn i128(&mut self) -> Result<i128, WireError> {
        Ok(self.take(16)?.get_i128_le())
    }

    /// Read a `u128`.
    pub fn u128(&mut self) -> Result<u128, WireError> {
        Ok(self.take(16)?.get_u128_le())
    }

    /// Read a bool, rejecting tags other than 0/1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Read length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        self.take(len as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(|s| s.to_string())
            .map_err(|_| WireError::BadUtf8)
    }

    /// Read a sequence with a callback per element.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, WireError>,
    ) -> Result<Vec<T>, WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        // Each element is at least one byte; cheap sanity cap.
        if (len as usize) > self.buf.len() {
            return Err(WireError::Truncated {
                wanted: len as usize,
                left: self.buf.len(),
            });
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(1 << 40)
            .i128(-5)
            .u128(1 << 90)
            .bool(true);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i128().unwrap(), -5);
        assert_eq!(r.u128().unwrap(), 1 << 90);
        assert!(r.bool().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn bytes_and_strings() {
        let mut w = WireWriter::new();
        w.bytes(b"").bytes(b"payload").string("héllo");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.string().unwrap(), "héllo");
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![(1u64, "a".to_string()), (2, "bb".to_string())];
        let mut w = WireWriter::new();
        w.seq(&items, |w, (n, s)| {
            w.u64(*n).string(s);
        });
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let got = r.seq(|r| Ok((r.u64()?, r.string()?))).unwrap();
        assert_eq!(got, items);
    }

    #[test]
    fn truncation_detected_not_panic() {
        let mut w = WireWriter::new();
        w.u64(42).bytes(b"hello");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let res: Result<(), WireError> = (|| {
                r.u64()?;
                r.bytes()?;
                Ok(())
            })();
            assert!(res.is_err(), "cut={cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX); // absurd length prefix
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.bytes(), Err(WireError::LengthOverflow(_))));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::BadTag(2)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.u8(1).u8(2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn seq_with_huge_count_rejected() {
        let mut w = WireWriter::new();
        w.u64(1 << 60);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.seq(|r| r.u8()).is_err());
    }

    proptest! {
        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let mut w = WireWriter::new();
            w.bytes(&data);
            let encoded = w.finish();
            let mut r = WireReader::new(&encoded);
            prop_assert_eq!(r.bytes().unwrap(), data.as_slice());
            r.expect_end().unwrap();
        }

        #[test]
        fn prop_random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            // Decoding arbitrary garbage must return Err, never panic.
            let mut r = WireReader::new(&data);
            let _ = r.seq(|r| {
                let _ = r.u64()?;
                let s = r.string()?;
                Ok(s)
            });
        }
    }
}
