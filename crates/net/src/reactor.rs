//! A hand-rolled, FFI-free, poll-style reactor serving framed RPC over
//! real TCP sockets.
//!
//! The in-process fabric in [`crate::rpc`] scales to a handful of client
//! threads; a provider that must fan in *thousands* of connections cannot
//! afford a thread per connection. This module is the unlock: a small
//! event-loop server in the `poll(2)` tradition, built entirely from safe
//! `std` primitives (the workspace denies `unsafe_code`, which rules out
//! `libc::poll`/`epoll` FFI — see DESIGN.md §11 for why that trade was
//! made and what it costs):
//!
//! * every accepted [`TcpStream`] is set nonblocking and owned by one of
//!   a few *reactor shard* threads;
//! * a shard's event loop performs a **level-triggered readiness scan**:
//!   each tick it attempts the pending I/O on every connection directly —
//!   a nonblocking `read`/`write` that returns `WouldBlock` is exactly
//!   the "not ready" answer `poll(2)` would have given, without the FFI;
//! * when a tick makes no progress the shard parks on its completion
//!   channel with an exponentially growing backoff (capped at
//!   [`ReactorConfig::idle_backoff`]), so a hot server spins usefully and
//!   an idle one sleeps;
//! * decoded request frames are dispatched into one MPMC worker pool
//!   (the same fan-in shape [`crate::rpc::Cluster`] uses in-process);
//!   workers run the [`SharedService`] and push completions back to the
//!   owning shard, which writes the response frame out — out of order,
//!   multiplexed by token;
//! * a [`FrameKind::BatchRequest`] decodes into one job per sub-message;
//!   once a connection has sent a batch frame its responses are
//!   *re-coalesced*: completions are staged per tick and packed into
//!   [`FrameKind::BatchResponse`] frames at flush time, so a loaded
//!   connection pays one CRC, one length prefix and one `write` per tick
//!   instead of one per response (connections that never batch still get
//!   plain `Response` frames — the batcher is invisible to old clients);
//! * the hot path is allocation-free in steady state: responses encode
//!   into the connection's coalesced write buffer
//!   ([`crate::wire::encode_frame_into`]), request payloads draw from a
//!   shard-local buffer pool and ride back for reuse on the completion,
//!   and both the write buffer and the decoder shrink to a high-water
//!   mark after bursts;
//! * backpressure is per connection: a connection with too many requests
//!   in service or too many un-flushed response bytes is not read from
//!   until it drains, so one slow consumer cannot balloon server memory.

use crate::wire::{
    batch_items, encode_frame_into, BatchFrameBuilder, FrameDecoder, FrameKind, MAX_FRAME_BODY,
};
use crate::SharedService;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`TcpServer`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Reactor (event-loop) threads; connections are sharded across them
    /// round-robin at accept time.
    pub shards: usize,
    /// Service worker threads draining the shared request queue.
    /// `0` selects *inline mode*: no worker pool — each shard runs the
    /// [`SharedService`] directly on its event-loop thread, saving two
    /// thread handoffs per request. Lowest latency for cheap handlers;
    /// a slow handler stalls every connection on its shard, so keep a
    /// worker pool (the default) for blocking or long-running services.
    pub workers: usize,
    /// Largest accepted frame body (guards a corrupt length prefix).
    pub max_frame_body: u32,
    /// Requests a single connection may have in service before the
    /// reactor stops reading from it.
    pub max_inflight_per_conn: usize,
    /// Un-flushed response bytes a connection may queue before the
    /// reactor stops reading from it.
    pub max_outbound_bytes: usize,
    /// Capacity of the shared request queue; when full, shards pause
    /// reading everywhere (global backpressure) instead of buffering.
    pub job_queue: usize,
    /// Longest an idle shard sleeps between readiness scans. Bounds the
    /// added latency of the first request after an idle period.
    pub idle_backoff: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ReactorConfig {
            shards: cores.min(4),
            workers: cores.min(4),
            max_frame_body: MAX_FRAME_BODY,
            max_inflight_per_conn: 256,
            max_outbound_bytes: 8 << 20,
            job_queue: 4096,
            idle_backoff: Duration::from_millis(1),
        }
    }
}

#[derive(Default)]
struct StatsInner {
    accepted: AtomicU64,
    open: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    batch_frames_in: AtomicU64,
    batch_frames_out: AtomicU64,
    protocol_errors: AtomicU64,
    backpressure_pauses: AtomicU64,
}

/// Point-in-time counters of a [`TcpServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStatsSnapshot {
    /// Connections accepted since start.
    pub accepted: u64,
    /// Connections currently open.
    pub open: u64,
    /// Request messages decoded (batch sub-requests count individually).
    pub frames_in: u64,
    /// Response messages queued for write (batch sub-responses count
    /// individually).
    pub frames_out: u64,
    /// Batch envelopes decoded from clients.
    pub batch_frames_in: u64,
    /// Batch envelopes coalesced onto the wire.
    pub batch_frames_out: u64,
    /// Connections closed for violating the frame protocol.
    pub protocol_errors: u64,
    /// Ticks on which at least one connection was read-paused for
    /// backpressure.
    pub backpressure_pauses: u64,
}

/// Shared, cheaply cloneable server counters.
#[derive(Clone, Default)]
pub struct ServerStats(Arc<StatsInner>);

impl ServerStats {
    /// Snapshot all counters.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        ServerStatsSnapshot {
            accepted: self.0.accepted.load(Ordering::Relaxed),
            open: self.0.open.load(Ordering::Relaxed),
            frames_in: self.0.frames_in.load(Ordering::Relaxed),
            frames_out: self.0.frames_out.load(Ordering::Relaxed),
            batch_frames_in: self.0.batch_frames_in.load(Ordering::Relaxed),
            batch_frames_out: self.0.batch_frames_out.load(Ordering::Relaxed),
            protocol_errors: self.0.protocol_errors.load(Ordering::Relaxed),
            backpressure_pauses: self.0.backpressure_pauses.load(Ordering::Relaxed),
        }
    }
}

/// One decoded request handed to the worker pool.
struct Job {
    conn: u64,
    token: u64,
    payload: Vec<u8>,
    done: Sender<Completion>,
}

/// One finished response routed back to the owning shard. The request
/// payload buffer rides back as `scratch` so the shard's pool can reuse
/// its allocation for the next request.
struct Completion {
    conn: u64,
    token: u64,
    payload: Vec<u8>,
    scratch: Vec<u8>,
}

/// Shard-local free list of request-payload buffers. Jobs draw here and
/// the buffers ride back on completions, so a steady request rate
/// recycles a small working set instead of allocating per frame.
#[derive(Default)]
struct BufPool {
    bufs: Vec<Vec<u8>>,
}

/// Most buffers a [`BufPool`] holds.
const POOL_MAX_BUFS: usize = 64;

/// Largest buffer capacity a [`BufPool`] keeps; oversized one-off
/// payloads are dropped rather than pinned.
const POOL_MAX_BYTES: usize = 256 * 1024;

impl BufPool {
    fn get(&mut self) -> Vec<u8> {
        self.bufs.pop().unwrap_or_default()
    }

    fn put(&mut self, mut buf: Vec<u8>) {
        if self.bufs.len() < POOL_MAX_BUFS && buf.capacity() <= POOL_MAX_BYTES {
            buf.clear();
            self.bufs.push(buf);
        }
    }
}

/// Write-buffer capacity a connection keeps through quiet periods; see
/// [`Conn::flush`] for the shrink policy.
const OUT_RETAIN: usize = 64 * 1024;

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Coalesced outbound bytes: every staged response encodes onto the
    /// tail and the flush writes the un-sent range `[out_pos..]` — one
    /// `write` syscall per tick for a loaded connection, regardless of
    /// how many responses completed.
    out: Vec<u8>,
    /// First un-written byte of `out`.
    out_pos: usize,
    /// Completions staged this tick, packed into frames at flush time.
    staged: Vec<(u64, Vec<u8>)>,
    /// The peer has sent at least one batch frame, opting in to
    /// coalesced [`FrameKind::BatchResponse`] replies. Plain clients
    /// never see a batch frame.
    batching: bool,
    inflight: usize,
    dead: bool,
    /// Last read attempt yielded bytes. Hot connections are scanned
    /// every tick; cold ones every [`COLD_SCAN_PERIOD`] ticks when the
    /// shard is busy (see the readiness scan).
    hot: bool,
}

/// Under load, a cold connection is read-polled every this many ticks.
/// Bounds both the wasted-`EAGAIN` syscall rate on large fan-in and the
/// extra latency a newly-chatty connection can see (a few busy ticks).
const COLD_SCAN_PERIOD: u64 = 4;

/// Below this many connections a shard always scans everything — the
/// full scan is cheaper than the bookkeeping it would skip.
const STAGGER_THRESHOLD: usize = 8;

/// A shard that moved a frame within this window is "mid-burst": its
/// idle sleeps stay capped at [`ACTIVE_SLEEP_CAP`] so a client turning
/// a request around never waits behind an escalated timer.
const ACTIVE_WINDOW: Duration = Duration::from_millis(5);

/// Idle-sleep cap while mid-burst. Bounds the worst-case stall between
/// a request landing in the kernel buffer and the shard reading it.
const ACTIVE_SLEEP_CAP: Duration = Duration::from_micros(20);

/// Up to this many connections the mid-burst cap is the tight
/// [`ACTIVE_SLEEP_CAP`]: a readiness scan is cheap, so waking every
/// 20us to catch the next request is nearly free. Beyond it each wake
/// scans hundreds of sockets, so the cap relaxes to
/// [`ACTIVE_SLEEP_CAP_WIDE`] — requests batch behind the longer sleep,
/// which costs less than the extra `EAGAIN` churn, while still
/// bounding the stall well under the full idle backoff.
const ACTIVE_CAP_MAX_CONNS: usize = 64;

/// Mid-burst idle-sleep cap for shards with a large fan-in.
const ACTIVE_SLEEP_CAP_WIDE: Duration = Duration::from_micros(200);

impl Conn {
    fn new(stream: TcpStream, max_body: u32) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::with_max_body(max_body),
            out: Vec::new(),
            out_pos: 0,
            staged: Vec::new(),
            batching: false,
            inflight: 0,
            dead: false,
            hot: true,
        }
    }

    /// Un-flushed outbound bytes (the backpressure gauge).
    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Pack staged completions into outbound frames. A batching peer gets
    /// them coalesced into [`FrameKind::BatchResponse`] envelopes (split
    /// whenever the next sub-message would push the body past `max_body`);
    /// everyone else gets one [`FrameKind::Response`] frame per
    /// completion. Either way the bytes land on the tail of the coalesced
    /// write buffer — no per-response allocation.
    fn encode_staged(&mut self, max_body: u32, stats: &ServerStats) {
        let n = self.staged.len();
        if n == 0 {
            return;
        }
        if !self.batching || n == 1 {
            for (token, payload) in self.staged.drain(..) {
                encode_frame_into(&mut self.out, token, FrameKind::Response, &payload);
            }
        } else {
            let mut i = 0;
            let mut envelopes = 0u64;
            while i < n {
                let mut b = BatchFrameBuilder::begin(&mut self.out, FrameKind::BatchResponse);
                while i < n {
                    // dasp::allow(P3): `i < n` bounds the index.
                    let (token, payload) = &self.staged[i];
                    if b.count() > 0 && b.body_len_with(payload.len()) > max_body as usize {
                        break;
                    }
                    b.push(*token, payload);
                    i += 1;
                }
                b.finish();
                envelopes += 1;
            }
            self.staged.clear();
            stats
                .0
                .batch_frames_out
                .fetch_add(envelopes, Ordering::Relaxed);
        }
        stats.0.frames_out.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Nonblocking write of the coalesced outbound buffer; true if bytes
    /// moved. On a full drain the buffer's capacity shrinks back toward
    /// the larger of [`OUT_RETAIN`] and this drain's own high-water mark,
    /// so a response burst does not pin megabytes per connection forever
    /// while sustained large traffic never thrashes the allocator.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.out_pos < self.out.len() {
            // dasp::allow(P3): `out_pos <= out.len()` is the loop guard.
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    self.out_pos += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos >= self.out.len() && !self.out.is_empty() {
            let keep = OUT_RETAIN.max(self.out.len());
            self.out.clear();
            self.out_pos = 0;
            if self.out.capacity() > keep * 2 {
                self.out.shrink_to(keep);
            }
        }
        progressed
    }
}

/// Everything one reactor shard thread needs.
struct Shard {
    accept_rx: Receiver<TcpStream>,
    completion_tx: Sender<Completion>,
    completion_rx: Receiver<Completion>,
    jobs_tx: Sender<Job>,
    /// `Some` in inline mode (`workers == 0`): requests run right here
    /// on the shard thread instead of crossing to the worker pool.
    inline: Option<Arc<dyn SharedService>>,
    shutdown: Arc<AtomicBool>,
    cfg: ReactorConfig,
    stats: ServerStats,
}

impl Shard {
    fn run(self) {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn: u64 = 0;
        let mut stalled: VecDeque<Job> = VecDeque::new();
        let mut dead: Vec<u64> = Vec::new();
        let min_backoff = Duration::from_micros(10);
        let mut backoff = min_backoff;
        let mut idle_streak = 0u32;
        let mut tick = 0u64;
        let mut last_progress = Instant::now();
        let mut buf = vec![0u8; 64 * 1024];
        let mut pool = BufPool::default();
        while !self.shutdown.load(Ordering::Relaxed) {
            let mut progressed = false;

            // Adopt connections the acceptor assigned to this shard.
            while let Ok(stream) = self.accept_rx.try_recv() {
                progressed = true;
                let ok = stream.set_nonblocking(true).is_ok() && stream.set_nodelay(true).is_ok();
                if ok {
                    conns.insert(next_conn, Conn::new(stream, self.cfg.max_frame_body));
                    next_conn += 1;
                } else {
                    self.stats.0.open.fetch_sub(1, Ordering::Relaxed);
                }
            }

            // Re-offer jobs that found the worker queue full.
            while let Some(job) = stalled.pop_front() {
                match self.jobs_tx.try_send(job) {
                    Ok(()) => progressed = true,
                    Err(TrySendError::Full(job)) => {
                        stalled.push_front(job);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }

            // Stage finished responses on their connections; the scan
            // below packs each connection's staged set into coalesced
            // frames, so responses completing in the same tick share an
            // envelope and a `write`.
            while let Ok(c) = self.completion_rx.try_recv() {
                progressed = true;
                Self::stage(&mut conns, c, &mut pool);
            }

            // The readiness scan: attempt the pending I/O everywhere.
            // On large fan-in a busy shard staggers the cold
            // connections — most `read` attempts on them would burn a
            // syscall just to hear `EAGAIN`. Any idle tick (or a small
            // connection count) reverts to scanning everything, so a
            // request arriving after a quiet spell is never stalled by
            // the stagger.
            tick = tick.wrapping_add(1);
            let stagger = conns.len() > STAGGER_THRESHOLD && idle_streak == 0;
            let mut paused = false;
            for (&id, conn) in conns.iter_mut() {
                conn.encode_staged(self.cfg.max_frame_body, &self.stats);
                if conn.flush() {
                    progressed = true;
                }
                if !conn.dead {
                    let readable = stalled.is_empty()
                        && conn.inflight < self.cfg.max_inflight_per_conn
                        && conn.out_pending() < self.cfg.max_outbound_bytes;
                    let due =
                        !stagger || conn.hot || id % COLD_SCAN_PERIOD == tick % COLD_SCAN_PERIOD;
                    if readable && due {
                        let got =
                            self.read_and_dispatch(id, conn, &mut buf, &mut stalled, &mut pool);
                        conn.hot = got;
                        if got {
                            progressed = true;
                        }
                    } else if !readable {
                        paused = true;
                    }
                }
                if conn.dead {
                    dead.push(id);
                }
            }
            if paused {
                self.stats
                    .0
                    .backpressure_pauses
                    .fetch_add(1, Ordering::Relaxed);
            }
            for id in dead.drain(..) {
                if conns.remove(&id).is_some() {
                    self.stats.0.open.fetch_sub(1, Ordering::Relaxed);
                }
            }

            if progressed {
                backoff = min_backoff;
                idle_streak = 0;
                last_progress = Instant::now();
                continue;
            }
            idle_streak += 1;
            // Mid-burst, a brief lull just means clients are turning
            // requests around; an escalated sleep here would stall the
            // next request behind a timer (`sched_yield` alone is not
            // reliable — CFS may keep running this thread). Keep sleeps
            // short while frames flowed recently; only a genuinely
            // quiet shard escalates to the full idle backoff.
            let cap = if last_progress.elapsed() < ACTIVE_WINDOW {
                let active_cap = if conns.len() <= ACTIVE_CAP_MAX_CONNS {
                    ACTIVE_SLEEP_CAP
                } else {
                    ACTIVE_SLEEP_CAP_WIDE
                };
                active_cap.min(self.cfg.idle_backoff)
            } else {
                self.cfg.idle_backoff
            };
            if self.inline.is_some() {
                // Inline mode has no completions to park on. A fresh
                // idle tick usually means clients are turning requests
                // around right now — yield them the core (nearly free
                // on a loaded box) before falling back to timer sleeps.
                if idle_streak <= 8 {
                    std::thread::yield_now();
                } else {
                    // No connection has pending work on a fully idle
                    // tick, and the sleep is capped by cfg.idle_backoff.
                    // dasp::allow(B1): bounded idle backoff on an empty tick
                    std::thread::sleep(backoff.min(cap));
                    backoff = (backoff * 2).min(self.cfg.idle_backoff);
                }
                continue;
            }
            // Idle: park on the completion channel so a finishing worker
            // wakes the shard immediately; otherwise retry after backoff.
            match self.completion_rx.recv_timeout(backoff.min(cap)) {
                Ok(c) => {
                    // Stage the waking completion plus any burst right
                    // behind it; the next tick's scan packs and flushes
                    // them together.
                    Self::stage(&mut conns, c, &mut pool);
                    while let Ok(c) = self.completion_rx.try_recv() {
                        Self::stage(&mut conns, c, &mut pool);
                    }
                    backoff = min_backoff;
                }
                Err(_) => backoff = (backoff * 2).min(self.cfg.idle_backoff),
            }
        }
    }

    /// Record a finished response on its connection and recycle the
    /// request buffer that rode back on the completion.
    fn stage(conns: &mut HashMap<u64, Conn>, c: Completion, pool: &mut BufPool) {
        pool.put(c.scratch);
        let Some(conn) = conns.get_mut(&c.conn) else {
            return; // connection closed while the request was in service
        };
        conn.inflight = conn.inflight.saturating_sub(1);
        if conn.dead {
            return;
        }
        conn.staged.push((c.token, c.payload));
    }

    /// Dispatch one decoded request message: inline mode runs the handler
    /// right here and stages the response; pool mode copies the payload
    /// into a recycled buffer and hands it to the workers.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_one(
        &self,
        id: u64,
        token: u64,
        payload: &[u8],
        inflight: &mut usize,
        staged: &mut Vec<(u64, Vec<u8>)>,
        dead: &mut bool,
        stalled: &mut VecDeque<Job>,
        pool: &mut BufPool,
    ) {
        self.stats.0.frames_in.fetch_add(1, Ordering::Relaxed);
        if let Some(service) = &self.inline {
            // Inline mode: run the handler here on the decoder's borrowed
            // payload (zero copy) and stage the response. workers=0 is an
            // explicit opt-in that trades shard latency for zero hand-off.
            // dasp::allow(B1): inline mode runs the handler on the shard by contract
            staged.push((token, service.handle(payload)));
            return;
        }
        *inflight += 1;
        let mut owned = pool.get();
        owned.extend_from_slice(payload);
        let job = Job {
            conn: id,
            token,
            payload: owned,
            done: self.completion_tx.clone(),
        };
        match self.jobs_tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => stalled.push_back(job),
            Err(TrySendError::Disconnected(_)) => *dead = true,
        }
    }

    /// Drain the socket's readable bytes (bounded per tick for fairness),
    /// decode frames (unpacking batch envelopes into one dispatch per
    /// sub-message), dispatch them to the worker pool.
    fn read_and_dispatch(
        &self,
        id: u64,
        conn: &mut Conn,
        buf: &mut [u8],
        stalled: &mut VecDeque<Job>,
        pool: &mut BufPool,
    ) -> bool {
        let mut progressed = false;
        for _ in 0..4 {
            match conn.stream.read(buf) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    // Disjoint field borrows: the decoder's frame view
                    // stays live while staged/inflight/dead mutate.
                    let Conn {
                        decoder,
                        staged,
                        batching,
                        inflight,
                        dead,
                        ..
                    } = conn;
                    decoder.extend(&buf[..n]);
                    loop {
                        match decoder.next_frame_view() {
                            Ok(Some(view)) => match view.kind {
                                FrameKind::Request => {
                                    self.dispatch_one(
                                        id,
                                        view.token,
                                        view.payload,
                                        inflight,
                                        staged,
                                        dead,
                                        stalled,
                                        pool,
                                    );
                                    if *dead {
                                        break;
                                    }
                                }
                                FrameKind::BatchRequest => {
                                    *batching = true;
                                    self.stats.0.batch_frames_in.fetch_add(1, Ordering::Relaxed);
                                    for item in batch_items(view.payload) {
                                        match item {
                                            Ok((token, payload)) => {
                                                self.dispatch_one(
                                                    id, token, payload, inflight, staged, dead,
                                                    stalled, pool,
                                                );
                                            }
                                            Err(_) => {
                                                // Truncated batch body: a
                                                // typed error, a clean
                                                // close — never a panic.
                                                self.stats
                                                    .0
                                                    .protocol_errors
                                                    .fetch_add(1, Ordering::Relaxed);
                                                *dead = true;
                                            }
                                        }
                                        if *dead {
                                            break;
                                        }
                                    }
                                    if *dead {
                                        break;
                                    }
                                }
                                FrameKind::Response | FrameKind::BatchResponse => {
                                    // Clients must not send response kinds.
                                    self.stats.0.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                    *dead = true;
                                    break;
                                }
                            },
                            Ok(None) => break,
                            Err(_) => {
                                // Corrupt stream: close. A typed error, a
                                // clean close — never a panic or over-read.
                                self.stats.0.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                *dead = true;
                                break;
                            }
                        }
                    }
                    if conn.dead || n < buf.len() || conn.inflight >= self.cfg.max_inflight_per_conn
                    {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        // Inline responses are ready now — pack and push them onto the
        // wire without waiting for the next scan tick.
        if self.inline.is_some() && !conn.dead && !conn.staged.is_empty() {
            conn.encode_staged(self.cfg.max_frame_body, &self.stats);
            conn.flush();
        }
        progressed
    }
}

/// A running TCP RPC server: acceptor + reactor shards + worker pool,
/// serving one [`SharedService`]. Shuts down (and joins every thread) on
/// drop.
pub struct TcpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    stats: ServerStats,
}

impl TcpServer {
    /// Bind `addr` (use port 0 to pick a free port) and serve `service`.
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        service: Arc<dyn SharedService>,
        cfg: ReactorConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shards = cfg.shards.max(1);
        let workers = cfg.workers; // 0 = inline mode, no pool
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = ServerStats::default();
        let mut threads = Vec::new();

        let (jobs_tx, jobs_rx) = bounded::<Job>(cfg.job_queue.max(1));
        for w in 0..workers {
            let jobs_rx = jobs_rx.clone();
            let service = Arc::clone(&service);
            let spawned = std::thread::Builder::new()
                .name(format!("dasp-tcp-worker-{w}"))
                .spawn(move || {
                    while let Ok(job) = jobs_rx.recv() {
                        let payload = service.handle(&job.payload);
                        // The request buffer rides back for the shard's
                        // pool to reuse.
                        // dasp::allow(E1): a send failure means the reactor
                        // dropped the completion channel at shutdown; the
                        // worker loop exits on the next recv.
                        let _ = job.done.send(Completion {
                            conn: job.conn,
                            token: job.token,
                            payload,
                            scratch: job.payload,
                        });
                    }
                });
            if let Ok(handle) = spawned {
                threads.push(handle);
            }
        }
        drop(jobs_rx);
        if workers > 0 && threads.is_empty() {
            shutdown.store(true, Ordering::Relaxed);
            return Err(std::io::Error::other("could not spawn any worker thread"));
        }

        let mut accept_txs = Vec::with_capacity(shards);
        for s in 0..shards {
            let (accept_tx, accept_rx) = unbounded::<TcpStream>();
            let (completion_tx, completion_rx) = unbounded::<Completion>();
            let shard = Shard {
                accept_rx,
                completion_tx,
                completion_rx,
                jobs_tx: jobs_tx.clone(),
                inline: (workers == 0).then(|| Arc::clone(&service)),
                shutdown: Arc::clone(&shutdown),
                cfg: cfg.clone(),
                stats: stats.clone(),
            };
            let spawned = std::thread::Builder::new()
                .name(format!("dasp-reactor-{s}"))
                .spawn(move || shard.run());
            if let Ok(handle) = spawned {
                threads.push(handle);
                accept_txs.push(accept_tx);
            }
        }
        drop(jobs_tx);
        if accept_txs.is_empty() {
            shutdown.store(true, Ordering::Relaxed);
            for t in threads {
                let _ = t.join();
            }
            return Err(std::io::Error::other("could not spawn any reactor shard"));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("dasp-acceptor".to_string())
                .spawn(move || {
                    let mut next = 0usize;
                    while !shutdown.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                stats.0.accepted.fetch_add(1, Ordering::Relaxed);
                                stats.0.open.fetch_add(1, Ordering::Relaxed);
                                let tx = &accept_txs[next % accept_txs.len()];
                                next = next.wrapping_add(1);
                                if tx.send(stream).is_err() {
                                    stats.0.open.fetch_sub(1, Ordering::Relaxed);
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(1)),
                        }
                    }
                })
        };
        match acceptor {
            Ok(handle) => threads.push(handle),
            Err(e) => {
                // Without an acceptor the server would look alive
                // (`local_addr` works) yet never serve a connection.
                shutdown.store(true, Ordering::Relaxed);
                for t in threads {
                    let _ = t.join();
                }
                return Err(std::io::Error::other(format!("spawn acceptor: {e}")));
            }
        }

        Ok(TcpServer {
            local_addr,
            shutdown,
            threads,
            stats,
        })
    }

    /// The bound address (resolves port 0 to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live server counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop accepting, drop every connection, join every thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
