//! Network cost model and traffic accounting.
//!
//! The paper's argument is ultimately about *costs*: encryption burns CPU,
//! PIR burns both CPU and bytes, secret sharing trades one round-trip per
//! provider for near-zero crypto. To compare fairly on one machine, every
//! RPC is metered (messages, bytes, round trips) and a [`NetworkModel`]
//! converts the meters into modeled WAN time. Experiments report measured
//! compute time and modeled network time separately, then combined.
//!
//! # Model vs. real sockets
//!
//! Since the TCP transport landed ([`crate::reactor`], [`crate::transport`])
//! there are two ways to charge for the network, used for different jobs:
//!
//! * **Real**: run providers behind [`crate::TcpServer`] and measure wall
//!   time. This is ground truth for everything a model can't see — syscall
//!   and framing overhead, backpressure, connection fan-in — but on one
//!   machine it can only exercise loopback latencies.
//! * **Modeled**: run any transport, meter traffic with [`TrafficStats`],
//!   and convert to time with a [`NetworkModel`]. This is how experiments
//!   emulate the paper's WAN/broadband settings ([`NetworkModel::wan`],
//!   [`NetworkModel::broadband`]) that loopback cannot reproduce.
//!
//! The two meet at [`NetworkModel::loopback_tcp`]: its constants are
//! calibrated against measured E20 socket round trips, so the model's
//! loopback prediction stays honest against the real transport, and the
//! WAN presets extrapolate from a verified baseline rather than thin air.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A simple latency/bandwidth WAN model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl NetworkModel {
    /// A typical 2009-era WAN: 40 ms one-way latency, 100 Mbit/s.
    pub fn wan() -> Self {
        NetworkModel {
            latency: Duration::from_millis(40),
            bandwidth_bytes_per_sec: 100e6 / 8.0,
        }
    }

    /// A same-region datacenter link: 1 ms, 1 Gbit/s.
    pub fn lan() -> Self {
        NetworkModel {
            latency: Duration::from_millis(1),
            bandwidth_bytes_per_sec: 1e9 / 8.0,
        }
    }

    /// A broadband client uplink (the Sion–Carbunar setting where trivial
    /// PIR competes): 30 ms, 10 Mbit/s.
    pub fn broadband() -> Self {
        NetworkModel {
            latency: Duration::from_millis(30),
            bandwidth_bytes_per_sec: 10e6 / 8.0,
        }
    }

    /// The real TCP transport over loopback, calibrated from measured E20
    /// round trips (see `EXPERIMENTS.md`): a serial client against an
    /// inline-mode reactor sees ~20 us p50 for a ~2 KiB response, and a
    /// bare 5 KiB echo round trip costs ~11 us. Solving the two-point fit
    /// of `rtt = 2 * latency + bytes / bandwidth` gives ~9 us one-way
    /// (syscalls, framing, CRC, scheduling) and ~1.5 GB/s effective
    /// stream bandwidth (checksum- and copy-bound, not link-bound).
    pub fn loopback_tcp() -> Self {
        NetworkModel {
            latency: Duration::from_micros(9),
            bandwidth_bytes_per_sec: 1.5e9,
        }
    }

    /// Modeled time to move `bytes` over `round_trips` request/response
    /// exchanges. Parallel providers share the round-trip latency but sum
    /// their bytes on the client's link.
    pub fn transfer_time(&self, bytes: u64, round_trips: u32) -> Duration {
        let serialization = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec);
        // Each round trip pays two one-way latencies.
        self.latency * (2 * round_trips) + serialization
    }
}

/// Cumulative traffic counters, shared between client handles and the
/// cluster (cheaply cloneable).
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    inner: Arc<Mutex<StatsInner>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct StatsInner {
    messages_sent: u64,
    bytes_sent: u64,
    messages_received: u64,
    bytes_received: u64,
    round_trips: u64,
}

/// A point-in-time snapshot of [`TrafficStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Requests sent by the client.
    pub messages_sent: u64,
    /// Request payload bytes.
    pub bytes_sent: u64,
    /// Responses received.
    pub messages_received: u64,
    /// Response payload bytes.
    pub bytes_received: u64,
    /// Completed request/response exchanges counted as round trips
    /// (parallel fan-outs count once).
    pub round_trips: u64,
}

impl TrafficSnapshot {
    /// Total bytes both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Difference against an earlier snapshot.
    pub fn since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            messages_sent: self.messages_sent - earlier.messages_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            messages_received: self.messages_received - earlier.messages_received,
            bytes_received: self.bytes_received - earlier.bytes_received,
            round_trips: self.round_trips - earlier.round_trips,
        }
    }

    /// Modeled WAN time for this traffic under `model`.
    pub fn modeled_time(&self, model: &NetworkModel) -> Duration {
        model.transfer_time(self.total_bytes(), self.round_trips as u32)
    }
}

impl TrafficStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a request of `bytes` payload bytes.
    pub fn record_send(&self, bytes: usize) {
        let mut s = self.inner.lock();
        s.messages_sent += 1;
        s.bytes_sent += bytes as u64;
    }

    /// Record a response of `bytes` payload bytes.
    pub fn record_recv(&self, bytes: usize) {
        let mut s = self.inner.lock();
        s.messages_received += 1;
        s.bytes_received += bytes as u64;
    }

    /// Record one completed round trip (a parallel fan-out counts once).
    pub fn record_round_trip(&self) {
        self.inner.lock().round_trips += 1;
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let s = self.inner.lock();
        TrafficSnapshot {
            messages_sent: s.messages_sent,
            bytes_sent: s.bytes_sent,
            messages_received: s.messages_received,
            bytes_received: s.bytes_received,
            round_trips: s.round_trips,
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        *self.inner.lock() = StatsInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_components() {
        let m = NetworkModel {
            latency: Duration::from_millis(10),
            bandwidth_bytes_per_sec: 1000.0,
        };
        // 1 round trip = 20 ms latency; 500 bytes at 1000 B/s = 500 ms.
        let t = m.transfer_time(500, 1);
        assert_eq!(t, Duration::from_millis(520));
        // Zero bytes: pure latency.
        assert_eq!(m.transfer_time(0, 2), Duration::from_millis(40));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let stats = TrafficStats::new();
        stats.record_send(100);
        stats.record_recv(900);
        stats.record_send(50);
        stats.record_round_trip();
        let snap = stats.snapshot();
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.messages_received, 1);
        assert_eq!(snap.bytes_received, 900);
        assert_eq!(snap.total_bytes(), 1050);
        assert_eq!(snap.round_trips, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), TrafficSnapshot::default());
    }

    #[test]
    fn snapshot_since() {
        let stats = TrafficStats::new();
        stats.record_send(10);
        let before = stats.snapshot();
        stats.record_send(30);
        stats.record_round_trip();
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.messages_sent, 1);
        assert_eq!(delta.bytes_sent, 30);
        assert_eq!(delta.round_trips, 1);
    }

    #[test]
    fn clones_share_counters() {
        let a = TrafficStats::new();
        let b = a.clone();
        a.record_send(7);
        assert_eq!(b.snapshot().bytes_sent, 7);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        assert!(NetworkModel::lan().latency < NetworkModel::wan().latency);
        assert!(
            NetworkModel::broadband().bandwidth_bytes_per_sec
                < NetworkModel::wan().bandwidth_bytes_per_sec
        );
        assert!(NetworkModel::loopback_tcp().latency < NetworkModel::lan().latency);
        assert!(
            NetworkModel::loopback_tcp().bandwidth_bytes_per_sec
                > NetworkModel::lan().bandwidth_bytes_per_sec
        );
    }

    #[test]
    fn loopback_model_matches_measured_e20_envelope() {
        // The calibration's own sanity check: the model must land inside
        // the envelope of measured single-connection socket round trips
        // (E20 p50 ranged 20-27 us for point-to-wide responses).
        let m = NetworkModel::loopback_tcp();
        let point = m.transfer_time(64, 1);
        let wide = m.transfer_time(5 * 1024, 1);
        assert!(point >= Duration::from_micros(15) && point <= Duration::from_micros(30));
        assert!(wide >= point && wide <= Duration::from_micros(40));
    }
}
