//! Socket-backed client transport: a multiplexing [`TcpClient`] that
//! plugs into [`crate::rpc::Cluster`] as a [`SharedService`], plus a
//! simple blocking per-connection handle for load generators.
//!
//! The design goal is *transport independence*: `Cluster`, the quorum
//! engine, hedged reads, retries and circuit breakers were written
//! against in-process services and must run unchanged over sockets. A
//! [`TcpClient`] is exactly an in-process service whose `handle` happens
//! to cross a wire: many cluster worker threads call it concurrently,
//! requests are written framed-and-tokened onto one shared connection,
//! and a dedicated reader thread routes response frames back to callers
//! by token — the same out-of-order multiplexing the worker pools use.
//!
//! Failure mapping keeps the cluster's semantics: a dead or unreachable
//! provider process behaves like a crashed in-process provider. On
//! transport failure, [`TcpClient::handle`] quietly retries (the
//! connection may heal) until [`TcpClientConfig::error_hold`] elapses;
//! the cluster's per-attempt timeout fires first, so callers observe
//! [`crate::RpcError::Timeout`] — precisely what a crashed provider
//! produces. Only after the hold expires does `handle` give up and
//! return an empty payload (providers never produce empty responses, so
//! downstream share-consistency checks treat it like a corrupt
//! Byzantine response).

use crate::wire::{
    batch_items, encode_frame, encode_frame_into, BatchFrameBuilder, FrameDecoder, FrameError,
    FrameKind, MAX_FRAME_BODY,
};
use crate::SharedService;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client-side transport failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Could not connect (or reconnect) to the provider.
    Unreachable(String),
    /// The connection failed mid-call.
    Io(String),
    /// The peer sent bytes that do not frame-decode; connection closed.
    Frame(FrameError),
    /// No response within [`TcpClientConfig::call_timeout`].
    TimedOut,
    /// The client was closed.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Unreachable(e) => write!(f, "provider unreachable: {e}"),
            TransportError::Io(e) => write!(f, "connection failed: {e}"),
            TransportError::Frame(e) => write!(f, "frame error: {e}"),
            TransportError::TimedOut => write!(f, "call timed out"),
            TransportError::Closed => write!(f, "client closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Tuning for a [`TcpClient`].
#[derive(Debug, Clone)]
pub struct TcpClientConfig {
    /// Dial timeout per connection attempt.
    pub connect_timeout: Duration,
    /// How long one [`TcpClient::call`] waits for its response.
    pub call_timeout: Duration,
    /// Upper bound on one blocked socket write. The request write in
    /// [`TcpClient::call`] happens under the connection lock, so without
    /// a bound a stalled peer with a full TCP send buffer would wedge
    /// every concurrent caller plus `close()`. On expiry the connection
    /// is torn down and the call fails with
    /// [`TransportError::TimedOut`].
    pub write_timeout: Duration,
    /// Minimum spacing between reconnection attempts.
    pub reconnect_backoff: Duration,
    /// How long [`SharedService::handle`] keeps retrying a failing
    /// transport before giving up. Set above the cluster's per-attempt
    /// timeout so a dead provider surfaces as a timeout (crash
    /// equivalence), yet small enough that shutdown does not hang.
    pub error_hold: Duration,
    /// Largest accepted response frame body.
    pub max_frame_body: u32,
    /// Coalescing window for outbound requests — "group commit for
    /// RPCs", mirroring the WAL flusher. `Duration::ZERO` (the default
    /// unless `DASP_BATCH_WINDOW_US` is set) disables batching: every
    /// call writes its own frame, exactly the pre-batching behavior.
    /// A nonzero window routes calls through a batcher thread that packs
    /// concurrent requests (quorum fan-out, `query_many` workers) into
    /// one [`FrameKind::BatchRequest`] frame — one CRC, one length
    /// prefix, one syscall — flushing as soon as every in-flight call is
    /// packed, when the window expires, or at the batch size caps, so a
    /// lone synchronous caller pays ~zero added latency.
    pub batch_window: Duration,
}

impl Default for TcpClientConfig {
    fn default() -> Self {
        TcpClientConfig {
            connect_timeout: Duration::from_secs(1),
            call_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(1),
            reconnect_backoff: Duration::from_millis(50),
            error_hold: Duration::from_secs(2),
            max_frame_body: MAX_FRAME_BODY,
            batch_window: batch_window_from_env(),
        }
    }
}

/// The coalescing window `DASP_BATCH_WINDOW_US` selects (microseconds);
/// unset, zero or unparsable means no batching. This is the knob CI and
/// the experiment harness flip to run the whole stack batched without
/// touching call sites.
pub fn batch_window_from_env() -> Duration {
    std::env::var("DASP_BATCH_WINDOW_US")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_micros)
        .unwrap_or(Duration::ZERO)
}

/// Most sub-messages one outbound batch frame packs.
const MAX_BATCH_SUBS: usize = 128;

/// Most payload bytes one outbound batch frame packs.
const MAX_BATCH_BYTES: usize = 1 << 20;

/// One request queued for the batcher thread.
struct BatchItem {
    token: u64,
    payload: Vec<u8>,
}

type PendingMap = HashMap<u64, Sender<Result<Vec<u8>, TransportError>>>;

struct ConnState {
    /// The live connection's write half; `None` while disconnected.
    stream: Option<TcpStream>,
    /// Finished (or running) reader threads, joined opportunistically.
    readers: Vec<std::thread::JoinHandle<()>>,
    last_dial: Option<Instant>,
}

struct Inner {
    addr: SocketAddr,
    cfg: TcpClientConfig,
    /// Lock order: `state` before `pending` (the reader's teardown and
    /// the writer's registration both follow it). `batch_tx` is never
    /// held across either — callers clone the sender out and drop the
    /// guard before touching `state` or `pending`.
    state: Mutex<ConnState>,
    pending: Mutex<PendingMap>,
    /// Queue handle for the batcher thread; `None` when batching is off
    /// or the client is closed (closing drops the sender, which ends the
    /// batcher's `recv` loop).
    batch_tx: Mutex<Option<Sender<BatchItem>>>,
    /// Calls handed (or about to be handed) to the batcher that it has
    /// not yet pulled off the queue. The batcher flushes early when this
    /// hits zero: every in-flight call is packed, so waiting out the
    /// window would only add latency.
    unsent: AtomicUsize,
    next_token: AtomicU64,
    epoch: AtomicU64,
    closed: AtomicBool,
}

/// A multiplexing RPC client over one TCP connection (reconnecting on
/// failure). Safe to call from many threads at once; implements
/// [`SharedService`] so a [`crate::Cluster`] can treat a remote provider
/// exactly like an in-process one.
pub struct TcpClient {
    inner: Arc<Inner>,
}

impl TcpClient {
    /// Resolve `addr` and connect. Fails fast if the provider is down;
    /// later disconnections reconnect transparently.
    pub fn connect<A: ToSocketAddrs>(addr: A, cfg: TcpClientConfig) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address resolved"))?;
        let client = TcpClient {
            inner: Arc::new(Inner {
                addr,
                cfg,
                state: Mutex::new(ConnState {
                    stream: None,
                    readers: Vec::new(),
                    last_dial: None,
                }),
                pending: Mutex::new(HashMap::new()),
                batch_tx: Mutex::new(None),
                unsent: AtomicUsize::new(0),
                next_token: AtomicU64::new(0),
                epoch: AtomicU64::new(0),
                closed: AtomicBool::new(false),
            }),
        };
        {
            let mut st = client.inner.state.lock();
            // dasp::allow(L1): `dial` spawns `reader_loop` on a fresh thread —
            // the analyzer's call chain into it does not run under this guard.
            Self::dial(&client.inner, &mut st)
                .map_err(|e| std::io::Error::new(ErrorKind::ConnectionRefused, e.to_string()))?;
        }
        if client.inner.cfg.batch_window > Duration::ZERO {
            let (btx, brx) = unbounded::<BatchItem>();
            let batcher_inner = Arc::clone(&client.inner);
            let spawned = std::thread::Builder::new()
                .name("dasp-tcp-batcher".to_string())
                .spawn(move || batcher_loop(batcher_inner, brx));
            if let Ok(handle) = spawned {
                *client.inner.batch_tx.lock() = Some(btx);
                // The batcher joins through the same drain as readers.
                client.inner.state.lock().readers.push(handle);
            }
            // Spawn failure falls back to direct per-call writes.
        }
        Ok(client)
    }

    /// The provider address this client dials.
    pub fn peer_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// True while a connection is established.
    pub fn is_connected(&self) -> bool {
        self.inner.state.lock().stream.is_some()
    }

    /// One request/response exchange with a typed error. Concurrent
    /// callers share the connection; responses are matched by token.
    /// With a nonzero [`TcpClientConfig::batch_window`] the request is
    /// queued to the batcher thread, which packs concurrent calls into
    /// one batch frame; otherwise it is written directly.
    pub fn call(&self, payload: &[u8]) -> Result<Vec<u8>, TransportError> {
        if self.inner.closed.load(Ordering::Relaxed) {
            return Err(TransportError::Closed);
        }
        let token = self.inner.next_token.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let batch_tx = self.inner.batch_tx.lock().clone();
        if let Some(btx) = batch_tx {
            // dasp::allow(L1): `pending` is taken alone here — consistent
            // with the crate-wide `state` -> `pending` order.
            self.inner.pending.lock().insert(token, tx);
            // Count *before* sending so the batcher's early-flush check
            // (`unsent == 0`) can never miss an item that is mid-send.
            self.inner.unsent.fetch_add(1, Ordering::AcqRel);
            let item = BatchItem {
                token,
                payload: payload.to_vec(),
            };
            if btx.send(item).is_err() {
                self.inner.unsent.fetch_sub(1, Ordering::AcqRel);
                self.inner.pending.lock().remove(&token);
                return Err(TransportError::Closed);
            }
            return match rx.recv_timeout(self.inner.cfg.call_timeout) {
                Ok(result) => result,
                Err(_) => {
                    self.inner.pending.lock().remove(&token);
                    Err(TransportError::TimedOut)
                }
            };
        }
        {
            let mut st = self.inner.state.lock();
            if st.stream.is_none() {
                // dasp::allow(L1): `dial` spawns `reader_loop` on a fresh
                // thread — that chain does not run under this guard.
                Self::dial(&self.inner, &mut st)?;
            }
            // dasp::allow(L1): lock order is `state` -> `pending` everywhere
            // (here and in `reader_loop`'s teardown); never the reverse.
            self.inner.pending.lock().insert(token, tx);
            let frame = encode_frame(token, FrameKind::Request, payload);
            let Some(stream) = st.stream.as_mut() else {
                // dasp::allow(L1): same `state` -> `pending` order as above.
                self.inner.pending.lock().remove(&token);
                return Err(TransportError::Closed);
            };
            if let Err(e) = stream.write_all(&frame) {
                let _ = stream.shutdown(Shutdown::Both);
                st.stream = None;
                // dasp::allow(L1): same `state` -> `pending` order as above.
                self.inner.pending.lock().remove(&token);
                // A write timeout (WouldBlock on Unix, TimedOut on
                // Windows) may have left a partial frame on the wire;
                // the connection is already torn down above.
                let err = if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    TransportError::TimedOut
                } else {
                    TransportError::Io(e.to_string())
                };
                return Err(err);
            }
        }
        match rx.recv_timeout(self.inner.cfg.call_timeout) {
            Ok(result) => result,
            Err(_) => {
                self.inner.pending.lock().remove(&token);
                Err(TransportError::TimedOut)
            }
        }
    }

    /// Dial a fresh connection and spawn its reader. Caller holds `state`.
    fn dial(inner: &Arc<Inner>, st: &mut ConnState) -> Result<(), TransportError> {
        if inner.closed.load(Ordering::Relaxed) {
            return Err(TransportError::Closed);
        }
        if let Some(last) = st.last_dial {
            if last.elapsed() < inner.cfg.reconnect_backoff {
                return Err(TransportError::Unreachable("reconnect backoff".to_string()));
            }
        }
        st.last_dial = Some(Instant::now());
        let stream = TcpStream::connect_timeout(&inner.addr, inner.cfg.connect_timeout)
            .map_err(|e| TransportError::Unreachable(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_write_timeout(Some(inner.cfg.write_timeout))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let my_epoch = inner.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let reader_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("dasp-tcp-reader".to_string())
            .spawn(move || reader_loop(reader_inner, read_half, my_epoch));
        match spawned {
            Ok(handle) => {
                // Reap only readers that have already exited. A stale
                // reader may still be mid-teardown, which takes the
                // `state` lock the caller holds — joining it here would
                // deadlock. Unfinished handles stay queued and are
                // joined by `close()` outside the lock.
                st.readers.retain(|h| !h.is_finished());
                st.readers.push(handle);
                st.stream = Some(stream);
                Ok(())
            }
            Err(e) => Err(TransportError::Io(format!("spawn reader: {e}"))),
        }
    }

    /// Close the connection and wake every pending caller.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Relaxed);
        // Dropping the sender ends the batcher's recv loop; it is joined
        // through the readers drain below.
        *self.inner.batch_tx.lock() = None;
        let readers: Vec<_> = {
            let mut st = self.inner.state.lock();
            if let Some(stream) = st.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            st.readers.drain(..).collect()
        };
        for h in readers {
            let _ = h.join();
        }
        let mut pending = self.inner.pending.lock();
        for (_t, tx) in pending.drain() {
            // dasp::allow(L1, E1): each `tx` is a capacity-1 channel that sees
            // at most one send ever — this send can never block — and the
            // waiter may already have timed out and dropped its rx.
            let _ = tx.send(Err(TransportError::Closed));
        }
    }
}

impl Drop for TcpClient {
    fn drop(&mut self) {
        self.close();
    }
}

/// The coalescing loop: park on the queue, and once a request arrives
/// keep packing until the batch reaches the *adaptive depth target*,
/// the window expires, or a size cap is hit — then write the whole pack
/// as one frame. The frame scratch is reused across flushes and shrunk
/// back after outsized bursts.
///
/// The depth target is the Nagle/group-commit trick that makes the
/// window safe on a loaded box. Flushing the instant the queue drains
/// (`unsent == 0`) degenerates under scheduler ping-pong: the reader
/// wakes caller A, A's submit wakes this thread, and the batch flushes
/// as a singleton before callers B..k ever run — so steady-state depth
/// collapses to 1 and batching pays its costs without its savings.
/// Instead the batcher remembers how deep batches have recently been
/// and keeps parking on the queue (up to the window) until that many
/// requests are aboard. The target grows instantly when a flush packs
/// more, and *decays instantly* whenever a window expiry flushes fewer
/// — so when concurrency drops, at most one flush pays the window
/// before the target matches, and a lone synchronous caller (target 1)
/// never waits at all.
fn batcher_loop(inner: Arc<Inner>, rx: Receiver<BatchItem>) {
    let window = inner.cfg.batch_window;
    let mut items: Vec<BatchItem> = Vec::new();
    let mut frame: Vec<u8> = Vec::new();
    // How many requests steady state is expected to deliver per batch.
    let mut target: usize = 1;
    while let Ok(first) = rx.recv() {
        inner.unsent.fetch_sub(1, Ordering::AcqRel);
        let deadline = Instant::now() + window;
        let mut bytes = first.payload.len();
        let mut timed_out = false;
        items.push(first);
        loop {
            if items.len() >= MAX_BATCH_SUBS || bytes >= MAX_BATCH_BYTES {
                break;
            }
            match rx.try_recv() {
                Ok(item) => {
                    inner.unsent.fetch_sub(1, Ordering::AcqRel);
                    bytes += item.payload.len();
                    items.push(item);
                    continue;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => break,
            }
            // Met the expected depth with no submission visibly in
            // flight: everything this round of concurrency produced is
            // aboard — ship it without waiting out the window.
            if items.len() >= target && inner.unsent.load(Ordering::Acquire) == 0 {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                timed_out = true;
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(item) => {
                    inner.unsent.fetch_sub(1, Ordering::AcqRel);
                    bytes += item.payload.len();
                    items.push(item);
                }
                Err(RecvTimeoutError::Timeout) => {
                    timed_out = true;
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        target = if timed_out && items.len() < target {
            items.len() // concurrency dropped: stop waiting for ghosts
        } else {
            target.max(items.len())
        };
        write_pack(&inner, &items, &mut frame);
        items.clear();
        if frame.capacity() > 2 * MAX_BATCH_BYTES {
            frame.shrink_to(MAX_BATCH_BYTES);
        }
    }
}

/// Encode the packed requests (a plain frame for one, a batch frame for
/// many) and write them under the connection lock — dialing first if the
/// connection dropped, with the same error mapping as the direct path.
/// On failure every packed call is woken with the error through
/// `pending` (each token is removed at most once, so the capacity-1
/// reply channels never see a second send).
fn write_pack(inner: &Arc<Inner>, items: &[BatchItem], frame: &mut Vec<u8>) {
    frame.clear();
    if let [only] = items {
        encode_frame_into(frame, only.token, FrameKind::Request, &only.payload);
    } else {
        let mut b = BatchFrameBuilder::begin(frame, FrameKind::BatchRequest);
        for item in items {
            b.push(item.token, &item.payload);
        }
        b.finish();
    }
    let result = {
        let mut st = inner.state.lock();
        (|| -> Result<(), TransportError> {
            if st.stream.is_none() {
                // dasp::allow(L1): `dial` spawns `reader_loop` on a fresh
                // thread — that chain does not run under this guard.
                TcpClient::dial(inner, &mut st)?;
            }
            let Some(stream) = st.stream.as_mut() else {
                return Err(TransportError::Closed);
            };
            if let Err(e) = stream.write_all(frame) {
                let _ = stream.shutdown(Shutdown::Both);
                st.stream = None;
                // A write timeout may have left a partial frame on the
                // wire; the connection is already torn down above.
                return Err(
                    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                        TransportError::TimedOut
                    } else {
                        TransportError::Io(e.to_string())
                    },
                );
            }
            Ok(())
        })()
    };
    if let Err(err) = result {
        // dasp::allow(L1): `state` was released above; `pending` is taken
        // alone, and each `tx` is a capacity-1, single-send channel.
        let mut pending = inner.pending.lock();
        for item in items {
            if let Some(tx) = pending.remove(&item.token) {
                // dasp::allow(L1, E1): capacity-1, single-send channel — never
                // blocks, and the waiter may have timed out and dropped it.
                let _ = tx.send(Err(err.clone()));
            }
        }
    }
}

fn reader_loop(inner: Arc<Inner>, mut stream: TcpStream, my_epoch: u64) {
    let mut decoder = FrameDecoder::with_max_body(inner.cfg.max_frame_body);
    let mut buf = vec![0u8; 64 * 1024];
    let error = loop {
        match stream.read(&mut buf) {
            Ok(0) => break TransportError::Closed,
            Ok(n) => {
                // dasp::allow(P3): `read` returns `n <= buf.len()`.
                decoder.extend(&buf[..n]);
                let mut failed = None;
                loop {
                    match decoder.next_frame_view() {
                        Ok(Some(view)) => match view.kind {
                            FrameKind::Response => {
                                if let Some(tx) = inner.pending.lock().remove(&view.token) {
                                    // dasp::allow(E1): the requester may have
                                    // timed out and dropped its reply rx.
                                    let _ = tx.send(Ok(view.payload.to_vec()));
                                }
                            }
                            FrameKind::BatchResponse => {
                                for item in batch_items(view.payload) {
                                    match item {
                                        Ok((token, payload)) => {
                                            if let Some(tx) = inner.pending.lock().remove(&token) {
                                                // dasp::allow(E1): the requester
                                                // may have timed out already.
                                                let _ = tx.send(Ok(payload.to_vec()));
                                            }
                                        }
                                        Err(e) => {
                                            failed = Some(TransportError::Frame(e));
                                            break;
                                        }
                                    }
                                }
                                if failed.is_some() {
                                    break;
                                }
                            }
                            FrameKind::Request | FrameKind::BatchRequest => {
                                failed = Some(TransportError::Frame(FrameError::BadKind(
                                    view.kind.to_u8(),
                                )));
                                break;
                            }
                        },
                        Ok(None) => break,
                        Err(e) => {
                            failed = Some(TransportError::Frame(e));
                            break;
                        }
                    }
                }
                if let Some(e) = failed {
                    break e;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => break TransportError::Io(e.to_string()),
        }
    };
    let _ = stream.shutdown(Shutdown::Both);
    // Tear down only if this connection is still the current one; a
    // newer epoch means a reconnect already superseded us and the
    // pending map belongs to the new connection.
    let mut st = inner.state.lock();
    if inner.epoch.load(Ordering::SeqCst) == my_epoch {
        if let Some(s) = st.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        // dasp::allow(L1): `state` -> `pending` is the crate-wide lock order,
        // and each `tx` is a capacity-1, single-send channel — never blocks.
        let mut pending = inner.pending.lock();
        for (_t, tx) in pending.drain() {
            // dasp::allow(L1, E1): capacity-1, single-send channel — never
            // blocks, and the waiter may have timed out and dropped it.
            let _ = tx.send(Err(error.clone()));
        }
    }
}

impl SharedService for TcpClient {
    /// Cluster-facing entry point. Retries transport failures within
    /// [`TcpClientConfig::error_hold`] so transient disconnects heal
    /// invisibly and hard-dead providers surface as cluster timeouts —
    /// identical to an in-process crashed provider.
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let start = Instant::now();
        loop {
            match self.call(request) {
                Ok(response) => return response,
                Err(TransportError::Closed) => return Vec::new(),
                Err(_) if start.elapsed() < self.inner.cfg.error_hold => {
                    std::thread::sleep(
                        self.inner
                            .cfg
                            .reconnect_backoff
                            .min(Duration::from_millis(20)),
                    );
                }
                Err(_) => return Vec::new(),
            }
        }
    }
}

/// A blocking, non-multiplexed connection: one request in flight at a
/// time, synchronous send/receive. The shape a thin client or a load
/// generator wants (E20 drives thousands of these concurrently).
pub struct BlockingConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_token: u64,
    buf: Vec<u8>,
    /// Reusable frame-encode scratch: steady-state calls allocate
    /// nothing on the request path.
    frame: Vec<u8>,
}

impl BlockingConn {
    /// Connect with `timeout` applied to the dial and each read/write.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        Ok(BlockingConn {
            stream,
            decoder: FrameDecoder::new(),
            next_token: 0,
            buf: vec![0u8; 64 * 1024],
            frame: Vec::new(),
        })
    }

    /// One synchronous request/response exchange.
    pub fn call(&mut self, payload: &[u8]) -> Result<Vec<u8>, TransportError> {
        let token = self.next_token;
        self.next_token += 1;
        self.frame.clear();
        encode_frame_into(&mut self.frame, token, FrameKind::Request, payload);
        self.stream
            .write_all(&self.frame)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        loop {
            match self.decoder.next_frame() {
                Ok(Some(f)) if f.token == token && f.kind == FrameKind::Response => {
                    return Ok(f.payload)
                }
                Ok(Some(_)) => continue, // stale response from a past call
                Ok(None) => {}
                Err(e) => return Err(TransportError::Frame(e)),
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.decoder.extend(&self.buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(TransportError::TimedOut)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }

    /// Send `payloads` as one [`FrameKind::BatchRequest`] frame and
    /// collect every response, returned in request order. One CRC, one
    /// length prefix, one `write` for the whole batch; responses may
    /// arrive as individual frames or coalesced batch frames in any
    /// order. A missing (never-produced) response surfaces as an empty
    /// payload, mirroring [`SharedService`] error mapping; the combined
    /// request body must stay under the server's frame cap.
    pub fn call_many(&mut self, payloads: &[&[u8]]) -> Result<Vec<Vec<u8>>, TransportError> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_token;
        self.next_token += payloads.len() as u64;
        self.frame.clear();
        let mut b = BatchFrameBuilder::begin(&mut self.frame, FrameKind::BatchRequest);
        for (i, payload) in payloads.iter().enumerate() {
            b.push(base + i as u64, payload);
        }
        b.finish();
        self.stream
            .write_all(&self.frame)
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let mut results: Vec<Option<Vec<u8>>> = vec![None; payloads.len()];
        let mut got = 0usize;
        let mut fill = |token: u64, payload: Vec<u8>, got: &mut usize| {
            if token >= base {
                if let Some(slot) = results.get_mut((token - base) as usize) {
                    if slot.is_none() {
                        *slot = Some(payload);
                        *got += 1;
                    }
                }
            }
        };
        while got < payloads.len() {
            match self.decoder.next_frame() {
                Ok(Some(f)) => {
                    match f.kind {
                        FrameKind::Response => fill(f.token, f.payload, &mut got),
                        FrameKind::BatchResponse => {
                            for item in batch_items(&f.payload) {
                                let (token, payload) = item.map_err(TransportError::Frame)?;
                                fill(token, payload.to_vec(), &mut got);
                            }
                        }
                        _ => continue, // stale or unexpected: skip
                    }
                    continue;
                }
                Ok(None) => {}
                Err(e) => return Err(TransportError::Frame(e)),
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => self.decoder.extend(&self.buf[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(TransportError::TimedOut)
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
        Ok(results.into_iter().map(|r| r.unwrap_or_default()).collect())
    }
}
