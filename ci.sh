#!/usr/bin/env bash
# Local CI: the exact gate the GitHub workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== dasp-lint (secrecy hygiene & panic safety, deny-new vs baseline) =="
mkdir -p target
cargo run -q -p dasp-lint -- --explain-new --baseline lint-baseline.json --format json > target/lint-report.json

echo "== dasp-lint smoke (seeded violations must be caught) =="
smoke="$(mktemp -d)"
mkdir -p "$smoke/crates/app/src"
cat > "$smoke/crates/app/src/lib.rs" <<'EOF'
pub struct DataSource;
impl DataSource {
    pub fn boom(&self, v: &[u64]) -> u64 {
        v[0]
    }
}
EOF
if cargo run -q -p dasp-lint -- --root "$smoke" --deny-all > /dev/null 2>&1; then
    echo "smoke FAILED: seeded P3 violation was not caught" >&2
    rm -rf "$smoke"
    exit 1
fi
cat > "$smoke/crates/app/src/reactor.rs" <<'EOF'
pub struct Shard;
impl Shard {
    pub fn run(&mut self) {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}
EOF
report="$(cargo run -q -p dasp-lint -- --root "$smoke" --format json 2>/dev/null)"
if ! grep -q '"rule": "B1"' <<< "$report"; then
    echo "smoke FAILED: seeded B1 reactor-blocking violation was not caught" >&2
    rm -rf "$smoke"
    exit 1
fi
rm -f "$smoke/crates/app/src/reactor.rs"
cat > "$smoke/crates/app/src/engine.rs" <<'EOF'
pub struct Wal;
impl Wal {
    pub fn commit(&self, _lsn: u64) {}
}
pub struct ProviderEngine {
    wal: Wal,
    published: RwLock<u64>,
}
impl ProviderEngine {
    pub fn execute_write(&self, snap: u64, lsn: u64) {
        *self.published.write() = snap;
        self.wal.commit(lsn);
    }
}
EOF
report="$(cargo run -q -p dasp-lint -- --root "$smoke" --format json 2>/dev/null)"
if ! grep -q '"rule": "W1"' <<< "$report"; then
    echo "smoke FAILED: seeded W1 publish-before-append violation was not caught" >&2
    rm -rf "$smoke"
    exit 1
fi
rm -f "$smoke/crates/app/src/engine.rs"
cat > "$smoke/crates/app/src/locks.rs" <<'EOF'
pub struct Engine {
    pub tables: Mutex<u32>,
    pub pool: Mutex<u32>,
}
impl Engine {
    pub fn publish(&self) {
        let t = self.tables.lock();
        let p = self.pool.lock();
        drop(p);
        drop(t);
    }
    pub fn evict(&self) {
        let p = self.pool.lock();
        let t = self.tables.lock();
        drop(t);
        drop(p);
    }
}
EOF
report="$(cargo run -q -p dasp-lint -- --root "$smoke" --format json 2>/dev/null)"
if ! grep -q '"rule": "C1"' <<< "$report"; then
    echo "smoke FAILED: seeded C1 lock-order cycle was not caught" >&2
    rm -rf "$smoke"
    exit 1
fi
rm -f "$smoke/crates/app/src/locks.rs"
cat > "$smoke/crates/app/src/conn.rs" <<'EOF'
pub struct Conn {
    pub state: Mutex<u32>,
}
fn reader_loop(conn: &Conn) {
    let g = conn.state.lock();
    drop(g);
}
impl Conn {
    pub fn reconnect(&self) {
        let g = self.state.lock();
        let h = std::thread::spawn(|| reader_loop(self));
        let _ = h.join();
        drop(g);
    }
}
EOF
report="$(cargo run -q -p dasp-lint -- --root "$smoke" --format json 2>/dev/null)"
if ! grep -q '"rule": "C2"' <<< "$report"; then
    echo "smoke FAILED: seeded C2 lock-held join deadlock was not caught" >&2
    rm -rf "$smoke"
    exit 1
fi
rm -rf "$smoke"

echo "== dasp-lint timing (full workspace must stay under 5 s) =="
cargo build --release -q -p dasp-lint
start_ms=$(( $(date +%s%N) / 1000000 ))
./target/release/dasp-lint --timing --baseline lint-baseline.json > /dev/null
elapsed_ms=$(( $(date +%s%N) / 1000000 - start_ms ))
echo "full lint run took ${elapsed_ms} ms"
if [ "$elapsed_ms" -ge 5000 ]; then
    echo "timing FAILED: full lint run took ${elapsed_ms} ms (budget 5000 ms)" >&2
    exit 1
fi

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== concurrency stress (provider workers 1 and 4) =="
DASP_PROVIDER_WORKERS=1 cargo test -q -p dasp-server --test concurrent_engine
DASP_PROVIDER_WORKERS=4 cargo test -q -p dasp-server --test concurrent_engine

echo "== kill-and-recover WAL stress (provider workers 1 and 4) =="
DASP_PROVIDER_WORKERS=1 cargo run --release -q -p dasp-bench --bin wal_stress
DASP_PROVIDER_WORKERS=4 cargo run --release -q -p dasp-bench --bin wal_stress

echo "== fault injection over TCP (same suite, socket transport) =="
DASP_TRANSPORT=tcp cargo test -q -p dasp-apps --test fault_injection

echo "== fault injection over batched TCP (1 ms coalescing window) =="
DASP_TRANSPORT=tcp DASP_BATCH_WINDOW_US=1000 cargo test -q -p dasp-apps --test fault_injection

echo "== transport equivalence (channel vs tcp vs batched tcp) =="
cargo test -q -p dasp-apps --test transport_equivalence

echo "== E20 socket throughput regression gate (>15% loss vs baseline fails) =="
cargo run --release -q -p dasp-bench --bin experiments -- --check BENCH_net.json

echo "== cargo bench --no-run =="
cargo bench --no-run --workspace

echo "CI green."
