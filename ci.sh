#!/usr/bin/env bash
# Local CI: the exact gate the GitHub workflow runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== dasp-lint (secrecy hygiene & panic safety) =="
cargo run -q -p dasp-lint -- --deny-all

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== concurrency stress (provider workers 1 and 4) =="
DASP_PROVIDER_WORKERS=1 cargo test -q -p dasp-server --test concurrent_engine
DASP_PROVIDER_WORKERS=4 cargo test -q -p dasp-server --test concurrent_engine

echo "== cargo bench --no-run =="
cargo bench --no-run --workspace

echo "CI green."
