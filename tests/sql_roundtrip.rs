//! Differential SQL testing: random statements executed both against the
//! outsourced stack and against a plaintext oracle table; results must
//! coincide exactly.

use dasp_core::client::Value;
use dasp_core::{OutsourcedDatabase, QueryOutput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAIN: u64 = 10_000;

/// Plaintext mirror of the outsourced table.
#[derive(Default)]
struct Oracle {
    rows: Vec<(u64, u64)>, // (key, value)
}

impl Oracle {
    fn select_range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.rows
            .iter()
            .copied()
            .filter(|&(_, v)| v >= lo && v <= hi)
            .collect()
    }

    fn select_eq(&self, k: u64) -> Vec<(u64, u64)> {
        self.rows
            .iter()
            .copied()
            .filter(|&(rk, _)| rk == k)
            .collect()
    }
}

fn sorted_values(rows: &[(u64, Vec<Value>)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = rows
        .iter()
        .map(|(_, v)| {
            let Value::Int(k) = v[0] else { panic!() };
            let Value::Int(val) = v[1] else { panic!() };
            (k, val)
        })
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn randomized_differential_run() {
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    let mut db = OutsourcedDatabase::deploy_seeded(2, 3, 0xd1ff).unwrap();
    db.execute(&format!(
        "CREATE TABLE t (k INT({DOMAIN}) MODE DETERMINISTIC, v INT({DOMAIN}) MODE ORDERED)"
    ))
    .unwrap();
    let mut oracle = Oracle::default();

    // Seed data.
    let initial: Vec<(u64, u64)> = (0..200)
        .map(|_| (rng.gen_range(0..50), rng.gen_range(0..DOMAIN)))
        .collect();
    let values: Vec<String> = initial.iter().map(|(k, v)| format!("({k}, {v})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    oracle.rows.extend(initial);

    for step in 0..60 {
        match rng.gen_range(0..6) {
            // Insert a row.
            0 => {
                let (k, v) = (rng.gen_range(0..50), rng.gen_range(0..DOMAIN));
                db.execute(&format!("INSERT INTO t VALUES ({k}, {v})"))
                    .unwrap();
                oracle.rows.push((k, v));
            }
            // Range select.
            1 => {
                let lo = rng.gen_range(0..DOMAIN);
                let hi = (lo + rng.gen_range(0..DOMAIN / 4)).min(DOMAIN - 1);
                let out = db
                    .execute(&format!("SELECT * FROM t WHERE v BETWEEN {lo} AND {hi}"))
                    .unwrap();
                let QueryOutput::Rows { rows, .. } = out else {
                    panic!()
                };
                let mut want = oracle.select_range(lo, hi);
                want.sort_unstable();
                assert_eq!(sorted_values(&rows), want, "step {step} range [{lo},{hi}]");
            }
            // Exact select.
            2 => {
                let k = rng.gen_range(0..50);
                let out = db
                    .execute(&format!("SELECT * FROM t WHERE k = {k}"))
                    .unwrap();
                let QueryOutput::Rows { rows, .. } = out else {
                    panic!()
                };
                let mut want = oracle.select_eq(k);
                want.sort_unstable();
                assert_eq!(sorted_values(&rows), want, "step {step} eq {k}");
            }
            // Aggregate.
            3 => {
                let lo = rng.gen_range(0..DOMAIN / 2);
                let hi = lo + DOMAIN / 4;
                let out = db
                    .execute(&format!(
                        "SELECT SUM(v) FROM t WHERE v BETWEEN {lo} AND {hi}"
                    ))
                    .unwrap();
                let QueryOutput::Aggregate(agg) = out else {
                    panic!()
                };
                let want: u64 = oracle.select_range(lo, hi).iter().map(|&(_, v)| v).sum();
                assert_eq!(agg.value, Some(Value::Int(want)), "step {step} sum");
            }
            // Update by key.
            4 => {
                let k = rng.gen_range(0..50);
                let nv = rng.gen_range(0..DOMAIN);
                let out = db
                    .execute(&format!("UPDATE t SET v = {nv} WHERE k = {k}"))
                    .unwrap();
                let QueryOutput::Affected(n) = out else {
                    panic!()
                };
                let mut touched = 0;
                for row in oracle.rows.iter_mut() {
                    if row.0 == k {
                        row.1 = nv;
                        touched += 1;
                    }
                }
                assert_eq!(n, touched, "step {step} update {k}");
            }
            // Delete by key.
            _ => {
                let k = rng.gen_range(0..50);
                let out = db.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap();
                let QueryOutput::Affected(n) = out else {
                    panic!()
                };
                let before = oracle.rows.len();
                oracle.rows.retain(|&(rk, _)| rk != k);
                assert_eq!(n, before - oracle.rows.len(), "step {step} delete {k}");
            }
        }
    }

    // Final full-table consistency.
    let out = db.execute("SELECT * FROM t").unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    let mut want = oracle.rows.clone();
    want.sort_unstable();
    assert_eq!(sorted_values(&rows), want);
}

#[test]
fn group_by_and_order_by_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0x6e0);
    let mut db = OutsourcedDatabase::deploy_seeded(2, 3, 0x6e0).unwrap();
    db.execute("CREATE TABLE t (g INT(50) MODE DETERMINISTIC, v INT(10000) MODE ORDERED)")
        .unwrap();
    let data: Vec<(u64, u64)> = (0..300)
        .map(|_| (rng.gen_range(0..20), rng.gen_range(0..10_000)))
        .collect();
    let vals: Vec<String> = data.iter().map(|(g, v)| format!("({g}, {v})")).collect();
    db.execute(&format!("INSERT INTO t VALUES {}", vals.join(", ")))
        .unwrap();

    // GROUP BY sums.
    let out = db.execute("SELECT SUM(v) FROM t GROUP BY g").unwrap();
    let QueryOutput::Groups(groups) = out else {
        panic!()
    };
    let mut oracle: std::collections::HashMap<u64, (u64, u64)> = Default::default();
    for &(g, v) in &data {
        let e = oracle.entry(g).or_insert((0, 0));
        e.0 += v;
        e.1 += 1;
    }
    assert_eq!(groups.len(), oracle.len());
    for grp in &groups {
        let Value::Int(g) = grp.group else { panic!() };
        let (want_sum, want_count) = oracle[&g];
        assert_eq!(grp.sum, Some(Value::Int(want_sum)), "group {g}");
        assert_eq!(grp.count, want_count, "group {g}");
    }

    // ORDER BY v DESC LIMIT 15 against a sorted oracle.
    let out = db
        .execute("SELECT * FROM t ORDER BY v DESC LIMIT 15")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    assert_eq!(rows.len(), 15);
    let mut sorted: Vec<u64> = data.iter().map(|&(_, v)| v).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let got: Vec<u64> = rows
        .iter()
        .map(|(_, v)| match v[1] {
            Value::Int(x) => x,
            _ => panic!(),
        })
        .collect();
    assert_eq!(got, sorted[..15].to_vec());

    // Top-k with a predicate.
    let out = db
        .execute("SELECT * FROM t WHERE v BETWEEN 2000 AND 8000 ORDER BY v LIMIT 5")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    let mut in_range: Vec<u64> = data
        .iter()
        .map(|&(_, v)| v)
        .filter(|v| (2000..=8000).contains(v))
        .collect();
    in_range.sort_unstable();
    let got: Vec<u64> = rows
        .iter()
        .map(|(_, v)| match v[1] {
            Value::Int(x) => x,
            _ => panic!(),
        })
        .collect();
    assert_eq!(got, in_range[..5.min(in_range.len())].to_vec());
}

#[test]
fn text_columns_roundtrip_through_sql() {
    let mut db = OutsourcedDatabase::deploy_seeded(2, 3, 5150).unwrap();
    db.execute("CREATE TABLE names (n VARCHAR(6) MODE ORDERED)")
        .unwrap();
    let names = ["ABE", "ABEL", "ADA", "JACK", "JACKIE", "ZED"];
    let vals: Vec<String> = names.iter().map(|n| format!("('{n}')")).collect();
    db.execute(&format!("INSERT INTO names VALUES {}", vals.join(", ")))
        .unwrap();

    // §V-B queries: prefix and lexicographic range, server-side.
    let out = db
        .execute("SELECT * FROM names WHERE n LIKE 'AB%'")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    assert_eq!(rows.len(), 2);

    let out = db
        .execute("SELECT * FROM names WHERE n BETWEEN 'ABEL' AND 'JACK'")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    // ABEL, ADA, JACK, and JACKIE (extensions of the upper bound count,
    // matching the paper's base-27 range semantics).
    assert_eq!(rows.len(), 4);

    let out = db.execute("SELECT MIN(n) FROM names").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    assert_eq!(agg.value, Some(Value::Str("ABE".into())));
    let out = db.execute("SELECT MAX(n) FROM names").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    assert_eq!(agg.value, Some(Value::Str("ZED".into())));
}
