//! Frame-decode fuzz: the wire decoder must survive arbitrary damage.
//!
//! Mirrors the PR 6 WAL torn-tail fuzz at the network layer. A provider
//! reads frames straight off untrusted sockets, so for a valid frame:
//!
//! * every truncation offset must yield "need more bytes" — never a
//!   panic, never a fabricated frame;
//! * every single-bit flip must yield either a typed [`FrameError`]
//!   (magic/length/CRC/kind) or a *different-but-valid* decode only when
//!   the flip landed in the token/payload AND the CRC still matched —
//!   which CRC-32 makes impossible for single-bit damage;
//! * the decoder must never read past the bytes it was given (enforced
//!   structurally: it only sees what `extend` passed in).

use dasp_net::{encode_frame, Frame, FrameDecoder, FrameError, FrameKind};

fn sample_frames() -> Vec<(u64, FrameKind, Vec<u8>)> {
    vec![
        (0, FrameKind::Request, Vec::new()),
        (1, FrameKind::Response, vec![0x42]),
        (u64::MAX, FrameKind::Request, vec![0u8; 9]),
        (
            0xDEAD_BEEF,
            FrameKind::Response,
            (0..255u8).collect::<Vec<u8>>(),
        ),
        (7, FrameKind::Request, vec![0xFF; 1024]),
    ]
}

fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
    let mut dec = FrameDecoder::new();
    dec.extend(bytes);
    let mut out = Vec::new();
    loop {
        match dec.next_frame()? {
            Some(f) => out.push(f),
            None => return Ok(out),
        }
    }
}

#[test]
fn every_truncation_is_incomplete_not_panic() {
    for (token, kind, payload) in sample_frames() {
        let wire = encode_frame(token, kind, &payload);
        for cut in 0..wire.len() {
            let result = decode_all(&wire[..cut]);
            match result {
                Ok(frames) => assert!(
                    frames.is_empty(),
                    "truncation at {cut}/{} fabricated a frame",
                    wire.len()
                ),
                Err(e) => panic!("truncation at {cut}/{} errored: {e}", wire.len()),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    for (token, kind, payload) in sample_frames() {
        let wire = encode_frame(token, kind, &payload);
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut damaged = wire.clone();
                damaged[byte] ^= 1u8 << bit;
                match decode_all(&damaged) {
                    // A flip in the length field can make the frame
                    // "incomplete" (larger length) — acceptable: the
                    // decoder waits for bytes that never come, a clean
                    // stall, not a bad decode. Anything that *does*
                    // decode must not silently differ from the original.
                    Ok(frames) => {
                        for f in &frames {
                            assert!(
                                f.token == token && f.kind == kind && f.payload == payload,
                                "bit flip at byte {byte} bit {bit} produced a DIFFERENT \
                                 valid frame (CRC collision?)"
                            );
                        }
                        assert!(
                            frames.len() <= 1,
                            "bit flip at byte {byte} bit {bit} produced {} frames",
                            frames.len()
                        );
                    }
                    Err(
                        FrameError::BadMagic(_)
                        | FrameError::BadLength { .. }
                        | FrameError::BadCrc { .. }
                        | FrameError::BadKind(_),
                    ) => {}
                }
            }
        }
    }
}

#[test]
fn flips_inside_body_always_caught_by_crc() {
    // Flips strictly inside the CRC-protected body (token/kind/payload)
    // can never decode: CRC-32 detects all single-bit errors.
    let wire = encode_frame(99, FrameKind::Request, b"crc-protected-body");
    for byte in 12..wire.len() {
        for bit in 0..8 {
            let mut damaged = wire.clone();
            damaged[byte] ^= 1u8 << bit;
            match decode_all(&damaged) {
                Err(FrameError::BadCrc { .. }) => {}
                // The kind byte is checked after CRC fails first here.
                other => panic!("body flip at byte {byte} bit {bit}: {other:?}"),
            }
        }
    }
}

#[test]
fn damage_between_frames_poisons_the_stream_once() {
    // Two valid frames with a corrupt one in the middle: the decoder
    // yields the first frame, then a typed error — and after an error
    // the stream is dead (callers close the connection), so the third
    // frame is never decoded from a corrupt stream.
    let a = encode_frame(1, FrameKind::Request, b"first");
    let mut b = encode_frame(2, FrameKind::Request, b"second");
    let c = encode_frame(3, FrameKind::Request, b"third");
    b[14] ^= 0x10; // body damage → CRC mismatch
    let mut stream = Vec::new();
    stream.extend_from_slice(&a);
    stream.extend_from_slice(&b);
    stream.extend_from_slice(&c);

    let mut dec = FrameDecoder::new();
    dec.extend(&stream);
    let first = dec.next_frame().expect("first frame ok").expect("present");
    assert_eq!(first.token, 1);
    assert!(dec.next_frame().is_err(), "damage must surface as an error");
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic pseudo-random garbage (xorshift), sliced at varying
    // chunk boundaries: the decoder errors or stays incomplete, never
    // panics or loops forever.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut garbage = vec![0u8; 8192];
    for b in garbage.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    for chunk in [1usize, 3, 7, 64, 8192] {
        let mut dec = FrameDecoder::new();
        let mut dead = false;
        for piece in garbage.chunks(chunk) {
            if dead {
                break;
            }
            dec.extend(piece);
            match dec.next_frame() {
                Ok(Some(_)) => panic!("garbage decoded as a frame"),
                Ok(None) => {}
                Err(_) => dead = true,
            }
        }
        assert!(dead, "8 KiB of garbage never produced a typed error");
    }
}
