//! Frame-decode fuzz: the wire decoder must survive arbitrary damage.
//!
//! Mirrors the PR 6 WAL torn-tail fuzz at the network layer. A provider
//! reads frames straight off untrusted sockets, so for a valid frame:
//!
//! * every truncation offset must yield "need more bytes" — never a
//!   panic, never a fabricated frame;
//! * every single-bit flip must yield either a typed [`FrameError`]
//!   (magic/length/CRC/kind) or a *different-but-valid* decode only when
//!   the flip landed in the token/payload AND the CRC still matched —
//!   which CRC-32 makes impossible for single-bit damage;
//! * the decoder must never read past the bytes it was given (enforced
//!   structurally: it only sees what `extend` passed in).

use dasp_net::{
    batch_items, decode_batch, encode_frame, BatchFrameBuilder, Frame, FrameDecoder, FrameError,
    FrameKind,
};
use proptest::prelude::*;

fn sample_frames() -> Vec<(u64, FrameKind, Vec<u8>)> {
    vec![
        (0, FrameKind::Request, Vec::new()),
        (1, FrameKind::Response, vec![0x42]),
        (u64::MAX, FrameKind::Request, vec![0u8; 9]),
        (
            0xDEAD_BEEF,
            FrameKind::Response,
            (0..255u8).collect::<Vec<u8>>(),
        ),
        (7, FrameKind::Request, vec![0xFF; 1024]),
    ]
}

fn decode_all(bytes: &[u8]) -> Result<Vec<Frame>, FrameError> {
    let mut dec = FrameDecoder::new();
    dec.extend(bytes);
    let mut out = Vec::new();
    loop {
        match dec.next_frame()? {
            Some(f) => out.push(f),
            None => return Ok(out),
        }
    }
}

#[test]
fn every_truncation_is_incomplete_not_panic() {
    for (token, kind, payload) in sample_frames() {
        let wire = encode_frame(token, kind, &payload);
        for cut in 0..wire.len() {
            let result = decode_all(&wire[..cut]);
            match result {
                Ok(frames) => assert!(
                    frames.is_empty(),
                    "truncation at {cut}/{} fabricated a frame",
                    wire.len()
                ),
                Err(e) => panic!("truncation at {cut}/{} errored: {e}", wire.len()),
            }
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    for (token, kind, payload) in sample_frames() {
        let wire = encode_frame(token, kind, &payload);
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut damaged = wire.clone();
                damaged[byte] ^= 1u8 << bit;
                match decode_all(&damaged) {
                    // A flip in the length field can make the frame
                    // "incomplete" (larger length) — acceptable: the
                    // decoder waits for bytes that never come, a clean
                    // stall, not a bad decode. Anything that *does*
                    // decode must not silently differ from the original.
                    Ok(frames) => {
                        for f in &frames {
                            assert!(
                                f.token == token && f.kind == kind && f.payload == payload,
                                "bit flip at byte {byte} bit {bit} produced a DIFFERENT \
                                 valid frame (CRC collision?)"
                            );
                        }
                        assert!(
                            frames.len() <= 1,
                            "bit flip at byte {byte} bit {bit} produced {} frames",
                            frames.len()
                        );
                    }
                    Err(
                        FrameError::BadMagic(_)
                        | FrameError::BadLength { .. }
                        | FrameError::BadCrc { .. }
                        | FrameError::BadKind(_)
                        | FrameError::BadBatch { .. },
                    ) => {}
                }
            }
        }
    }
}

#[test]
fn flips_inside_body_always_caught_by_crc() {
    // Flips strictly inside the CRC-protected body (token/kind/payload)
    // can never decode: CRC-32 detects all single-bit errors.
    let wire = encode_frame(99, FrameKind::Request, b"crc-protected-body");
    for byte in 12..wire.len() {
        for bit in 0..8 {
            let mut damaged = wire.clone();
            damaged[byte] ^= 1u8 << bit;
            match decode_all(&damaged) {
                Err(FrameError::BadCrc { .. }) => {}
                // The kind byte is checked after CRC fails first here.
                other => panic!("body flip at byte {byte} bit {bit}: {other:?}"),
            }
        }
    }
}

#[test]
fn damage_between_frames_poisons_the_stream_once() {
    // Two valid frames with a corrupt one in the middle: the decoder
    // yields the first frame, then a typed error — and after an error
    // the stream is dead (callers close the connection), so the third
    // frame is never decoded from a corrupt stream.
    let a = encode_frame(1, FrameKind::Request, b"first");
    let mut b = encode_frame(2, FrameKind::Request, b"second");
    let c = encode_frame(3, FrameKind::Request, b"third");
    b[14] ^= 0x10; // body damage → CRC mismatch
    let mut stream = Vec::new();
    stream.extend_from_slice(&a);
    stream.extend_from_slice(&b);
    stream.extend_from_slice(&c);

    let mut dec = FrameDecoder::new();
    dec.extend(&stream);
    let first = dec.next_frame().expect("first frame ok").expect("present");
    assert_eq!(first.token, 1);
    assert!(dec.next_frame().is_err(), "damage must surface as an error");
}

fn encode_batch(kind: FrameKind, subs: &[(u64, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut b = BatchFrameBuilder::begin(&mut out, kind);
    for (token, payload) in subs {
        b.push(*token, payload);
    }
    b.finish();
    out
}

#[test]
fn batch_every_truncation_is_incomplete_or_typed_error() {
    // Truncating the *stream* mid-batch must stall cleanly (the frame
    // header promises more bytes); truncating the decoded *body* must
    // yield a typed BadBatch from the sub-iterator — never a panic and
    // never a fabricated sub-message.
    let subs: Vec<(u64, Vec<u8>)> = vec![
        (0, Vec::new()),
        (u64::MAX, vec![0xAB; 3]),
        (7, (0..100u8).collect()),
    ];
    for kind in [FrameKind::BatchRequest, FrameKind::BatchResponse] {
        let wire = encode_batch(kind, &subs);
        for cut in 0..wire.len() {
            match decode_all(&wire[..cut]) {
                Ok(frames) => assert!(
                    frames.is_empty(),
                    "batch truncation at {cut}/{} fabricated a frame",
                    wire.len()
                ),
                Err(e) => panic!("batch truncation at {cut}/{} errored: {e}", wire.len()),
            }
        }
        // Whole frame decodes; now truncate the *body* at every offset.
        let frame = decode_all(&wire).expect("intact").remove(0);
        for cut in 0..frame.payload.len() {
            match decode_batch(&frame.payload[..cut]) {
                Ok(items) => assert!(
                    items.len() <= subs.len(),
                    "body truncation at {cut} fabricated sub-messages"
                ),
                Err(FrameError::BadBatch { .. }) => {}
                Err(e) => panic!("body truncation at {cut}: unexpected error {e}"),
            }
        }
    }
}

#[test]
fn batch_every_single_bit_flip_is_rejected_or_equivalent() {
    // Frame-level CRC guards the whole batch body: any flip inside the
    // envelope is a typed error, and anything that still decodes must be
    // byte-identical to the original (length-field flips can only stall).
    let subs: Vec<(u64, Vec<u8>)> = vec![(1, b"alpha".to_vec()), (2, b"bravo".to_vec())];
    let wire = encode_batch(FrameKind::BatchRequest, &subs);
    for byte in 0..wire.len() {
        for bit in 0..8 {
            let mut damaged = wire.clone();
            damaged[byte] ^= 1u8 << bit;
            match decode_all(&damaged) {
                Ok(frames) => {
                    for f in &frames {
                        let items = decode_batch(&f.payload).expect("decodable batch");
                        assert_eq!(
                            items, subs,
                            "bit flip at byte {byte} bit {bit} produced DIFFERENT sub-messages"
                        );
                    }
                }
                Err(
                    FrameError::BadMagic(_)
                    | FrameError::BadLength { .. }
                    | FrameError::BadCrc { .. }
                    | FrameError::BadKind(_)
                    | FrameError::BadBatch { .. },
                ) => {}
            }
        }
    }
}

#[test]
fn batch_at_decoder_body_cap_decodes_and_one_past_is_rejected() {
    // A batch body exactly at the decoder's configured cap is accepted;
    // one byte past it is a typed BadLength before any allocation.
    const CAP: u32 = 4096;
    // The cap counts the whole CRC-protected body: outer token + kind
    // (9 bytes) plus one sub's token + length prefix (12 bytes).
    let fixed = 9 + 8 + 4;
    let payload = vec![0x5A; CAP as usize - fixed];
    let wire = encode_batch(FrameKind::BatchRequest, &[(42, payload.clone())]);

    let mut dec = FrameDecoder::with_max_body(CAP);
    dec.extend(&wire);
    let frame = dec.next_frame().expect("at cap").expect("present");
    assert_eq!(decode_batch(&frame.payload).unwrap(), vec![(42, payload)]);

    let over = encode_batch(
        FrameKind::BatchRequest,
        &[(42, vec![0x5A; CAP as usize - fixed + 1])],
    );
    let mut dec = FrameDecoder::with_max_body(CAP);
    dec.extend(&over);
    assert!(matches!(
        dec.next_frame(),
        Err(FrameError::BadLength { .. })
    ));
}

proptest! {
    #[test]
    fn prop_batch_roundtrip_zero_one_many(
        subs in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200)),
            0..24,
        )
    ) {
        for kind in [FrameKind::BatchRequest, FrameKind::BatchResponse] {
            let wire = encode_batch(kind, &subs);
            let frame = decode_all(&wire).expect("intact batch").remove(0);
            prop_assert_eq!(frame.kind, kind);
            prop_assert_eq!(frame.token, subs.len() as u64);
            prop_assert_eq!(decode_batch(&frame.payload).expect("subs"), subs.clone());
        }
    }

    #[test]
    fn prop_batch_garbage_body_never_panics(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary bytes fed to the sub-iterator: each item is Ok or a
        // typed BadBatch, and the iterator fuses after the first error.
        let mut saw_err = false;
        for item in batch_items(&body) {
            prop_assert!(!saw_err, "iterator yielded past an error");
            if item.is_err() {
                saw_err = true;
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic pseudo-random garbage (xorshift), sliced at varying
    // chunk boundaries: the decoder errors or stays incomplete, never
    // panics or loops forever.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut garbage = vec![0u8; 8192];
    for b in garbage.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    for chunk in [1usize, 3, 7, 64, 8192] {
        let mut dec = FrameDecoder::new();
        let mut dead = false;
        for piece in garbage.chunks(chunk) {
            if dead {
                break;
            }
            dec.extend(piece);
            match dec.next_frame() {
                Ok(Some(_)) => panic!("garbage decoded as a frame"),
                Ok(None) => {}
                Err(_) => dead = true,
            }
        }
        assert!(dead, "8 KiB of garbage never produced a typed error");
    }
}
