//! Failure-model integration tests (paper conclusion, challenge (b)):
//! crash, omission and Byzantine providers against the full stack.
//!
//! Transport-parameterized: `DASP_TRANSPORT=tcp` runs every scenario
//! over real sockets (reactor servers + multiplexing TCP clients)
//! instead of in-process channels. Failure injection lives in the
//! cluster layer *above* the transport, so crash/omission/Byzantine
//! semantics — and these assertions — must hold identically on both.

use dasp_client::{ColumnSpec, DataSource, Predicate, QueryOptions, TableSchema, Value};
use dasp_core::client::ClientKeys;
use dasp_net::{Cluster, FailureMode, ReactorConfig, RetryPolicy, TcpServer};
use dasp_server::service::{provider_fleet, tcp_provider_fleet};
use dasp_sss::ShareMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// TCP servers must outlive their clusters (dropping one closes its
/// sockets), so tcp-mode deployments park them here for the whole
/// test process.
static TCP_SERVERS: std::sync::Mutex<Vec<TcpServer>> = std::sync::Mutex::new(Vec::new());

/// Build a k-of-n cluster on the transport selected by `DASP_TRANSPORT`
/// (`channel` default, `tcp` for real sockets).
fn spawn_cluster(n: usize, timeout: Duration) -> Cluster {
    match std::env::var("DASP_TRANSPORT").as_deref() {
        Ok("tcp") => {
            let (servers, addrs) =
                tcp_provider_fleet(n, ReactorConfig::default()).expect("bind tcp provider fleet");
            TCP_SERVERS
                .lock()
                .expect("server holder poisoned")
                .extend(servers);
            // workers = 1 matches Cluster::spawn's per-provider worker
            // count, keeping fault-injection RNG streams identical.
            Cluster::connect_tcp(&addrs, timeout, 1).expect("connect tcp fleet")
        }
        _ => Cluster::spawn(provider_fleet(n), timeout),
    }
}

fn deploy(k: usize, n: usize) -> DataSource {
    let mut rng = StdRng::seed_from_u64(9000 + n as u64);
    let keys = ClientKeys::generate(k, n, &mut rng).unwrap();
    let cluster = spawn_cluster(n, Duration::from_millis(300));
    let mut ds = DataSource::with_seed(keys, cluster, 17).unwrap();
    ds.create_table(
        TableSchema::new(
            "t",
            vec![
                ColumnSpec::numeric("k", 1 << 16, ShareMode::Deterministic),
                ColumnSpec::numeric("v", 1 << 20, ShareMode::OrderPreserving),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..300u64)
        .map(|i| vec![Value::Int(i % 30), Value::Int(i * 17 % (1 << 20))])
        .collect();
    ds.insert("t", &rows).unwrap();
    ds
}

#[test]
fn tolerates_n_minus_k_crashes_exactly() {
    let (k, n) = (2usize, 5usize);
    let mut ds = deploy(k, n);
    let pred = [Predicate::eq("k", 7u64)];
    let healthy = ds.select("t", &pred).unwrap().len();
    assert_eq!(healthy, 10);
    // Crash providers one at a time.
    for dead in 0..n {
        ds.cluster().set_failure(dead, FailureMode::Crashed);
        let alive = n - dead - 1;
        let result = ds.select("t", &pred);
        if alive >= k {
            assert_eq!(result.unwrap().len(), healthy, "{alive} alive");
        } else {
            assert!(result.is_err(), "{alive} alive should fail");
        }
    }
}

#[test]
fn recovery_after_healing() {
    let mut ds = deploy(2, 3);
    ds.cluster().set_failure(0, FailureMode::Crashed);
    ds.cluster().set_failure(1, FailureMode::Crashed);
    assert!(ds.select("t", &[]).is_err());
    ds.cluster().set_failure(0, FailureMode::Healthy);
    ds.cluster().set_failure(1, FailureMode::Healthy);
    assert_eq!(ds.select("t", &[]).unwrap().len(), 300);
}

#[test]
fn omission_faults_slow_but_do_not_break_quorum() {
    let mut ds = deploy(2, 4);
    ds.cluster().set_failure(1, FailureMode::Omission(1.0));
    let rows = ds.select("t", &[Predicate::eq("k", 3u64)]).unwrap();
    assert_eq!(rows.len(), 10);
}

#[test]
fn writes_fail_loudly_when_any_provider_is_down() {
    // Inserts are all-or-nothing across providers: a down provider makes
    // the write fail rather than silently diverge.
    let mut ds = deploy(2, 3);
    ds.cluster().set_failure(2, FailureMode::Crashed);
    let err = ds.insert("t", &[vec![Value::Int(1), Value::Int(1)]]);
    assert!(err.is_err());
    // After healing, writes work again.
    ds.cluster().set_failure(2, FailureMode::Healthy);
    ds.insert("t", &[vec![Value::Int(1), Value::Int(1)]])
        .unwrap();
}

#[test]
fn byzantine_minority_is_survived_with_verification() {
    let mut ds = deploy(2, 5);
    ds.cluster().set_failure(4, FailureMode::Byzantine(1.0));
    let rows = ds
        .select_opts(
            "t",
            &[Predicate::between("v", 0u64, (1 << 20) - 1)],
            QueryOptions { verify: true },
        )
        .unwrap();
    assert_eq!(rows.len(), 300);
    // Ground truth intact for a sample.
    assert!(rows
        .iter()
        .all(|(_, v)| matches!(v[1], Value::Int(x) if x < 1 << 20)));
}

#[test]
fn unverified_reads_may_fail_or_heal_under_byzantine_but_never_wrong_silently() {
    // With probabilistic corruption, an unverified read either errors
    // (decode failure / inconsistent shares detected via OP search) or
    // returns correct data from an honest quorum — across many trials we
    // must never observe a silently wrong value.
    let mut ds = deploy(2, 4);
    ds.cluster().set_failure(0, FailureMode::Byzantine(0.5));
    let mut wrong = 0;
    for i in 0..20u64 {
        match ds.select("t", &[Predicate::eq("k", i % 30)]) {
            Err(_) => {} // detected — acceptable
            Ok(rows) => {
                for (_, v) in rows {
                    let Value::Int(k) = v[0] else { panic!() };
                    let Value::Int(val) = v[1] else { panic!() };
                    // Value must belong to the generated data set.
                    let valid = (0..300u64).any(|j| j % 30 == k && j * 17 % (1 << 20) == val);
                    if !valid {
                        wrong += 1;
                    }
                }
            }
        }
    }
    assert_eq!(wrong, 0, "silent corruption leaked into results");
}

#[test]
fn first_k_wins_returns_well_before_the_cluster_timeout() {
    // One crashed provider must not make reads wait out the full RPC
    // timeout: the first-k-wins engine returns the moment k (+1 cross
    // check) responses arrive, and the crashed provider's timeout is
    // absorbed concurrently, never serialized after the healthy ones.
    let (k, n) = (2usize, 5usize);
    let mut ds = deploy(k, n);
    ds.cluster().set_failure(0, FailureMode::Crashed);
    let timeout = Duration::from_millis(300); // deploy()'s cluster timeout
    let start = std::time::Instant::now();
    let rows = ds.select("t", &[Predicate::eq("k", 11u64)]).unwrap();
    let elapsed = start.elapsed();
    assert_eq!(rows.len(), 10);
    assert!(
        elapsed < timeout / 2,
        "degraded read took {elapsed:?}, want < {:?}",
        timeout / 2
    );
}

#[test]
fn retries_heal_a_heavily_omitting_provider() {
    // With n = k every provider must answer, so an Omission(0.8) fault
    // can only be survived by per-provider retries with backoff.
    let mut ds = deploy(2, 2);
    ds.set_retry_policy(RetryPolicy {
        max_attempts: 30,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        per_attempt_timeout: Some(Duration::from_millis(25)),
        jitter_seed: 7,
    });
    ds.cluster().set_failure(1, FailureMode::Omission(0.8));
    let rows = ds.select("t", &[Predicate::eq("k", 5u64)]).unwrap();
    assert_eq!(rows.len(), 10);
}

#[test]
fn aggregate_queries_survive_crash_minority() {
    let mut ds = deploy(2, 4);
    ds.cluster().set_failure(3, FailureMode::Crashed);
    let sum = ds.sum("t", "v", &[Predicate::eq("k", 0u64)]).unwrap();
    let expected: u64 = (0..300u64)
        .filter(|i| i % 30 == 0)
        .map(|i| i * 17 % (1 << 20))
        .sum();
    assert_eq!(sum.value, Some(Value::Int(expected)));
}

// ---- durability fault injection (WAL + client journal) ----

/// Satellite regression: a WAL whose final record is truncated at *every*
/// possible byte offset — or corrupted at every byte — must either
/// recover the committed prefix cleanly or fail with a typed
/// `RecoveryError`. It must never panic and never resurrect a torn op.
#[test]
fn torn_or_corrupt_wal_tail_never_panics_recovery() {
    use dasp_server::{DurableConfig, ProviderEngine, Request, Response, Row};
    use dasp_storage::WalConfig;

    let base = std::env::temp_dir().join(format!("dasp-torn-fuzz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let dir = base.join("provider");
    let cfg = DurableConfig {
        wal: WalConfig {
            fsync_every: 1,
            ..WalConfig::default()
        },
        checkpoint_every: 0,
        ..DurableConfig::default()
    };
    let insert = |id: u64| Request::Insert {
        table: "t".into(),
        rows: vec![Row {
            id,
            shares: vec![id as i128 * 7],
        }],
    };
    {
        let (e, _) = ProviderEngine::durable(&dir, cfg).unwrap();
        assert_eq!(
            e.execute(&Request::CreateTable {
                name: "t".into(),
                columns: vec!["v".into()],
                indexed: vec![true],
            }),
            Response::Ack
        );
        assert_eq!(e.execute(&insert(1)), Response::Ack);
        assert_eq!(e.execute(&insert(2)), Response::Ack);
    }
    let wal_path = dir.join("wal.log");
    let len_before = std::fs::metadata(&wal_path).unwrap().len();
    {
        let (e, _) = ProviderEngine::durable(&dir, cfg).unwrap();
        assert_eq!(e.execute(&insert(3)), Response::Ack);
    }
    let len_after = std::fs::metadata(&wal_path).unwrap().len();
    assert!(len_after > len_before, "final record not on disk");
    let wal_bytes = std::fs::read(&wal_path).unwrap();

    let scratch = base.join("scratch");
    let check = |tag: String, bytes: &[u8]| {
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        let _ = std::fs::copy(dir.join("data.db"), scratch.join("data.db"));
        std::fs::write(scratch.join("wal.log"), bytes).unwrap();
        match ProviderEngine::recover(&scratch) {
            Ok((e, _)) => {
                let resp = e.execute(&Request::Query {
                    table: "t".into(),
                    predicate: vec![],
                    agg: None,
                });
                let Response::Rows(rows) = resp else {
                    panic!("{tag}: {resp:?}")
                };
                let ids: Vec<u64> = rows.iter().map(|r| r.id).collect();
                assert!(
                    ids == vec![1, 2] || ids == vec![1, 2, 3],
                    "{tag}: recovered a non-prefix state {ids:?}"
                );
            }
            // A typed error is an acceptable outcome; a panic is not.
            Err(e) => {
                let _ = e.to_string();
            }
        }
    };
    for cut in len_before..len_after {
        check(format!("truncate@{cut}"), &wal_bytes[..cut as usize]);
    }
    for pos in len_before..len_after {
        let mut mutated = wal_bytes.clone();
        mutated[pos as usize] ^= 0x41;
        check(format!("flip@{pos}"), &mutated);
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Satellite regression (§V-C): lazy updates queued by one client
/// session survive a client restart via the durable journal, overlay
/// reads immediately, and flush cleanly afterwards.
#[test]
fn lazy_update_queue_survives_client_restart() {
    let base = std::env::temp_dir().join(format!("dasp-lazy-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let path = base.join("lazy.journal");
    let pred = [Predicate::eq("k", 7u64)];
    // Session 1: queue lazy re-shares, then "crash" without flushing.
    {
        let mut ds = deploy(2, 3);
        ds.set_lazy_journal(&path).unwrap();
        let n = ds
            .update_where("t", &pred, &[("v", Value::Int(123_456))])
            .unwrap();
        assert_eq!(n, 10);
    }
    // Session 2: a fresh client re-registers the table, recovers the
    // queue from the journal, and the overlay + flush behave as if the
    // first session had never died.
    {
        let mut ds = deploy(2, 3);
        let recovered = ds.set_lazy_journal(&path).unwrap();
        assert_eq!(recovered, 10);
        let rows = ds.select("t", &pred).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|(_, v)| v[1] == Value::Int(123_456)));
        assert_eq!(ds.flush("t").unwrap(), 10);
        // Flushed state is provider-side now (overlay queue is empty).
        let rows = ds.select("t", &pred).unwrap();
        assert!(rows.iter().all(|(_, v)| v[1] == Value::Int(123_456)));
        // A fully drained journal compacts back to a bare header.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 16);
    }
    let _ = std::fs::remove_dir_all(&base);
}
