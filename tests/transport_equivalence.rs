//! Transport equivalence: the resilience stack — first-k-wins quorum,
//! hedged reads, retries, circuit breakers, failure injection — must
//! behave identically whether providers are in-process services behind
//! channels or remote processes behind real TCP sockets.
//!
//! This is the tentpole's core acceptance test: every scenario below
//! runs twice, once per transport, through the *same* cluster code with
//! zero `resilience.rs` changes, and asserts the same observable
//! outcome.

use dasp_net::{
    BreakerConfig, BreakerState, Cluster, FailureMode, QuorumMode, QuorumOptions, ReactorConfig,
    RetryPolicy, RpcError, SharedService, TcpClient, TcpClientConfig, TcpServer,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Transport {
    Channel,
    Tcp,
    /// TCP with a 1 ms client-side coalescing window: requests ride in
    /// multi-query batch frames. Same resilience semantics required.
    TcpBatched,
}

const TRANSPORTS: [Transport; 3] = [Transport::Channel, Transport::Tcp, Transport::TcpBatched];

/// Deterministic service: response = [provider tag, request bytes...].
struct TaggedEcho(u8);

impl SharedService for TaggedEcho {
    fn handle(&self, request: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(request.len() + 1);
        out.push(self.0);
        out.extend_from_slice(request);
        out
    }
}

/// A cluster of `n` tagged echo providers on the given transport. The
/// TCP servers ride along so they outlive the cluster.
struct Fixture {
    cluster: Cluster,
    _servers: Vec<TcpServer>,
}

fn fixture(transport: Transport, n: usize, timeout: Duration, breaker: BreakerConfig) -> Fixture {
    match transport {
        Transport::Channel => {
            let services: Vec<Arc<dyn SharedService>> = (0..n)
                .map(|i| Arc::new(TaggedEcho(i as u8)) as Arc<dyn SharedService>)
                .collect();
            Fixture {
                cluster: Cluster::spawn_concurrent_with_breaker(services, timeout, 1, breaker),
                _servers: Vec::new(),
            }
        }
        Transport::Tcp | Transport::TcpBatched => {
            let batch_window = match transport {
                Transport::TcpBatched => Duration::from_millis(1),
                _ => Duration::ZERO,
            };
            let mut servers = Vec::with_capacity(n);
            let mut clients: Vec<Arc<dyn SharedService>> = Vec::with_capacity(n);
            for i in 0..n {
                let server = TcpServer::serve(
                    "127.0.0.1:0",
                    Arc::new(TaggedEcho(i as u8)),
                    ReactorConfig::default(),
                )
                .expect("bind");
                let cfg = TcpClientConfig {
                    call_timeout: timeout.saturating_mul(2),
                    error_hold: timeout.saturating_mul(2),
                    batch_window,
                    ..TcpClientConfig::default()
                };
                clients.push(Arc::new(
                    TcpClient::connect(server.local_addr(), cfg).expect("dial"),
                ));
                servers.push(server);
            }
            Fixture {
                cluster: Cluster::spawn_concurrent_with_breaker(clients, timeout, 1, breaker),
                _servers: servers,
            }
        }
    }
}

fn expected(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = vec![tag];
    out.extend_from_slice(payload);
    out
}

const TIMEOUT: Duration = Duration::from_millis(300);

#[test]
fn plain_calls_identical_on_both_transports() {
    for t in TRANSPORTS {
        let fx = fixture(t, 3, TIMEOUT, BreakerConfig::default());
        for p in 0..3 {
            let resp = fx.cluster.call(p, b"hello".to_vec()).expect("call");
            assert_eq!(resp, expected(p as u8, b"hello"), "{t:?} provider {p}");
        }
    }
}

#[test]
fn first_k_wins_quorum_identical_on_both_transports() {
    for t in TRANSPORTS {
        let fx = fixture(t, 5, TIMEOUT, BreakerConfig::default());
        // One crash: 3-of-5 still succeeds.
        fx.cluster.set_failure(0, FailureMode::Crashed);
        let reqs: Vec<_> = (0..5).map(|p| (p, b"q".to_vec())).collect();
        let got = fx.cluster.call_quorum(reqs.clone(), 3).expect("quorum");
        assert!(got.len() >= 3, "{t:?}: {} responses", got.len());
        assert!(
            got.iter().all(|(p, r)| *r == expected(*p as u8, b"q")),
            "{t:?}: wrong quorum payloads"
        );
        assert!(
            got.iter().all(|(p, _)| *p != 0),
            "{t:?}: crashed provider responded"
        );
        // Three crashes: 3-of-5 with 2 alive must fail on both.
        fx.cluster.set_failure(1, FailureMode::Crashed);
        fx.cluster.set_failure(2, FailureMode::Crashed);
        let err = fx.cluster.call_quorum(reqs, 3).expect_err("unreachable");
        assert!(
            matches!(
                err,
                RpcError::QuorumUnreachable {
                    got: 2,
                    needed: 3,
                    ..
                }
            ),
            "{t:?}: {err:?}"
        );
    }
}

#[test]
fn hedged_reads_race_stragglers_on_both_transports() {
    for t in TRANSPORTS {
        let fx = fixture(t, 4, TIMEOUT, BreakerConfig::default());
        // Provider 0 is a straggler; a hedge launched up front must win
        // well before 0's injected delay, on either transport.
        fx.cluster.set_latency_for(0, Duration::from_millis(150));
        let opts = QuorumOptions {
            retry: RetryPolicy::none(),
            hedge: 2,
            extra: 0,
            mode: QuorumMode::FirstK,
            validate: None,
        };
        let reqs: Vec<_> = (0..4).map(|p| (p, b"h".to_vec())).collect();
        let start = Instant::now();
        let got = fx.cluster.call_quorum_opts(reqs, 2, &opts).expect("quorum");
        let elapsed = start.elapsed();
        assert!(got.len() >= 2, "{t:?}");
        assert!(
            elapsed < Duration::from_millis(100),
            "{t:?}: hedged read took {elapsed:?}, straggler not masked"
        );
    }
}

#[test]
fn circuit_breaker_opens_identically_on_both_transports() {
    let breaker = BreakerConfig {
        failure_threshold: 3,
        cooldown: Duration::from_secs(30),
    };
    let short = Duration::from_millis(80);
    for t in TRANSPORTS {
        let fx = fixture(t, 3, short, breaker);
        fx.cluster.set_failure(2, FailureMode::Crashed);
        for _ in 0..3 {
            let err = fx.cluster.call(2, b"x".to_vec()).expect_err("crashed");
            assert!(matches!(err, RpcError::Timeout(2)), "{t:?}: {err:?}");
        }
        let snap = fx.cluster.health().snapshot();
        assert_eq!(snap.providers[2].state, BreakerState::Open, "{t:?}");
        assert_eq!(snap.providers[0].state, BreakerState::Closed, "{t:?}");
        assert_eq!(snap.providers[1].state, BreakerState::Closed, "{t:?}");
        // Healthy providers keep serving while 2's breaker is open.
        assert_eq!(
            fx.cluster.call(0, b"y".to_vec()).expect("healthy"),
            expected(0, b"y"),
            "{t:?}"
        );
    }
}

#[test]
fn retries_heal_omission_identically_on_both_transports() {
    let policy = RetryPolicy {
        max_attempts: 30,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        per_attempt_timeout: Some(Duration::from_millis(25)),
        jitter_seed: 7,
    };
    for t in TRANSPORTS {
        let fx = fixture(t, 2, TIMEOUT, BreakerConfig::default());
        fx.cluster.set_failure(1, FailureMode::Omission(0.8));
        // Same seed → same worker RNG stream → the same attempts drop on
        // both transports; retries recover within the schedule either way.
        let resp = fx
            .cluster
            .call_with_retry(1, b"r".to_vec(), &policy)
            .expect("retries heal omission");
        assert_eq!(resp, expected(1, b"r"), "{t:?}");
    }
}

#[test]
fn byzantine_injection_sits_above_the_socket_on_both_transports() {
    // Byzantine corruption is injected in the cluster worker, after the
    // (possibly remote) service answered — so a validate hook sees and
    // rejects the same corruption on either transport.
    for t in TRANSPORTS {
        let fx = fixture(t, 3, TIMEOUT, BreakerConfig::default());
        fx.cluster.set_failure(0, FailureMode::Byzantine(1.0));
        let validate = |p: usize, r: &[u8]| {
            if r == expected(p as u8, b"b").as_slice() {
                Ok(())
            } else {
                Err("corrupt share".to_string())
            }
        };
        let opts = QuorumOptions {
            retry: RetryPolicy::none(),
            hedge: usize::MAX,
            extra: 0,
            mode: QuorumMode::FirstK,
            validate: Some(&validate),
        };
        let reqs: Vec<_> = (0..3).map(|p| (p, b"b".to_vec())).collect();
        let got = fx.cluster.call_quorum_opts(reqs, 2, &opts).expect("quorum");
        assert!(got.len() >= 2, "{t:?}");
        assert!(
            got.iter().all(|(p, r)| *r == expected(*p as u8, b"b")),
            "{t:?}: corrupt response passed validation"
        );
    }
}

#[test]
fn query_many_positions_identical_with_batching_on_and_off() {
    // Full client stack over real providers: the same secret-shared
    // deployment (same key seed, same rows, same client RNG seed) is
    // stood up twice — once with the coalescing window off, once with a
    // 1 ms window — and `query_many` must return position-identical
    // decoded rows. Batching may only change wire shape, never results.
    use dasp_client::{ColumnSpec, DataSource, Predicate, TableSchema, Value};
    use dasp_core::client::ClientKeys;
    use dasp_server::service::tcp_provider_fleet;
    use dasp_sss::ShareMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let (k, n) = (2usize, 4usize);
    let rows: Vec<Vec<Value>> = (0..120u64)
        .map(|i| vec![Value::Int(i % 12), Value::Int(i * 31 % (1 << 16))])
        .collect();
    let mut outcomes = Vec::new();
    let mut fleets = Vec::new(); // keep servers alive until both queries ran
    for window_us in [0u64, 1000] {
        let mut rng = StdRng::seed_from_u64(4242);
        let keys = ClientKeys::generate(k, n, &mut rng).unwrap();
        let (servers, addrs) = tcp_provider_fleet(n, ReactorConfig::default()).expect("bind fleet");
        fleets.push(servers);
        let cluster = Cluster::connect_tcp_with(
            &addrs,
            Duration::from_secs(2),
            1,
            TcpClientConfig {
                batch_window: Duration::from_micros(window_us),
                ..TcpClientConfig::default()
            },
        )
        .expect("connect");
        let mut ds = DataSource::with_seed(keys, cluster, 99).unwrap();
        ds.create_table(
            TableSchema::new(
                "t",
                vec![
                    ColumnSpec::numeric("k", 1 << 16, ShareMode::Deterministic),
                    ColumnSpec::numeric("v", 1 << 20, ShareMode::OrderPreserving),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        ds.insert("t", &rows).unwrap();
        let predicates: Vec<Vec<Predicate>> = (0..9u64)
            .map(|i| vec![Predicate::eq("k", i % 12)])
            .collect();
        outcomes.push(ds.query_many("t", &predicates).expect("query_many"));
    }
    let (off, on) = (&outcomes[0], &outcomes[1]);
    assert_eq!(off.len(), on.len());
    for (i, (a, b)) in off.iter().zip(on).enumerate() {
        assert!(!a.is_empty(), "query {i} matched nothing — weak test");
        assert_eq!(a, b, "query {i}: batching changed decoded rows");
    }
}

#[test]
fn worker_pools_multiplex_identically_on_both_transports() {
    // Out-of-order completion under a worker pool: a slow request issued
    // first must not block a fast one (token multiplexing), channel or
    // socket alike. call_many fans out concurrently on both.
    for t in TRANSPORTS {
        let fx = fixture(t, 4, Duration::from_secs(2), BreakerConfig::default());
        let reqs: Vec<_> = (0..4).map(|p| (p, vec![p as u8; 1000])).collect();
        let start = Instant::now();
        let results = fx.cluster.call_many(reqs);
        assert_eq!(results.len(), 4);
        for (p, r) in &results {
            assert_eq!(
                r.as_ref().expect("ok"),
                &expected(*p as u8, &vec![*p as u8; 1000]),
                "{t:?}"
            );
        }
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "{t:?}: fan-out serialized"
        );
    }
}
