//! Large-scale soak tests. The expensive ones are `#[ignore]`d so the
//! default `cargo test` stays fast; run them with
//! `cargo test --release -p dasp-apps --test soak -- --ignored`.

use dasp_client::{ClientKeys, ColumnSpec, DataSource, Predicate, TableSchema};
use dasp_core::client::Value;
use dasp_core::{OutsourcedDatabase, QueryOutput};
use dasp_net::{Cluster, FailureMode, NetworkModel, RetryPolicy};
use dasp_server::service::provider_fleet;
use dasp_sss::ShareMode;
use dasp_workload::employees::{self, SalaryDist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A fast smoke version of the soak path that always runs.
#[test]
fn soak_smoke_5k() {
    run_soak(5_000);
}

/// The real thing: 100k rows through the full stack.
#[test]
#[ignore = "several seconds in release; run with -- --ignored"]
fn soak_100k() {
    run_soak(100_000);
}

/// Failure-churn soak: a background thread keeps crashing and healing
/// random providers while reads and writes flow. Invariants:
///
/// * reads succeed whenever at least `k` providers are healthy (the
///   churn never takes down more than `n - k - 1` at once, so they
///   must always succeed here);
/// * every value a read returns matches ground truth — failures may
///   slow or fail queries but never silently corrupt them;
/// * writes either apply everywhere or fail loudly, and a failed write
///   never pollutes subsequent reads.
#[test]
fn soak_survives_failure_churn() {
    let (k, n) = (2usize, 5usize);
    let mut rng = StdRng::seed_from_u64(4242);
    let keys = ClientKeys::generate(k, n, &mut rng).unwrap();
    let cluster = Cluster::spawn(provider_fleet(n), Duration::from_millis(250));
    let mut ds = DataSource::with_seed(keys, cluster, 99).unwrap();
    ds.set_retry_policy(RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(10),
        per_attempt_timeout: Some(Duration::from_millis(120)),
        jitter_seed: 4242,
    });
    ds.create_table(
        TableSchema::new(
            "t",
            vec![
                ColumnSpec::numeric("k", 1 << 16, ShareMode::Deterministic),
                ColumnSpec::numeric("v", 1 << 20, ShareMode::OrderPreserving),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let base: Vec<Vec<Value>> = (0..120u64)
        .map(|i| vec![Value::Int(i % 12), Value::Int(i * 13 % (1 << 20))])
        .collect();
    ds.insert("t", &base).unwrap();

    let switches: Vec<_> = (0..n)
        .map(|p| ds.cluster().failure_switch(p).unwrap())
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xc0ffee);
            while !stop.load(Ordering::Relaxed) {
                // At most two providers sick at once, so k healthy
                // providers plus one cross-check share always exist.
                let a = rng.gen_range(0..switches.len());
                let b = rng.gen_range(0..switches.len());
                switches[a].set(FailureMode::Crashed);
                if b != a {
                    switches[b].set(FailureMode::Omission(0.5));
                }
                std::thread::sleep(Duration::from_millis(7));
                switches[a].set(FailureMode::Healthy);
                if b != a {
                    switches[b].set(FailureMode::Healthy);
                }
                std::thread::sleep(Duration::from_millis(3));
            }
            for s in &switches {
                s.set(FailureMode::Healthy);
            }
        })
    };

    let mut attempted: Vec<(u64, u64)> = Vec::new();
    let mut write_failures = 0usize;
    for i in 0..40u64 {
        // Writes need every provider, so under churn many fail loudly.
        // Either way the attempted row may exist on some providers; it
        // must never decode to anything but the value we sent.
        let (key, val) = (100 + i, i * 31 % (1 << 20));
        attempted.push((key, val));
        if ds
            .insert("t", &[vec![Value::Int(key), Value::Int(val)]])
            .is_err()
        {
            write_failures += 1;
        }

        // Reads ride first-k-wins + retries: with a healthy quorum
        // guaranteed alive they must succeed, and must match ground
        // truth exactly.
        let key_q = i % 12;
        let rows = ds
            .select("t", &[Predicate::eq("k", key_q)])
            .expect("a read with >= k healthy providers must succeed");
        let want: Vec<u64> = (0..120u64)
            .filter(|j| j % 12 == key_q)
            .map(|j| j * 13 % (1 << 20))
            .collect();
        assert_eq!(rows.len(), want.len(), "iteration {i}");
        for (_, vals) in &rows {
            let Value::Int(kk) = vals[0] else { panic!() };
            let Value::Int(vv) = vals[1] else { panic!() };
            assert_eq!(kk, key_q);
            assert!(want.contains(&vv), "silent corruption: k={kk} v={vv}");
        }
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();

    // After healing: any surviving churn-era row still decodes to the
    // exact value that was sent (partially-applied writes either reach
    // k providers and reconstruct correctly, or stay invisible).
    for &(key, val) in &attempted {
        if let Ok(rows) = ds.select("t", &[Predicate::eq("k", key)]) {
            for (_, vals) in rows {
                assert_eq!(vals[1], Value::Int(val), "corrupted write for key {key}");
            }
        }
    }

    // The health layer witnessed the churn.
    let snapshot = ds.health();
    let table = snapshot.to_string();
    assert!(table.contains("provider"), "{table}");
    println!("write failures under churn: {write_failures}/40\n{table}");
}

fn run_soak(n: usize) {
    let mut db = OutsourcedDatabase::deploy_seeded(2, 3, n as u64).unwrap();
    db.execute(
        "CREATE TABLE employees (name VARCHAR(8) MODE DETERMINISTIC, \
         salary INT(1048576) MODE ORDERED, ssn INT(1073741824) MODE RANDOM)",
    )
    .unwrap();
    let data = employees::generate(n, 1 << 20, SalaryDist::Zipf(1.05), 42);
    {
        let ds = db.source();
        let rows: Vec<Vec<Value>> = data
            .iter()
            .map(|e| {
                vec![
                    Value::Str(e.name.clone()),
                    Value::Int(e.salary),
                    Value::Int(e.ssn),
                ]
            })
            .collect();
        for chunk in rows.chunks(2500) {
            ds.insert("employees", chunk).unwrap();
        }
    }

    // Count.
    let out = db.execute("SELECT COUNT(*) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    assert_eq!(agg.count as usize, n);

    // A spread of range queries, all checked against ground truth.
    for (lo, hi) in [(0u64, 5_000u64), (100_000, 120_000), (1_000_000, 1_048_575)] {
        let out = db
            .execute(&format!(
                "SELECT COUNT(*) FROM employees WHERE salary BETWEEN {lo} AND {hi}"
            ))
            .unwrap();
        let QueryOutput::Aggregate(agg) = out else {
            panic!()
        };
        let want = data
            .iter()
            .filter(|e| (lo..=hi).contains(&e.salary))
            .count();
        assert_eq!(agg.count as usize, want, "[{lo},{hi}]");
    }

    // SUM over everything (exercises share-sum accumulation at scale).
    let out = db.execute("SELECT SUM(salary) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    let want: u64 = data.iter().map(|e| e.salary).sum();
    assert_eq!(agg.value, Some(Value::Int(want)));

    // Grouped aggregation over many distinct groups.
    let out = db
        .execute("SELECT COUNT(*) FROM employees GROUP BY name")
        .unwrap();
    let QueryOutput::Groups(groups) = out else {
        panic!()
    };
    let distinct: std::collections::HashSet<&String> = data.iter().map(|e| &e.name).collect();
    assert_eq!(groups.len(), distinct.len());
    let total: u64 = groups.iter().map(|g| g.count).sum();
    assert_eq!(total as usize, n);

    // Top-k stays cheap regardless of table size.
    let before = db.cluster().stats().snapshot();
    let out = db
        .execute("SELECT * FROM employees ORDER BY salary DESC LIMIT 10")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    assert_eq!(rows.len(), 10);
    let delta = db.cluster().stats().snapshot().since(&before);
    assert!(
        delta.bytes_received < 8 * 1024,
        "top-k moved {} bytes at n={n}",
        delta.bytes_received
    );
    let wan = delta.modeled_time(&NetworkModel::wan());
    assert!(wan < std::time::Duration::from_secs(1));
}
