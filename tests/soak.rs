//! Large-scale soak tests. The expensive ones are `#[ignore]`d so the
//! default `cargo test` stays fast; run them with
//! `cargo test --release -p dasp-apps --test soak -- --ignored`.

use dasp_core::client::Value;
use dasp_core::{OutsourcedDatabase, QueryOutput};
use dasp_net::NetworkModel;
use dasp_workload::employees::{self, SalaryDist};

/// A fast smoke version of the soak path that always runs.
#[test]
fn soak_smoke_5k() {
    run_soak(5_000);
}

/// The real thing: 100k rows through the full stack.
#[test]
#[ignore = "several seconds in release; run with -- --ignored"]
fn soak_100k() {
    run_soak(100_000);
}

fn run_soak(n: usize) {
    let mut db = OutsourcedDatabase::deploy_seeded(2, 3, n as u64).unwrap();
    db.execute(
        "CREATE TABLE employees (name VARCHAR(8) MODE DETERMINISTIC, \
         salary INT(1048576) MODE ORDERED, ssn INT(1073741824) MODE RANDOM)",
    )
    .unwrap();
    let data = employees::generate(n, 1 << 20, SalaryDist::Zipf(1.05), 42);
    {
        let ds = db.source();
        let rows: Vec<Vec<Value>> = data
            .iter()
            .map(|e| {
                vec![
                    Value::Str(e.name.clone()),
                    Value::Int(e.salary),
                    Value::Int(e.ssn),
                ]
            })
            .collect();
        for chunk in rows.chunks(2500) {
            ds.insert("employees", chunk).unwrap();
        }
    }

    // Count.
    let out = db.execute("SELECT COUNT(*) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else { panic!() };
    assert_eq!(agg.count as usize, n);

    // A spread of range queries, all checked against ground truth.
    for (lo, hi) in [(0u64, 5_000u64), (100_000, 120_000), (1_000_000, 1_048_575)] {
        let out = db
            .execute(&format!(
                "SELECT COUNT(*) FROM employees WHERE salary BETWEEN {lo} AND {hi}"
            ))
            .unwrap();
        let QueryOutput::Aggregate(agg) = out else { panic!() };
        let want = data
            .iter()
            .filter(|e| (lo..=hi).contains(&e.salary))
            .count();
        assert_eq!(agg.count as usize, want, "[{lo},{hi}]");
    }

    // SUM over everything (exercises share-sum accumulation at scale).
    let out = db.execute("SELECT SUM(salary) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else { panic!() };
    let want: u64 = data.iter().map(|e| e.salary).sum();
    assert_eq!(agg.value, Some(Value::Int(want)));

    // Grouped aggregation over many distinct groups.
    let out = db
        .execute("SELECT COUNT(*) FROM employees GROUP BY name")
        .unwrap();
    let QueryOutput::Groups(groups) = out else { panic!() };
    let distinct: std::collections::HashSet<&String> =
        data.iter().map(|e| &e.name).collect();
    assert_eq!(groups.len(), distinct.len());
    let total: u64 = groups.iter().map(|g| g.count).sum();
    assert_eq!(total as usize, n);

    // Top-k stays cheap regardless of table size.
    let before = db.cluster().stats().snapshot();
    let out = db
        .execute("SELECT * FROM employees ORDER BY salary DESC LIMIT 10")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else { panic!() };
    assert_eq!(rows.len(), 10);
    let delta = db.cluster().stats().snapshot().since(&before);
    assert!(
        delta.bytes_received < 8 * 1024,
        "top-k moved {} bytes at n={n}",
        delta.bytes_received
    );
    let wan = delta.modeled_time(&NetworkModel::wan());
    assert!(wan < std::time::Duration::from_secs(1));
}
