//! Whole-stack integration: SQL → client rewriting → RPC → provider
//! engines → reconstruction, differentially checked against an in-memory
//! plaintext oracle at moderate scale.

use dasp_core::client::Value;
use dasp_core::{OutsourcedDatabase, QueryOutput};
use dasp_workload::employees::{self, SalaryDist};

const N: usize = 2000;
const DOMAIN: u64 = 1 << 20;

struct Oracle {
    rows: Vec<employees::Employee>,
}

impl Oracle {
    fn range(&self, lo: u64, hi: u64) -> Vec<&employees::Employee> {
        self.rows
            .iter()
            .filter(|e| e.salary >= lo && e.salary <= hi)
            .collect()
    }
}

fn deploy() -> (OutsourcedDatabase, Oracle) {
    let mut db = OutsourcedDatabase::deploy_seeded(2, 4, 77).unwrap();
    db.execute(
        "CREATE TABLE employees (name VARCHAR(8) MODE DETERMINISTIC, \
         salary INT(1048576) MODE ORDERED, ssn INT(1073741824) MODE RANDOM)",
    )
    .unwrap();
    let data = employees::generate(N, DOMAIN, SalaryDist::Uniform, 123);
    for chunk in data.chunks(250) {
        let values: Vec<String> = chunk
            .iter()
            .map(|e| format!("('{}', {}, {})", e.name, e.salary, e.ssn))
            .collect();
        db.execute(&format!(
            "INSERT INTO employees VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    }
    (db, Oracle { rows: data })
}

#[test]
fn range_queries_match_oracle() {
    let (mut db, oracle) = deploy();
    for (lo, hi) in [
        (0u64, 1000u64),
        (10_000, 40_000),
        (500_000, DOMAIN - 1),
        (7, 7),
    ] {
        let out = db
            .execute(&format!(
                "SELECT * FROM employees WHERE salary BETWEEN {lo} AND {hi}"
            ))
            .unwrap();
        let QueryOutput::Rows { rows, .. } = out else {
            panic!()
        };
        let expect = oracle.range(lo, hi);
        assert_eq!(rows.len(), expect.len(), "range [{lo}, {hi}]");
        let mut got: Vec<u64> = rows
            .iter()
            .map(|(_, v)| match v[1] {
                Value::Int(s) => s,
                _ => panic!(),
            })
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = expect.iter().map(|e| e.salary).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn aggregates_match_oracle() {
    let (mut db, oracle) = deploy();
    let (lo, hi) = (100_000u64, 600_000u64);
    let in_range = oracle.range(lo, hi);

    let out = db
        .execute(&format!(
            "SELECT SUM(salary) FROM employees WHERE salary BETWEEN {lo} AND {hi}"
        ))
        .unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    let want: u64 = in_range.iter().map(|e| e.salary).sum();
    assert_eq!(agg.value, Some(Value::Int(want)));
    assert_eq!(agg.count, in_range.len() as u64);

    let out = db.execute("SELECT MIN(salary) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    let want = oracle.rows.iter().map(|e| e.salary).min().unwrap();
    assert_eq!(agg.value, Some(Value::Int(want)));

    let out = db.execute("SELECT MAX(salary) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    let want = oracle.rows.iter().map(|e| e.salary).max().unwrap();
    assert_eq!(agg.value, Some(Value::Int(want)));

    let out = db.execute("SELECT MEDIAN(salary) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    let mut sal: Vec<u64> = oracle.rows.iter().map(|e| e.salary).collect();
    sal.sort_unstable();
    assert_eq!(agg.value, Some(Value::Int(sal[sal.len() / 2])));

    let out = db.execute("SELECT COUNT(*) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    assert_eq!(agg.count, N as u64);
}

#[test]
fn exact_match_and_name_prefix_match_oracle() {
    let (mut db, oracle) = deploy();
    let probe = oracle.rows[42].name.clone();
    let out = db
        .execute(&format!("SELECT * FROM employees WHERE name = '{probe}'"))
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    let want = oracle.rows.iter().filter(|e| e.name == probe).count();
    assert_eq!(rows.len(), want);

    let out = db
        .execute("SELECT * FROM employees WHERE name LIKE 'JOHN%'")
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    let want = oracle
        .rows
        .iter()
        .filter(|e| e.name.starts_with("JOHN"))
        .count();
    assert_eq!(rows.len(), want);
}

#[test]
fn update_delete_lifecycle_matches_oracle() {
    let (mut db, oracle) = deploy();
    let probe = oracle.rows[7].name.clone();
    let n_probe = oracle.rows.iter().filter(|e| e.name == probe).count();

    let out = db
        .execute(&format!(
            "UPDATE employees SET salary = 999999 WHERE name = '{probe}'"
        ))
        .unwrap();
    assert_eq!(out, QueryOutput::Affected(n_probe));

    let out = db
        .execute("SELECT COUNT(*) FROM employees WHERE salary = 999999")
        .unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    assert_eq!(agg.count as usize, n_probe);

    let out = db
        .execute(&format!("DELETE FROM employees WHERE name = '{probe}'"))
        .unwrap();
    assert_eq!(out, QueryOutput::Affected(n_probe));
    let out = db.execute("SELECT COUNT(*) FROM employees").unwrap();
    let QueryOutput::Aggregate(agg) = out else {
        panic!()
    };
    assert_eq!(agg.count as usize, N - n_probe);
}

#[test]
fn random_mode_column_queries_work_but_cost_full_scans() {
    let (mut db, oracle) = deploy();
    let target = &oracle.rows[99];
    let before = db.cluster().stats().snapshot();
    let out = db
        .execute(&format!(
            "SELECT * FROM employees WHERE ssn = {}",
            target.ssn
        ))
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!()
    };
    assert!(!rows.is_empty());
    assert!(rows
        .iter()
        .any(|(_, v)| v[0] == Value::Str(target.name.clone())));
    let delta = db.cluster().stats().snapshot().since(&before);
    // Full-table transfer: at least N rows × 3 columns × 16 bytes from k=2.
    assert!(
        delta.bytes_received as usize > N * 3 * 16,
        "expected full scan, got {} bytes",
        delta.bytes_received
    );
}

#[test]
fn traffic_for_selective_queries_is_small() {
    let (mut db, _) = deploy();
    let before = db.cluster().stats().snapshot();
    db.execute("SELECT * FROM employees WHERE salary BETWEEN 100 AND 200")
        .unwrap();
    let delta = db.cluster().stats().snapshot().since(&before);
    assert!(
        delta.bytes_received < 64 * 1024,
        "selective range moved {} bytes",
        delta.bytes_received
    );
}
