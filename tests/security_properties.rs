//! Security-property tests: what each share mode does and does not leak,
//! checked statistically against live share constructions.

use dasp_core::client::ClientKeys;
use dasp_core::sss::{DomainKey, FieldShare, FieldSharing, OpSharing, OpssParams, ShareMode};
use dasp_field::Fp;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random-mode shares of DIFFERENT secrets are statistically
/// indistinguishable at a single provider: compare the distribution of
/// share low bits for secret A vs secret B.
#[test]
fn random_mode_single_share_leaks_nothing_statistical() {
    let mut rng = StdRng::seed_from_u64(1);
    let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
    let trials = 4000;
    let mut ones_a = 0u32;
    let mut ones_b = 0u32;
    for _ in 0..trials {
        let a = sharing.split_random(Fp::from_u64(0), &mut rng);
        let b = sharing.split_random(Fp::from_u64(999_999), &mut rng);
        ones_a += (a[0].y.to_u64() & 1) as u32;
        ones_b += (b[0].y.to_u64() & 1) as u32;
    }
    // Both should be ~50% regardless of the secret.
    for (label, ones) in [("secret 0", ones_a), ("secret 999999", ones_b)] {
        let frac = ones as f64 / trials as f64;
        assert!(
            (0.45..0.55).contains(&frac),
            "{label}: low-bit frequency {frac} not ~0.5"
        );
    }
}

/// Perfect-secrecy witness: for any single share and ANY candidate
/// secret, there exists a consistent polynomial — so one share supports
/// all secrets equally.
#[test]
fn one_share_consistent_with_every_secret() {
    let mut rng = StdRng::seed_from_u64(2);
    let sharing = FieldSharing::generate(2, 2, &mut rng).unwrap();
    let shares = sharing.split_random(Fp::from_u64(12_345), &mut rng);
    let x1 = sharing.point(shares[0].provider).unwrap();
    let y1 = shares[0].y;
    for candidate in [0u64, 1, 12_345, 999_999, 1 << 40] {
        let s = Fp::from_u64(candidate);
        // Line through (0, candidate) and (x1, y1).
        let slope = (y1 - s) * x1.inv().unwrap();
        let poly = dasp_field::Poly::new(vec![s, slope]);
        assert_eq!(
            poly.eval(x1),
            y1,
            "candidate {candidate} must be consistent"
        );
    }
}

/// Deterministic mode leaks exactly equality: equal plaintexts collide,
/// unequal plaintexts differ, and share values carry no order signal.
#[test]
fn deterministic_mode_leaks_equality_only() {
    let mut rng = StdRng::seed_from_u64(3);
    let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
    let key = DomainKey::derive(b"master", "salary");
    // Equality preserved.
    assert_eq!(
        sharing.split_deterministic(42, &key),
        sharing.split_deterministic(42, &key)
    );
    // Order destroyed: count order-agreements between value order and
    // share order across consecutive pairs; should be ~50%.
    let mut agree = 0u32;
    let total = 500u32;
    for v in 0..total as u64 {
        let a = sharing.split_deterministic(v, &key)[0].y.to_u64();
        let b = sharing.split_deterministic(v + 1, &key)[0].y.to_u64();
        if a < b {
            agree += 1;
        }
    }
    let frac = agree as f64 / total as f64;
    assert!(
        (0.4..0.6).contains(&frac),
        "share order should be uncorrelated with value order, got {frac}"
    );
}

/// Order-preserving mode leaks order (by design) but the jitter destroys
/// the affine structure that would let a provider extrapolate values.
#[test]
fn op_mode_leaks_order_but_not_spacing() {
    let params = OpssParams::new(2, 12, 1 << 20, vec![3, 5, 9]).unwrap();
    let sharing = OpSharing::new(params, DomainKey::derive(b"m", "salary"));
    // Order preserved exactly.
    let mut prev = None;
    for v in (0..10_000u64).step_by(11) {
        let s = sharing.share_for(v, 0).unwrap();
        if let Some(p) = prev {
            assert!(s > p);
        }
        prev = Some(s);
    }
    // Spacing hidden: the gap between consecutive shares varies.
    let gaps: Vec<i128> = (0..100u64)
        .map(|v| sharing.share_for(v + 1, 0).unwrap() - sharing.share_for(v, 0).unwrap())
        .collect();
    let distinct: std::collections::HashSet<i128> = gaps.iter().copied().collect();
    assert!(
        distinct.len() > 50,
        "gaps should be jittered, only {} distinct",
        distinct.len()
    );
}

/// Mode capability matrix is enforced end to end: what the type system
/// claims each mode supports matches what the sharing layer accepts.
#[test]
fn capability_matrix() {
    assert!(!ShareMode::Random.supports_equality());
    assert!(!ShareMode::Random.supports_range());
    assert!(ShareMode::Deterministic.supports_equality());
    assert!(!ShareMode::Deterministic.supports_range());
    assert!(ShareMode::OrderPreserving.supports_equality());
    assert!(ShareMode::OrderPreserving.supports_range());
}

/// Collusion below the threshold cannot reconstruct; at the threshold it
/// can — the exact boundary.
#[test]
fn threshold_boundary() {
    let mut rng = StdRng::seed_from_u64(4);
    let keys = ClientKeys::generate(3, 5, &mut rng).unwrap();
    let secret = Fp::from_u64(31_415_926);
    let shares = keys.field().split_random(secret, &mut rng);
    // 3 shares: reconstructs.
    assert_eq!(keys.field().reconstruct(&shares[..3]).unwrap(), secret);
    // 2 shares: refused (and information-theoretically useless anyway).
    assert!(keys.field().reconstruct(&shares[..2]).is_err());
}

/// Two providers' shares of the same order-preserving value differ, and
/// neither matches the plaintext.
#[test]
fn shares_never_equal_plaintext() {
    let params = OpssParams::new(1, 12, 1 << 20, vec![2, 4, 1]).unwrap();
    let sharing = OpSharing::new(params, DomainKey::derive(b"m", "salary"));
    for v in [0u64, 1, 500, 999_999] {
        let shares = sharing.share(v).unwrap();
        for (i, &s) in shares.iter().enumerate() {
            // Shares embed v·W ≫ v, so a share equals the plaintext only
            // in the degenerate v=0 jitter-free case, which the +1 offset
            // in the coefficient construction rules out.
            assert_ne!(s, v as i128, "provider {i} share equals plaintext");
        }
        let distinct: std::collections::HashSet<i128> = shares.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            shares.len(),
            "providers get distinct shares"
        );
    }
}

/// The deterministic PRF is domain-separated: the same value in two
/// domains yields unrelated shares, so cross-domain frequency analysis
/// does not transfer.
#[test]
fn domain_separation() {
    let mut rng = StdRng::seed_from_u64(5);
    let sharing = FieldSharing::generate(2, 3, &mut rng).unwrap();
    let salary_key = DomainKey::derive(b"master", "salary");
    let age_key = DomainKey::derive(b"master", "age");
    let a: Vec<FieldShare> = sharing.split_deterministic(40, &salary_key);
    let b: Vec<FieldShare> = sharing.split_deterministic(40, &age_key);
    assert_ne!(a, b);
}
