//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). A poisoned lock — a panic while
//! holding the guard — just yields the inner value, matching parking_lot's
//! "no poisoning" semantics.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a panic.
        *m.lock() = 9;
        assert_eq!(*m.lock(), 9);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
