//! Offline stand-in for `criterion`.
//!
//! Compiles and runs the workspace's `harness = false` benches without the
//! real statistics engine: each `bench_function` runs the routine
//! `sample_size` times and prints the mean wall-clock per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this stub has no warm-up phase.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; iteration count is governed by
    /// `sample_size` alone.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {label:<48} {per_iter:>12.2?}/iter ({} iters)",
        bencher.iterations
    );
}

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Setup cost dominates; one input per iteration.
    PerIteration,
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` with a fresh un-timed `setup` input per iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        let mut count = 0u64;
        g.bench_function("inc", |b| b.iter(|| count += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(count >= 1);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
