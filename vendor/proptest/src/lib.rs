//! Offline stand-in for `proptest`.
//!
//! Implements the strategy subset this workspace uses — integer ranges,
//! `any::<T>()`, `collection::vec`, tuples, and regex-like string patterns
//! (alternation groups, character classes, `.`, `*`/`{lo,hi}` repetition)
//! — driven by a per-test deterministic RNG seeded from the test's module
//! path and name. No shrinking: a failing case panics with the case number
//! so it can be replayed (the seed is a pure function of the test name).

use std::marker::PhantomData;

/// Run-shaping knobs (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed or rejected property case (produced by the `prop_assert*` and
/// `prop_assume!` macros).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
    reject: bool,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError {
            msg: msg.into(),
            reject: false,
        }
    }

    /// Rejection: the sampled inputs don't satisfy the property's
    /// precondition; the runner skips the case instead of failing.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError {
            msg: msg.into(),
            reject: true,
        }
    }

    /// True for rejections (skipped cases).
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-test random source (SplitMix64 over an FNV-1a seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded purely from `name`, so every run replays the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, span)` (rejection sampled).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    fn below_u128(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        if let Ok(narrow) = u64::try_from(span) {
            return self.below(narrow) as u128;
        }
        let zone = u128::MAX - (u128::MAX % span);
        loop {
            let v = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            if v < zone {
                return v % span;
            }
        }
    }
}

/// Generator of values for one property parameter.
pub trait Strategy {
    /// Produced value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Entry point used by the `proptest!` expansion (UFCS-friendly).
pub fn sample_strategy<S: Strategy>(s: &S, rng: &mut TestRng) -> S::Value {
    s.sample(rng)
}

/// Types with a whole-domain uniform generator.
pub trait Arbitrary {
    /// Draw one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII with an occasional wider scalar, like real inputs.
        if rng.below(4) == 0 {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        } else {
            (0x20u8 + rng.below(95) as u8) as char
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy form of [`Arbitrary`]; construct with [`any`].
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128).wrapping_add(rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128).wrapping_add(rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).sample(rng)
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

macro_rules! strategy_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}
strategy_tuple!(A / a);
strategy_tuple!(A / a, B / b);
strategy_tuple!(A / a, B / b, C / c);
strategy_tuple!(A / a, B / b, C / c, D / d);
strategy_tuple!(A / a, B / b, C / c, D / d, E / e);

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

mod pattern {
    //! Tiny regex-shaped string generator: enough for the patterns the
    //! workspace tests use (literals, `(a|b|c)`, `[A-Z0-9...]`, `.`, and
    //! `*` / `{lo,hi}` / `{n}` repetition). Unsupported syntax is treated
    //! as literal characters.

    use super::TestRng;

    pub fn sample(pat: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            match chars[i] {
                '(' => {
                    let close = find(&chars, i, ')');
                    let body: String = chars[i + 1..close].iter().collect();
                    let alts: Vec<&str> = body.split('|').collect();
                    out.push_str(alts[rng.below(alts.len() as u64) as usize]);
                    i = close + 1;
                }
                '[' => {
                    let close = find(&chars, i, ']');
                    let set = parse_class(&chars[i + 1..close]);
                    let (lo, hi, next) = repetition(&chars, close + 1);
                    emit_repeated(rng, lo, hi, &mut out, |rng, out| {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    });
                    i = next;
                }
                '.' => {
                    let (lo, hi, next) = repetition(&chars, i + 1);
                    emit_repeated(rng, lo, hi, &mut out, |rng, out| {
                        out.push((0x20u8 + rng.below(95) as u8) as char);
                    });
                    i = next;
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }

    fn find(chars: &[char], from: usize, target: char) -> usize {
        chars[from..]
            .iter()
            .position(|&c| c == target)
            .map(|p| from + p)
            .unwrap_or_else(|| panic!("pattern missing closing '{target}'"))
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                for c in body[i]..=body[i + 2] {
                    set.push(c);
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    /// Parse an optional repetition suffix at `i`; returns (lo, hi, next_i).
    fn repetition(chars: &[char], i: usize) -> (u64, u64, usize) {
        match chars.get(i) {
            Some('*') => (0, 16, i + 1),
            Some('+') => (1, 16, i + 1),
            Some('?') => (0, 1, i + 1),
            Some('{') => {
                let close = find(chars, i, '}');
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition lower bound"),
                        hi.trim().parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            _ => (1, 1, i),
        }
    }

    fn emit_repeated(
        rng: &mut TestRng,
        lo: u64,
        hi: u64,
        out: &mut String,
        mut emit: impl FnMut(&mut TestRng, &mut String),
    ) {
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            emit(rng, out);
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Length bound for [`vec`]; `hi` is exclusive (like `0..200`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy yielding vectors of `element` samples.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Define property tests: each runs `cases` deterministic random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $pat = $crate::sample_strategy(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __outcome {
                        if __e.is_reject() {
                            continue; // precondition not met; skip this case
                        }
                        panic!("{} case {}/{}: {}", stringify!($name), __case + 1, __config.cases, __e);
                    }
                }
            }
        )*
    };
}

/// Reject the surrounding property case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "precondition failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Fail the surrounding property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the surrounding property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fail the surrounding property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn pattern_alternation_and_classes() {
        let mut rng = TestRng::deterministic("patterns");
        for _ in 0..50 {
            let s = crate::sample_strategy(&"(AB|CD|EF)", &mut rng);
            assert!(["AB", "CD", "EF"].contains(&s.as_str()), "{s:?}");
            let c = crate::sample_strategy(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&c.len()), "{c:?}");
            assert!(c.chars().all(|ch| ('a'..='c').contains(&ch)), "{c:?}");
            let d = crate::sample_strategy(&".{0,5}", &mut rng);
            assert!(d.len() <= 5);
            let lit = crate::sample_strategy(&"x=1", &mut rng);
            assert_eq!(lit, "x=1");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(a in 5u64..10, b in 1usize..4, c in -3i32..3) {
            prop_assert!((5..10).contains(&a));
            prop_assert!((1..4).contains(&b));
            prop_assert!((-3..3).contains(&c));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn tuples_sample_both(pair in (1u64.., any::<bool>())) {
            prop_assert!(pair.0 >= 1);
            prop_assert_eq!(pair.1, pair.1);
            prop_assert_ne!(pair.0, 0);
        }
    }
}
