//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact surface it uses: `StdRng` (xoshiro256** seeded via SplitMix64),
//! `SeedableRng::{seed_from_u64, from_entropy}`, `Rng::{gen, gen_range,
//! gen_bool}`, `seq::SliceRandom`, `thread_rng` and the `StepRng` mock.
//! Determinism per seed is the only property the workspace relies on; the
//! streams do not match upstream `rand`.

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from their full domain (the `Standard`
/// distribution in upstream rand).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::standard_sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform sample from `[0, span)` by rejection, avoiding modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

fn uniform_below_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if let Ok(narrow) = u64::try_from(span) {
        return uniform_below(rng, narrow) as u128;
    }
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let v = u128::standard_sample(rng);
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges samplable by `Rng::gen_range`. Generic over the output type `T`
/// (like upstream rand) so integer-literal inference behaves identically.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = uniform_below_u128(rng, span);
                (self.start as i128).wrapping_add(off as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = uniform_below_u128(rng, span);
                (lo as i128).wrapping_add(off as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeFrom<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_range(rng)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value over the type's whole domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform value in the given range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construction from ambient entropy (time + address noise).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let stack_probe = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_probe.rotate_left(17))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** — fast, 256-bit state, plenty for tests and experiments.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix of any seed
            // cannot produce it, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        //! Deterministic mock generators for tests.
        use crate::RngCore;

        /// Arithmetic progression "generator": `start`, `start+step`, ...
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            step: u64,
        }

        impl StepRng {
            /// New progression beginning at `start`.
            pub fn new(start: u64, step: u64) -> Self {
                StepRng { value: start, step }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.step);
                out
            }
        }
    }
}

/// A fresh entropy-seeded generator (upstream returns a thread-local; a
/// per-call generator is indistinguishable for our uses).
pub fn thread_rng() -> rngs::StdRng {
    <rngs::StdRng as SeedableRng>::from_entropy()
}

pub mod seq {
    //! Slice sampling helpers.
    use super::Rng;

    /// Random order / choice over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(2, 3);
        assert_eq!(rng.gen::<u64>(), 2);
        assert_eq!(rng.gen::<u64>(), 5);
        assert_eq!(rng.gen::<u64>(), 8);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}
