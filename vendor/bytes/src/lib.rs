//! Offline stand-in for `bytes`.
//!
//! Provides the `Buf` / `BufMut` traits and a `Vec<u8>`-backed `BytesMut`
//! covering exactly the little-endian accessors the wire codec uses. No
//! zero-copy machinery — the workspace only appends and reads linearly.

/// Sequential big-picture reader over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Take `n` bytes off the front, panicking if short (callers bound-check).
    fn copy_front(&mut self, n: usize) -> [u8; 16];

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        self.copy_front(1)[0]
    }
    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let b = self.copy_front(2);
        u16::from_le_bytes([b[0], b[1]])
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_front(4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_front(8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
    /// Read a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        u128::from_le_bytes(self.copy_front(16))
    }
    /// Read a little-endian `i128`.
    fn get_i128_le(&mut self) -> i128 {
        i128::from_le_bytes(self.copy_front(16))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_front(&mut self, n: usize) -> [u8; 16] {
        assert!(n <= 16 && self.len() >= n, "buffer underflow");
        let (head, tail) = self.split_at(n);
        let mut out = [0u8; 16];
        out[..n].copy_from_slice(head);
        *self = tail;
        out
    }
}

/// Sequential writer of scalar values.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i128`.
    fn put_i128_le(&mut self, v: i128) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out the contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_u128_le(1 << 90);
        buf.put_i128_le(-5);
        buf.put_slice(b"xyz");
        let v = buf.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_u128_le(), 1 << 90);
        assert_eq!(r.get_i128_le(), -5);
        assert_eq!(r, b"xyz");
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u16_le();
    }
}
