//! Offline stand-in for `crossbeam`.
//!
//! Two subsets are provided, matching what this workspace uses:
//!
//! * `crossbeam::channel::{bounded, unbounded, Sender, Receiver,
//!   RecvTimeoutError, ...}` — a hand-rolled MPMC queue (`Mutex<VecDeque>`
//!   plus condvars). Unlike `std::sync::mpsc`, both halves are `Clone`, so
//!   several provider workers can drain one request queue concurrently —
//!   the property the multi-worker RPC layer depends on. Disconnection
//!   follows crossbeam semantics: senders fail once every `Receiver` is
//!   gone, receivers report `Disconnected` once every `Sender` is gone
//!   *and* the buffer is drained.
//! * `crossbeam::thread::scope` — scoped threads that may borrow from the
//!   enclosing stack frame. `std::thread::scope` (Rust 1.63) provides the
//!   same guarantee, so the wrapper only adapts the crossbeam calling
//!   convention (`Result`-returning entry point, `Scope` passed by
//!   reference, handles joined implicitly at scope exit).

pub mod thread {
    //! Scoped thread spawning in the `crossbeam::thread` shape.

    /// Handle to a scoped thread; join to collect its result.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns threads whose closures may borrow non-`'static` data.
    ///
    /// `Copy` so closures can capture it by value and keep spawning from
    /// inside spawned threads, mirroring crossbeam's `&Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. Unjoined handles are joined implicitly
        /// when the scope exits (a child panic then propagates).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&scope)))
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned threads
    /// are joined before this returns. Crossbeam returns `Err` when a
    /// child panicked and was not explicitly joined; `std::thread::scope`
    /// resumes the panic instead, so the `Ok` arm is the only one this
    /// wrapper ever produces — callers' error paths stay compilable.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let mut out = vec![0u64; 4];
            super::scope(|s| {
                let mut handles = Vec::new();
                for (slot, &v) in out.iter_mut().zip(&data) {
                    handles.push(s.spawn(move |_| {
                        *slot = v * 10;
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            })
            .unwrap();
            assert_eq!(out, [10, 20, 30, 40]);
        }

        #[test]
        fn nested_spawn_from_child() {
            let total = std::sync::atomic::AtomicU64::new(0);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| {
                        total.fetch_add(7, std::sync::atomic::Ordering::SeqCst);
                    });
                });
            })
            .unwrap();
            assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 7);
        }

        #[test]
        fn implicit_join_at_scope_exit() {
            let flag = std::sync::atomic::AtomicBool::new(false);
            super::scope(|s| {
                s.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
                // not joined explicitly
            })
            .unwrap();
            assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Bounded channels block sends at this depth; `None` = unbounded.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn new(cap: Option<usize>) -> Arc<Self> {
            Arc::new(Chan {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    senders: 1,
                    receivers: 1,
                }),
                cap,
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            })
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            // A poisoned queue mutex means a peer thread panicked while
            // holding it; the protected state is a plain VecDeque + counters
            // mutated without intermediate invariants, so continue with it.
            match self.state.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// Sending half of a channel. Cloneable (MPMC).
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    /// Receiving half of a channel. Cloneable (MPMC): several workers may
    /// drain one queue, each message delivered to exactly one of them.
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                // Wake blocked senders so they observe the disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    /// The channel is disconnected; the unsent message is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Outcome of a `recv_timeout` that yielded no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the allotted time.
        Timeout,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Outcome of a `try_recv` that yielded no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Outcome of a `try_send` that did not enqueue; carries the message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded buffer at capacity.
        Full(T),
        /// All receivers dropped.
        Disconnected(T),
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(None);
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    /// Channel holding at most `cap` in-flight messages (sends block when
    /// full, matching crossbeam semantics).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(Some(cap));
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    fn wait<'a, T>(
        cv: &Condvar,
        guard: std::sync::MutexGuard<'a, State<T>>,
    ) -> std::sync::MutexGuard<'a, State<T>> {
        match cv.wait(guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking if a bounded buffer is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.lock();
            if let Some(cap) = self.0.cap {
                while st.queue.len() >= cap && st.receivers > 0 {
                    st = wait(&self.0.not_full, st);
                }
            }
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails with `Full` instead of waiting on a
        /// bounded buffer at capacity (the reactor's dispatch path must
        /// never block its event loop on a slow worker pool).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.0.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.0.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = wait(&self.0.not_empty, st);
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                st = match self.0.not_empty.wait_timeout(st, deadline - now) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.lock();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends at disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            let tx2 = tx.clone();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_capacity_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn try_recv_states() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn try_send_full_and_disconnected() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_receivers_partition_messages() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            let seen = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for rx in [&rx, &rx2] {
                    s.spawn(|| {
                        while let Ok(v) = rx.recv() {
                            seen.lock().unwrap().push(v);
                        }
                    });
                }
                for v in 0..100 {
                    tx.send(v).unwrap();
                }
                drop(tx);
            });
            let mut got = seen.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_requires_all_senders_and_drains_buffer() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            // One sender still alive: no disconnect.
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx2.send(2).unwrap();
            drop(tx2);
            // All senders gone, but the buffer drains first.
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let unblocked = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                s.spawn(|| {
                    tx.send(2).unwrap();
                    unblocked.store(true, std::sync::atomic::Ordering::SeqCst);
                });
                std::thread::sleep(Duration::from_millis(30));
                assert!(!unblocked.load(std::sync::atomic::Ordering::SeqCst));
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Ok(2));
            });
            assert!(unblocked.load(std::sync::atomic::Ordering::SeqCst));
        }
    }
}
