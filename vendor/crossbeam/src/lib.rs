//! Offline stand-in for `crossbeam`.
//!
//! Two subsets are provided, matching what this workspace uses:
//!
//! * `crossbeam::channel::{bounded, unbounded, Sender, Receiver,
//!   RecvTimeoutError, ...}` — only in MPSC patterns (many clones of one
//!   `Sender`, a single owner per `Receiver`), so wrapping
//!   `std::sync::mpsc` is behaviour-compatible for our uses.
//!   `std::sync::mpsc::Sender` is `Sync` since Rust 1.72, which the RPC
//!   layer's shared reply channels rely on.
//! * `crossbeam::thread::scope` — scoped threads that may borrow from the
//!   enclosing stack frame. `std::thread::scope` (Rust 1.63) provides the
//!   same guarantee, so the wrapper only adapts the crossbeam calling
//!   convention (`Result`-returning entry point, `Scope` passed by
//!   reference, handles joined implicitly at scope exit).

pub mod thread {
    //! Scoped thread spawning in the `crossbeam::thread` shape.

    /// Handle to a scoped thread; join to collect its result.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns threads whose closures may borrow non-`'static` data.
    ///
    /// `Copy` so closures can capture it by value and keep spawning from
    /// inside spawned threads, mirroring crossbeam's `&Scope`.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. Unjoined handles are joined implicitly
        /// when the scope exits (a child panic then propagates).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&scope)))
        }
    }

    /// Create a scope for spawning borrowing threads. All spawned threads
    /// are joined before this returns. Crossbeam returns `Err` when a
    /// child panicked and was not explicitly joined; `std::thread::scope`
    /// resumes the panic instead, so the `Ok` arm is the only one this
    /// wrapper ever produces — callers' error paths stay compilable.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let mut out = vec![0u64; 4];
            super::scope(|s| {
                let mut handles = Vec::new();
                for (slot, &v) in out.iter_mut().zip(&data) {
                    handles.push(s.spawn(move |_| {
                        *slot = v * 10;
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            })
            .unwrap();
            assert_eq!(out, [10, 20, 30, 40]);
        }

        #[test]
        fn nested_spawn_from_child() {
            let total = std::sync::atomic::AtomicU64::new(0);
            super::scope(|s| {
                s.spawn(|s2| {
                    s2.spawn(|_| {
                        total.fetch_add(7, std::sync::atomic::Ordering::SeqCst);
                    });
                });
            })
            .unwrap();
            assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 7);
        }

        #[test]
        fn implicit_join_at_scope_exit() {
            let flag = std::sync::atomic::AtomicBool::new(false);
            super::scope(|s| {
                s.spawn(|_| {
                    flag.store(true, std::sync::atomic::Ordering::SeqCst);
                });
                // not joined explicitly
            })
            .unwrap();
            assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
        }
    }
}

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                Flavor::Unbounded(tx) => Sender(Flavor::Unbounded(tx.clone())),
                Flavor::Bounded(tx) => Sender(Flavor::Bounded(tx.clone())),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// The channel is disconnected; the unsent message is returned.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Outcome of a `recv_timeout` that yielded no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message within the allotted time.
        Timeout,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Outcome of a `try_recv` that yielded no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// Channel holding at most `cap` in-flight messages (sends block when
    /// full, matching crossbeam semantics).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Send, blocking if a bounded buffer is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Flavor::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator that ends at disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            let tx2 = tx.clone();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop((tx, tx2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_capacity_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn try_recv_states() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
