//! The paper's §V-D national-security scenario: correlating the FBI's
//! watch list with TSA traveler records — without either list leaving its
//! owner in the clear — plus the E2 cost comparison against the
//! commutative-encryption intersection the paper quotes.
//!
//! ```text
//! cargo run --release -p dasp-apps --bin agencies
//! ```

use dasp_baseline::intersection::{commutative_intersection, predicted_cost};
use dasp_client::{ColumnSpec, DataSource, TableSchema, Value};
use dasp_core::client::ClientKeys;
use dasp_crypto::commutative::shared_test_prime;
use dasp_net::{Cluster, NetworkModel};
use dasp_server::service::provider_fleet;
use dasp_sss::ShareMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    let mut rng = StdRng::seed_from_u64(31337);
    let keys = ClientKeys::generate(2, 3, &mut rng).expect("keys");
    let cluster = Cluster::spawn(provider_fleet(3), Duration::from_secs(10));
    let mut ds = DataSource::with_seed(keys, cluster, 11).expect("data source");

    // Shared id domain so the join works provider-side (§V-A).
    let person = |name: &str| {
        ColumnSpec::numeric(name, 1 << 30, ShareMode::Deterministic).in_domain("person_id")
    };
    ds.create_table(
        TableSchema::new(
            "watchlist",
            vec![
                person("pid"),
                ColumnSpec::numeric("threat", 10, ShareMode::Random),
            ],
        )
        .expect("schema"),
    )
    .expect("create");
    ds.create_table(
        TableSchema::new(
            "travelers",
            vec![
                person("pid"),
                ColumnSpec::numeric("flight", 100_000, ShareMode::Deterministic),
            ],
        )
        .expect("schema"),
    )
    .expect("create");

    println!("== Outsourced watchlist ⋈ travelers (share-equality join) ==");
    let watch: Vec<Vec<Value>> = (0..200u64)
        .map(|i| vec![Value::Int(1000 + i * 7), Value::Int(i % 10)])
        .collect();
    let travelers: Vec<Vec<Value>> = (0..2000u64)
        .map(|i| vec![Value::Int(1000 + i), Value::Int(40_000 + i % 300)])
        .collect();
    ds.insert("watchlist", &watch).expect("insert");
    ds.insert("travelers", &travelers).expect("insert");

    let before = ds.cluster().stats().snapshot();
    let start = Instant::now();
    let hits = ds
        .join("watchlist", "pid", "travelers", "pid")
        .expect("join");
    let elapsed = start.elapsed();
    let delta = ds.cluster().stats().snapshot().since(&before);
    // Ids 1000..2999 overlap the watchlist ids 1000,1007,…,2393.
    let expected = (0..200u64).filter(|i| 1000 + i * 7 < 3000).count();
    assert_eq!(hits.len(), expected);
    println!(
        "  {} matches in {elapsed:.2?}; {} bytes moved; providers executed the \
         join on shares and never saw a person id",
        hits.len(),
        delta.total_bytes()
    );
    let wan = delta.modeled_time(&NetworkModel::wan());
    println!("  modeled WAN time: {wan:.2?}");

    println!("\n== E2: the encryption-based comparator (Agrawal et al. [26]) ==");
    // Small instance, measured.
    let p = shared_test_prime();
    let a_items: Vec<Vec<u8>> = (0..200u64)
        .map(|i| (1000 + i * 7).to_le_bytes().to_vec())
        .collect();
    let b_items: Vec<Vec<u8>> = (0..2000u64)
        .map(|i| (1000 + i).to_le_bytes().to_vec())
        .collect();
    let start = Instant::now();
    let (enc_hits, cost) = commutative_intersection(&p, &a_items, &b_items, &mut rng);
    let enc_elapsed = start.elapsed();
    assert_eq!(enc_hits.len(), expected);
    println!(
        "  same intersection by commutative encryption: {enc_elapsed:.2?}, \
         {} modexps, {} bytes",
        cost.mod_exps, cost.bytes
    );
    println!(
        "  -> the share join moved {} bytes ({} than the encrypted protocol) \
         and did zero public-key operations",
        delta.total_bytes(),
        if delta.total_bytes() < cost.bytes {
            "less"
        } else {
            "more"
        },
    );

    // The paper's quoted configurations, via the closed-form cost model.
    println!("\n  paper-quoted configurations (predicted, 1024-bit group):");
    // ~30 modexps/sec of 1024-bit on SIGMOD'03-era hardware.
    const MODEXP_PER_SEC: f64 = 30.0;
    for (label, a, b) in [
        ("10 + 100 docs × 1000 words", 10_000u64, 100_000u64),
        ("1M medical records", 1_000_000, 1_000_000),
    ] {
        let c = predicted_cost(a, b, 1024);
        let gbit = c.bytes as f64 * 8.0 / 1e9;
        let hours = c.mod_exps as f64 / MODEXP_PER_SEC / 3600.0;
        println!(
            "    {label:<28} {:>10} modexps (~{hours:.1} h at 2003 rates), {gbit:.1} Gbit",
            c.mod_exps
        );
    }
    println!(
        "  (the paper's narrative: '~2 hours … ~3 Gbit' for the documents and \
         '~4 hours … 8 Gbit' for the records — same order of magnitude; the exact \
         record figures depend on the protocol variant's round structure)"
    );
}
