//! Payroll: the paper's motivating enterprise scenario at realistic size.
//!
//! Outsources a 10,000-row Employees table across 4 providers (k = 2),
//! then runs the full §V-A query taxonomy — exact match, range,
//! aggregation over exact matches and ranges, updates — and reports
//! latency plus measured traffic with modeled WAN time.
//!
//! ```text
//! cargo run --release -p dasp-apps --bin payroll
//! ```

use dasp_client::{ColumnSpec, DataSource, Predicate, TableSchema, Value};
use dasp_core::client::ClientKeys;
use dasp_net::{Cluster, NetworkModel};
use dasp_server::service::provider_fleet;
use dasp_sss::ShareMode;
use dasp_workload::employees::{self, SalaryDist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const N_ROWS: usize = 10_000;
const SALARY_DOMAIN: u64 = 1 << 20;

fn timed<T>(
    label: &str,
    ds: &mut DataSource,
    model: &NetworkModel,
    f: impl FnOnce(&mut DataSource) -> T,
) -> T {
    let before = ds.cluster().stats().snapshot();
    let start = Instant::now();
    let out = f(ds);
    let compute = start.elapsed();
    let delta = ds.cluster().stats().snapshot().since(&before);
    let wan = delta.modeled_time(model);
    println!(
        "  {label:<46} compute {compute:>9.2?}  bytes {:>9}  modeled WAN {wan:>9.2?}",
        delta.total_bytes()
    );
    out
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let keys = ClientKeys::generate(2, 4, &mut rng).expect("keys");
    let cluster = Cluster::spawn(provider_fleet(4), Duration::from_secs(10));
    let mut ds = DataSource::with_seed(keys, cluster, 7).expect("data source");
    let model = NetworkModel::wan();

    ds.create_table(
        TableSchema::new(
            "employees",
            vec![
                ColumnSpec::text("name", 8, ShareMode::Deterministic),
                ColumnSpec::numeric("salary", SALARY_DOMAIN, ShareMode::OrderPreserving),
                ColumnSpec::numeric("ssn", 1 << 30, ShareMode::Random),
            ],
        )
        .expect("schema"),
    )
    .expect("create table");

    println!("== Outsourcing {N_ROWS} employees to 4 providers (k = 2) ==");
    let data = employees::generate(N_ROWS, SALARY_DOMAIN, SalaryDist::Zipf(1.05), 99);
    let rows: Vec<Vec<Value>> = data
        .iter()
        .map(|e| {
            vec![
                Value::Str(e.name.clone()),
                Value::Int(e.salary),
                Value::Int(e.ssn),
            ]
        })
        .collect();
    timed("bulk insert (share + upload)", &mut ds, &model, |ds| {
        for chunk in rows.chunks(1000) {
            ds.insert("employees", chunk).expect("insert");
        }
    });

    println!("\n== §V-A query taxonomy ==");
    let probe_name = data[17].name.clone();
    let rows_found = timed(
        &format!("exact match: name = {probe_name:?}"),
        &mut ds,
        &model,
        |ds| ds.select("employees", &[Predicate::eq("name", probe_name.as_str())]),
    )
    .expect("select");
    println!("    -> {} rows", rows_found.len());

    let range_pred = [Predicate::between("salary", 10_000u64, 40_000u64)];
    let in_range = timed(
        "range: salary BETWEEN 10000 AND 40000",
        &mut ds,
        &model,
        |ds| ds.select("employees", &range_pred),
    )
    .expect("select");
    println!("    -> {} rows", in_range.len());
    let expected = data
        .iter()
        .filter(|e| (10_000..=40_000).contains(&e.salary))
        .count();
    assert_eq!(in_range.len(), expected, "range result must be exact");

    let sum = timed(
        "SUM(salary) over that range (server-side)",
        &mut ds,
        &model,
        |ds| ds.sum("employees", "salary", &range_pred),
    )
    .expect("sum");
    let expected_sum: u64 = data
        .iter()
        .filter(|e| (10_000..=40_000).contains(&e.salary))
        .map(|e| e.salary)
        .sum();
    assert_eq!(sum.value, Some(Value::Int(expected_sum)));
    println!("    -> {:?} (matches plaintext ground truth)", sum.value);

    let med = timed(
        "MEDIAN(salary) over the whole table",
        &mut ds,
        &model,
        |ds| ds.median("employees", "salary", &[]),
    )
    .expect("median");
    println!("    -> {:?} over {} rows", med.value, med.count);

    let avg = timed(
        &format!("AVG(salary) WHERE name = {probe_name:?}"),
        &mut ds,
        &model,
        |ds| {
            ds.avg(
                "employees",
                "salary",
                &[Predicate::eq("name", probe_name.as_str())],
            )
        },
    )
    .expect("avg");
    println!("    -> {:?} over {} rows", avg.value, avg.count);

    println!("\n== Updates (§V-C) ==");
    let raised = timed("eager raise: +salary for one name", &mut ds, &model, |ds| {
        ds.update_where(
            "employees",
            &[Predicate::eq("name", probe_name.as_str())],
            &[("salary", Value::Int(123_456))],
        )
    })
    .expect("update");
    println!("    -> {raised} rows re-shared and pushed");

    ds.set_lazy(true);
    let buffered = ds
        .update_where(
            "employees",
            &[Predicate::eq("salary", 123_456u64)],
            &[("salary", Value::Int(123_457))],
        )
        .expect("lazy update");
    let flushed = timed("lazy batch flush", &mut ds, &model, |ds| {
        ds.flush("employees")
    })
    .expect("flush");
    assert_eq!(buffered, flushed);
    println!("    -> {flushed} buffered updates flushed in one batch per provider");

    println!("\n== The privacy/performance dial ==");
    let before = ds.cluster().stats().snapshot();
    let ssn_hit = ds
        .select("employees", &[Predicate::eq("ssn", data[3].ssn)])
        .expect("ssn query");
    let delta = ds.cluster().stats().snapshot().since(&before);
    println!(
        "  ssn is Random-mode (information-theoretic): a predicate on it \
         transfers the whole column ({} bytes) and filters client-side -> {} row(s)",
        delta.total_bytes(),
        ssn_hit.len()
    );
    println!(
        "  the same query on a Deterministic column would have been one index probe — \
         that gap IS the paper's privacy/performance trade-off."
    );
}
