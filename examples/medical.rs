//! Medical-records analytics — the paper's "1 million medical records"
//! workload (§II-A) run through the secret-sharing stack.
//!
//! A hospital outsources patient records (patient id, diagnosis code,
//! cost) and runs the analytics a registry actually needs — per-diagnosis
//! totals, cost distribution quantiles, top spenders — all computed
//! server-side over shares. Row count defaults to 50k for a quick run;
//! pass a number to scale (the paper's 1M works, just slower).
//!
//! ```text
//! cargo run --release -p dasp-apps --bin medical [rows]
//! ```

use dasp_client::{ColumnSpec, DataSource, Predicate, TableSchema, Value};
use dasp_core::client::ClientKeys;
use dasp_net::{Cluster, NetworkModel};
use dasp_server::service::provider_fleet;
use dasp_sss::ShareMode;
use dasp_workload::medical;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50_000);
    let mut rng = StdRng::seed_from_u64(2009);
    let keys = ClientKeys::generate(2, 3, &mut rng).expect("keys");
    let cluster = Cluster::spawn(provider_fleet(3), Duration::from_secs(60));
    let mut ds = DataSource::with_seed(keys, cluster, 2009).expect("data source");
    let model = NetworkModel::wan();

    ds.create_table(
        TableSchema::new(
            "records",
            vec![
                // Patient ids are the sensitive identifier: random mode.
                ColumnSpec::numeric("patient", 1 << 30, ShareMode::Random),
                // Diagnosis codes drive grouping: deterministic.
                ColumnSpec::numeric("code", 10_000, ShareMode::Deterministic),
                // Costs drive ranges and order statistics: ordered.
                ColumnSpec::numeric("cost", 1 << 24, ShareMode::OrderPreserving),
            ],
        )
        .expect("schema"),
    )
    .expect("create");

    println!("== Outsourcing {rows} medical records across 3 providers (k = 2) ==");
    let data = medical::generate(rows, 77);
    let start = Instant::now();
    let values: Vec<Vec<Value>> = data
        .iter()
        .map(|r| {
            vec![
                Value::Int(r.patient),
                Value::Int(r.code),
                Value::Int(r.cost),
            ]
        })
        .collect();
    for chunk in values.chunks(2000) {
        ds.insert("records", chunk).expect("insert");
    }
    println!("  loaded in {:.2?}", start.elapsed());

    println!("\n== Registry analytics, all computed over shares ==");
    let stats = ds.cluster().stats().clone();

    // Per-diagnosis cost totals for the hottest codes (GROUP BY).
    let before = stats.snapshot();
    let start = Instant::now();
    let groups = ds
        .group_by("records", "code", Some("cost"), &[])
        .expect("group by");
    let t = start.elapsed();
    let delta = stats.snapshot().since(&before);
    let mut by_total: Vec<_> = groups.iter().collect();
    by_total.sort_by_key(|g| std::cmp::Reverse(g.sum.clone()));
    println!(
        "  per-diagnosis totals: {} codes in {t:.2?} ({} bytes, modeled WAN {:.2?})",
        groups.len(),
        delta.total_bytes(),
        delta.modeled_time(&model)
    );
    for g in by_total.iter().take(3) {
        println!(
            "    code {:?}: total cost {:?} over {} records",
            g.group, g.sum, g.count
        );
    }
    // Ground truth check for the top group.
    let top = by_total[0];
    let Value::Int(top_code) = top.group else {
        panic!()
    };
    let want: u64 = data
        .iter()
        .filter(|r| r.code == top_code)
        .map(|r| r.cost)
        .sum();
    assert_eq!(top.sum, Some(Value::Int(want)), "top group total verified");

    // Cost distribution: median and extremes (order statistics).
    let start = Instant::now();
    let med = ds.median("records", "cost", &[]).expect("median");
    let max = ds.max("records", "cost", &[]).expect("max");
    println!(
        "  cost median {:?}, max {:?} ({:.2?} for both)",
        med.value,
        max.value,
        start.elapsed()
    );

    // High-cost tail (range + count).
    let tail = ds
        .count(
            "records",
            &[Predicate::between("cost", 15_000_000u64, (1 << 24) - 1)],
        )
        .expect("count");
    println!("  records costing ≥ 15M: {tail}");

    // Top 5 most expensive records (server-side top-k).
    let start = Instant::now();
    let top5 = ds
        .select_top("records", "cost", true, 5, &[])
        .expect("top-k");
    println!("  top-5 costs in {:.2?}:", start.elapsed());
    for (id, v) in &top5 {
        println!("    record {id}: cost {:?}", v[2]);
    }

    // A specific (sensitive) patient's history: random-mode filter —
    // full transfer, by design.
    let probe = data[rows / 2].patient;
    let before = stats.snapshot();
    let history = ds
        .select("records", &[Predicate::eq("patient", probe)])
        .expect("history");
    let delta = stats.snapshot().since(&before);
    println!(
        "  one patient's history: {} records — cost {} bytes because patient ids \
         are information-theoretically hidden (the privacy dial at its max)",
        history.len(),
        delta.total_bytes()
    );
}
