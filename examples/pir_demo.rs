//! Private information retrieval shoot-out (paper §II-B, experiment E3).
//!
//! Retrieves one bit from an N-bit database three ways and reports, for
//! each: bytes moved, server crypto work, measured compute time, and
//! modeled end-to-end time on a broadband link — reproducing the
//! Sion–Carbunar conclusion the paper leans on: computational PIR loses
//! to trivially shipping the database, while multi-server IT-PIR (the
//! setting the paper's providers already live in) wins on both axes.
//!
//! ```text
//! cargo run --release -p dasp-apps --bin pir_demo
//! ```

use dasp_net::NetworkModel;
use dasp_pir::{
    BitDatabase, ProtocolCost, QrClient, QrServer, TrivialPir, TwoServerClient, TwoServerServer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn report(label: &str, cost: &ProtocolCost, compute: Duration, model: &NetworkModel) {
    let wire = model.transfer_time(cost.total_bytes(), 1);
    let total = compute + wire;
    println!(
        "  {label:<28} {:>10} B   {:>12} mod-muls   compute {compute:>10.2?}   e2e {total:>10.2?}",
        cost.total_bytes(),
        cost.server_mod_muls
    );
}

fn main() {
    let n_bits = 1 << 16; // 64 Kbit database
    let target = 31_337;
    let db = BitDatabase::random(n_bits, 1);
    let expected = db.get(target);
    let model = NetworkModel::broadband();
    println!("== Fetch bit #{target} of a {n_bits}-bit database privately (broadband model) ==");

    // Trivial: ship everything.
    let trivial = TrivialPir::new(db.clone());
    let start = Instant::now();
    let (bit, cost) = trivial.retrieve(target);
    assert_eq!(bit, expected);
    report("trivial (download all)", &cost, start.elapsed(), &model);

    // Two-server information-theoretic.
    let s1 = TwoServerServer::new(db.clone());
    let s2 = TwoServerServer::new(db.clone());
    let client = TwoServerClient::new(n_bits);
    let mut rng = StdRng::seed_from_u64(2);
    let start = Instant::now();
    let (bit, cost) = client.retrieve(target, &s1, &s2, &mut rng);
    assert_eq!(bit, expected);
    report(
        "2-server IT-PIR (Chor et al.)",
        &cost,
        start.elapsed(),
        &model,
    );

    // Single-server computational (QR) — the expensive one.
    let mut rng = StdRng::seed_from_u64(3);
    println!("  … generating QR keys and grinding {n_bits} modular multiplications …");
    let qr_client = QrClient::generate(n_bits, 256, &mut rng);
    let qr_server = QrServer::new(db.clone(), qr_client.modulus().clone());
    let start = Instant::now();
    let (bit, cost) = qr_client.retrieve(target, &qr_server, &mut rng);
    assert_eq!(bit, expected);
    report("1-server cPIR (KO, QR)", &cost, start.elapsed(), &model);

    println!(
        "\n  The paper's §II-B takeaway, reproduced: the single-server scheme pays one \
         modular multiplication per database bit, so the trivial protocol beats it end-to-end \
         long before databases get interesting — while the multi-server IT scheme (which \
         assumes exactly the non-colluding providers the paper's architecture already has) \
         is cheap on every axis."
    );
}
