//! Interactive SQL shell against a live outsourced deployment.
//!
//! ```text
//! cargo run --release -p dasp-apps --bin sql_shell
//! dasp> CREATE TABLE t (name VARCHAR(8) MODE DETERMINISTIC, v INT(1000000) MODE ORDERED);
//! dasp> INSERT INTO t VALUES ('ANNE', 10), ('BEN', 20);
//! dasp> SELECT * FROM t WHERE v BETWEEN 5 AND 15;
//! dasp> .stats        -- traffic counters
//! dasp> .verify on    -- majority-verify every read
//! dasp> .quit
//! ```
//!
//! Also accepts statements on stdin non-interactively:
//! `echo "SELECT ..." | cargo run -p dasp-apps --bin sql_shell`.

use dasp_core::{OutsourcedDatabase, QueryOutput};
use std::io::{self, BufRead, Write};

fn print_output(out: QueryOutput) {
    match out {
        QueryOutput::None => println!("ok"),
        QueryOutput::Inserted(ids) => println!("inserted {} row(s)", ids.len()),
        QueryOutput::Affected(n) => println!("{n} row(s) affected"),
        QueryOutput::Rows { columns, rows } => {
            println!("  {}", columns.join(" | "));
            for (id, values) in &rows {
                let rendered: Vec<String> = values
                    .iter()
                    .map(|v| match v {
                        dasp_core::client::Value::Int(i) => i.to_string(),
                        dasp_core::client::Value::Str(s) => format!("'{s}'"),
                    })
                    .collect();
                println!("  [{id}] {}", rendered.join(" | "));
            }
            println!("({} row(s))", rows.len());
        }
        QueryOutput::Joined { pairs } => {
            for ((lid, l), (rid, r)) in &pairs {
                println!("  [{lid}]{l:?} ⋈ [{rid}]{r:?}");
            }
            println!("({} pair(s))", pairs.len());
        }
        QueryOutput::Aggregate(agg) => {
            println!("  {:?} over {} row(s)", agg.value, agg.count)
        }
        QueryOutput::Plan(plan) => println!("{plan}"),
        QueryOutput::Groups(groups) => {
            for g in &groups {
                println!("  {:?}: sum={:?} count={}", g.group, g.sum, g.count);
            }
            println!("({} group(s))", groups.len());
        }
    }
}

fn main() {
    let (k, n) = (2usize, 3usize);
    let mut db = OutsourcedDatabase::deploy(k, n).expect("deploy cluster");
    println!("dasp SQL shell — {n} providers, threshold {k}. '.help' for meta commands.");

    let stdin = io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("dasp> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".help" => {
                println!(".stats       traffic counters");
                println!(".verify on   majority-verify every read");
                println!(".verify off  trust first k responses (default)");
                println!(".quit        exit");
                continue;
            }
            ".stats" => {
                let s = db.cluster().stats().snapshot();
                println!(
                    "sent {} msgs / {} bytes; received {} msgs / {} bytes; {} round trips",
                    s.messages_sent,
                    s.bytes_sent,
                    s.messages_received,
                    s.bytes_received,
                    s.round_trips
                );
                continue;
            }
            ".verify on" => {
                db.verify_reads = true;
                println!("verification on");
                continue;
            }
            ".verify off" => {
                db.verify_reads = false;
                println!("verification off");
                continue;
            }
            _ => {}
        }
        match db.execute(line) {
            Ok(out) => print_output(out),
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Rough interactivity detection without libc: honor a NO_PROMPT env var
/// and otherwise assume interactive.
fn atty_stdin() -> bool {
    std::env::var_os("NO_PROMPT").is_none()
}
