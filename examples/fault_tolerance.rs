//! Fault tolerance and trust: the paper's challenge (b) in action.
//!
//! Demonstrates, against a live 5-provider deployment:
//! 1. availability: queries keep answering while providers crash, until
//!    fewer than k survive;
//! 2. Byzantine detection: a provider that corrupts shares is identified
//!    by majority reconstruction;
//! 3. execution assurance: planted ringers catch a provider that
//!    silently drops rows from range results.
//!
//! ```text
//! cargo run --release -p dasp-apps --bin fault_tolerance
//! ```

use dasp_client::{ColumnSpec, DataSource, Predicate, QueryOptions, TableSchema, Value};
use dasp_core::client::ClientKeys;
use dasp_net::{Cluster, FailureMode, RetryPolicy};
use dasp_server::service::provider_fleet;
use dasp_sss::ShareMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn deploy() -> DataSource {
    let mut rng = StdRng::seed_from_u64(404);
    let keys = ClientKeys::generate(2, 5, &mut rng).expect("keys");
    let cluster = Cluster::spawn(provider_fleet(5), Duration::from_millis(400));
    let mut ds = DataSource::with_seed(keys, cluster, 5).expect("data source");
    ds.create_table(
        TableSchema::new(
            "accounts",
            vec![
                ColumnSpec::numeric("owner", 1 << 20, ShareMode::Deterministic),
                ColumnSpec::numeric("balance", 1 << 24, ShareMode::OrderPreserving),
            ],
        )
        .expect("schema"),
    )
    .expect("create");
    let rows: Vec<Vec<Value>> = (0..500u64)
        .map(|i| vec![Value::Int(i % 50), Value::Int(1000 + i * 13)])
        .collect();
    ds.insert("accounts", &rows).expect("insert");
    ds
}

fn main() {
    println!("== 1. Availability under crash faults (k = 2 of n = 5) ==");
    let mut ds = deploy();
    let pred = [Predicate::between("balance", 2_000u64, 3_000u64)];
    let baseline = ds.select("accounts", &pred).expect("healthy query").len();
    println!("  all healthy: {baseline} rows");
    for crashed in 0..4 {
        ds.cluster().set_failure(crashed, FailureMode::Crashed);
        match ds.select("accounts", &pred) {
            Ok(rows) => {
                assert_eq!(rows.len(), baseline);
                println!(
                    "  providers 0..={crashed} down ({} alive): still {} rows ✓",
                    4 - crashed,
                    rows.len()
                );
            }
            Err(e) => println!(
                "  providers 0..={crashed} down ({} alive): {e} ✗ (below threshold)",
                4 - crashed
            ),
        }
    }

    println!("\n== 2. Byzantine share corruption: detect and identify ==");
    let mut ds = deploy();
    ds.cluster().set_failure(3, FailureMode::Byzantine(1.0));
    let rows = ds
        .select_opts("accounts", &pred, QueryOptions { verify: true })
        .expect("verified query");
    println!(
        "  verified query returned {} correct rows despite provider 3 corrupting \
         every response",
        rows.len()
    );
    if ds.last_faulty.is_empty() {
        println!(
            "  (its frames were mangled beyond decoding, so it simply fell out of the quorum)"
        );
    } else {
        println!("  identified faulty providers: {:?}", ds.last_faulty);
        assert_eq!(ds.last_faulty, vec![3]);
    }

    println!("\n== 3. Execution assurance via ringers ==");
    let mut ds = deploy();
    ds.plant_ringers("accounts", "balance", 16, |v| {
        vec![Value::Int(49), Value::Int(v)]
    })
    .expect("plant");
    println!("  planted 16 ringer rows (indistinguishable shares)");
    let rows = ds
        .select(
            "accounts",
            &[Predicate::between("balance", 0u64, (1 << 24) - 1)],
        )
        .expect("full range");
    println!(
        "  honest providers: full-range query passes assurance, returns {} real rows \
         (ringers stripped)",
        rows.len()
    );
    assert_eq!(rows.len(), 500);
    // Simulate a lazy/withholding provider fleet by corrupting responses:
    // Omission(1.0) means results never arrive — the failure is loud. The
    // subtle case (partial results) is what ringers catch; here we show the
    // detection probability math instead.
    for drop_p in [0.05f64, 0.2, 0.5] {
        let p = dasp_verify::RingerSet::detection_probability(16, drop_p);
        println!(
            "  provider silently dropping {:>4.0}% of rows → caught with probability {:.4}",
            drop_p * 100.0,
            p
        );
    }

    println!("\n== 4. Disaster recovery: rebuilding a lost provider ==");
    let mut ds = deploy();
    // Provider 4 loses its disk entirely.
    ds.cluster()
        .call(4, dasp_server::proto::Request::DropAllTables.encode())
        .expect("wipe");
    let probe = [Predicate::between("balance", 2_000u64, 3_000u64)];
    println!("  provider 4 wiped; fleet still answers via the quorum:");
    let n_rows = ds.select("accounts", &probe).expect("degraded query").len();
    println!("    query -> {n_rows} rows (k = 2 of the 4 survivors suffice)");
    let start = std::time::Instant::now();
    let rebuilt = ds.rebuild_provider(4).expect("rebuild");
    println!(
        "  rebuilt provider 4 from the survivors: {rebuilt} rows re-derived in {:.2?}",
        start.elapsed()
    );
    println!(
        "    (random-mode shares are regenerated ON THE ORIGINAL polynomials by \
Lagrange-evaluating k survivors at the lost secret point — bit-identical state)"
    );
    // Prove it by crashing everyone except provider 4 + one other.
    for p in 0..3 {
        ds.cluster().set_failure(p, FailureMode::Crashed);
    }
    let rows = ds
        .select("accounts", &probe)
        .expect("query via rebuilt provider");
    assert_eq!(rows.len(), n_rows);
    println!(
        "    with providers 0-2 crashed, {{3,4}} alone answer: {} rows ✓",
        rows.len()
    );

    println!("\n== 5. Resilience: first-k-wins, retries, circuit breakers ==");
    let mut ds = deploy();
    // 5a. A straggler does not set the pace: reads return as soon as
    // the k needed shares (plus one cross-check) arrive.
    ds.cluster().set_latency_for(4, Duration::from_millis(250));
    let start = std::time::Instant::now();
    let rows = ds.select("accounts", &pred).expect("select with straggler");
    let elapsed = start.elapsed();
    println!(
        "  provider 4 straggling at 250ms: query answered {} rows in {:.2?} \
         (first-k-wins, straggler abandoned)",
        rows.len(),
        elapsed
    );
    assert!(elapsed < Duration::from_millis(200));
    ds.cluster().set_latency_for(4, Duration::ZERO);

    // 5b. Retries with jittered exponential backoff heal omission
    // faults that would otherwise starve the quorum.
    ds.set_retry_policy(RetryPolicy {
        max_attempts: 20,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(8),
        per_attempt_timeout: Some(Duration::from_millis(30)),
        jitter_seed: 404,
    });
    for p in 0..3 {
        ds.cluster().set_failure(p, FailureMode::Crashed);
    }
    ds.cluster().set_failure(3, FailureMode::Omission(0.8));
    let rows = ds
        .select("accounts", &pred)
        .expect("retries must heal the omitting provider");
    println!(
        "  providers 0-2 down, provider 3 dropping 80% of replies: retries still \
         assemble a quorum → {} rows",
        rows.len()
    );

    // 5c. The health tracker remembers who misbehaved; repeated
    // failures open a circuit breaker that steers load away until a
    // half-open probe readmits the provider.
    println!("  per-provider health after the ordeal:");
    for line in ds.health().to_string().lines() {
        println!("    {line}");
    }
    for p in 0..3 {
        println!(
            "  provider {p} breaker: {}",
            ds.cluster().health().breaker_state(p)
        );
    }
}
