//! `dasp-apps`: runnable example applications and the cross-crate
//! integration test suite.
//!
//! The examples live beside this crate as `[[bin]]` targets:
//!
//! * `quickstart` — reproduce the paper's Figure 1, then the SQL stack.
//! * `payroll` — the §V-A query taxonomy over 10k outsourced rows.
//! * `agencies` — §V-D watchlist ⋈ travelers + the E2 intersection costs.
//! * `fault_tolerance` — crashes, Byzantine providers, ringers.
//! * `pir_demo` — trivial vs IT-PIR vs computational PIR (E3).
//!
//! Integration tests spanning the whole workspace are in `/tests`.
