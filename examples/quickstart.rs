//! Quickstart: reproduce the paper's Figure 1, then run the same flow
//! through the full SQL stack.
//!
//! ```text
//! cargo run -p dasp-apps --bin quickstart
//! ```

use dasp_core::{OutsourcedDatabase, QueryOutput};
use dasp_field::{Fp, Poly};
use dasp_sss::{FieldShare, FieldSharing};

fn figure1() {
    println!("== Figure 1: secret-sharing the salary column ==");
    println!("salaries {{10, 20, 40, 60, 80}}, n = 3 providers, k = 2,");
    println!("secret points X = {{x1=2, x2=4, x3=1}} (held by the client)\n");

    // The paper fixes the random linear coefficients: q10(x)=100x+10, …
    let polys = [(10u64, 100u64), (20, 5), (40, 1), (60, 2), (80, 4)];
    let points = [2u64, 4, 1];
    let sharing = FieldSharing::new(2, points.iter().map(|&x| Fp::from_u64(x)).collect())
        .expect("valid parameters");

    println!("  salary | polynomial      | DAS1 (x=2) | DAS2 (x=4) | DAS3 (x=1)");
    println!("  -------+-----------------+------------+------------+-----------");
    let mut all_shares = Vec::new();
    for &(salary, slope) in &polys {
        let poly = Poly::new(vec![Fp::from_u64(salary), Fp::from_u64(slope)]);
        let shares: Vec<u64> = points
            .iter()
            .map(|&x| poly.eval(Fp::from_u64(x)).to_u64())
            .collect();
        println!(
            "  {salary:>6} | q{salary}(x) = {slope:>3}x + {salary:<3} | {:>10} | {:>10} | {:>10}",
            shares[0], shares[1], shares[2]
        );
        all_shares.push((salary, shares));
    }

    println!("\nReconstruction from any 2 of the 3 providers:");
    for (salary, shares) in &all_shares {
        for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let got = sharing
                .reconstruct(&[
                    FieldShare {
                        provider: a,
                        y: Fp::from_u64(shares[a]),
                    },
                    FieldShare {
                        provider: b,
                        y: Fp::from_u64(shares[b]),
                    },
                ])
                .expect("reconstructs");
            // dasp::allow(T1): example checks reconstruction of its own demo value.
            assert_eq!(got.to_u64(), *salary);
        }
        println!("  salary {salary}: all 3 provider pairs agree ✓");
    }
}

fn sql_walkthrough() {
    println!("\n== The same database through the SQL stack ==");
    let mut db = OutsourcedDatabase::deploy_seeded(2, 3, 2024).expect("deploy");
    db.execute(
        "CREATE TABLE employees (name VARCHAR(8) MODE DETERMINISTIC, \
         salary INT(1048576) MODE ORDERED)",
    )
    .expect("create");
    db.execute(
        "INSERT INTO employees VALUES ('ANNE', 10), ('BEN', 20), ('CARA', 40), \
         ('DAN', 60), ('EVE', 80)",
    )
    .expect("insert");

    for sql in [
        "SELECT * FROM employees WHERE name = 'CARA'",
        "SELECT * FROM employees WHERE salary BETWEEN 10 AND 40",
        "SELECT SUM(salary) FROM employees WHERE salary BETWEEN 10 AND 40",
        "SELECT MEDIAN(salary) FROM employees",
    ] {
        let out = db.execute(sql).expect("query");
        println!("\n  {sql}");
        match out {
            QueryOutput::Rows { rows, .. } => {
                for (id, values) in rows {
                    println!("    row {id}: {values:?}");
                }
            }
            QueryOutput::Aggregate(agg) => {
                println!("    -> {:?} over {} rows", agg.value, agg.count)
            }
            other => println!("    -> {other:?}"),
        }
    }

    let snap = db.cluster().stats().snapshot();
    println!(
        "\n  traffic: {} msgs / {} bytes sent, {} msgs / {} bytes received, {} round trips",
        snap.messages_sent,
        snap.bytes_sent,
        snap.messages_received,
        snap.bytes_received,
        snap.round_trips
    );
    println!("  (every byte on that wire is a share — no provider ever saw a salary)");
}

fn main() {
    figure1();
    sql_walkthrough();
}
